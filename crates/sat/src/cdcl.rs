//! A CDCL (conflict-driven clause-learning) SAT solver.
//!
//! MiniSAT-family architecture: two-watched-literal propagation, first-UIP
//! conflict analysis with clause learning, VSIDS decision heuristics with an
//! indexed activity heap, phase saving, Luby restarts, and activity-based
//! learnt-clause database reduction. The solver is incremental: clauses may
//! be added between [`Solver::solve`] calls (the SAT attack grows its miter
//! formula by two circuit copies per iteration) and solving accepts
//! assumption literals.
//!
//! # Example
//!
//! ```
//! use fulllock_sat::cdcl::{SolveResult, Solver};
//! use fulllock_sat::Lit;
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause([Lit::positive(a), Lit::positive(b)]);
//! solver.add_clause([Lit::negative(a)]);
//! assert_eq!(solver.solve(&[]), SolveResult::Sat);
//! assert_eq!(solver.model_value(b), Some(true));
//! ```

use std::time::Instant;

use crate::{Cnf, Lit, Var};

/// Verdict of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A model was found; read it with [`Solver::model_value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// A resource limit ([`SolveLimits`]) was hit first.
    Unknown,
}

/// Resource limits for one [`Solver::solve_limited`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveLimits {
    /// Stop after this many conflicts.
    pub max_conflicts: Option<u64>,
    /// Stop once this wall-clock instant passes (checked at restarts and
    /// every few thousand conflicts, so overshoot is bounded).
    pub deadline: Option<Instant>,
}

impl SolveLimits {
    /// No limits: run to completion.
    pub fn unlimited() -> SolveLimits {
        SolveLimits::default()
    }
}

/// Cumulative statistics across a solver's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverStats {
    /// Decisions taken.
    pub decisions: u64,
    /// Unit propagations performed.
    pub propagations: u64,
    /// Conflicts encountered (equals learnt clauses, pre-reduction).
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses deleted by database reduction.
    pub deleted_learnts: u64,
    /// Literals removed from learnt clauses by conflict-clause
    /// minimization.
    pub minimized_literals: u64,
}

const NO_REASON: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LBool {
    True,
    False,
    Undef,
}

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    activity: f64,
}

#[derive(Debug, Clone, Copy)]
struct Watch {
    clause: u32,
    /// A literal of the clause other than the watched one; if it is already
    /// true the clause is satisfied and the watch scan can skip the clause.
    blocker: Lit,
}

/// The CDCL solver. See the [module docs](self) for the feature set.
#[derive(Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    learnt_refs: Vec<u32>,
    watches: Vec<Vec<Watch>>,

    assign: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,

    activity: Vec<f64>,
    var_inc: f64,
    heap: VarHeap,
    polarity: Vec<bool>,

    cla_inc: f64,
    max_learnts: f64,

    ok: bool,
    model: Vec<bool>,
    stats: SolverStats,

    // Scratch for conflict analysis.
    seen: Vec<bool>,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            learnt_refs: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            heap: VarHeap::new(),
            polarity: Vec::new(),
            cla_inc: 1.0,
            max_learnts: 0.0,
            ok: true,
            model: Vec::new(),
            stats: SolverStats::default(),
            seen: Vec::new(),
        }
    }

    /// Builds a solver pre-loaded with a formula.
    pub fn from_cnf(cnf: &Cnf) -> Solver {
        let mut solver = Solver::new();
        solver.ensure_vars(cnf.num_vars());
        for clause in cnf.clauses() {
            solver.add_clause(clause.iter().copied());
        }
        solver
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.assign.len());
        self.assign.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.polarity.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.insert(v.index(), &self.activity);
        v
    }

    /// Ensures at least `n` variables exist.
    pub fn ensure_vars(&mut self, n: usize) {
        while self.assign.len() < n {
            self.new_var();
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of original (problem) clauses added so far, excluding learnt
    /// clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.learnt && !c.deleted).count()
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Adds a clause, growing the variable space as needed. Returns `false`
    /// if the formula is now trivially unsatisfiable (an empty clause, or a
    /// conflict at the root level).
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> bool {
        self.cancel_until(0);
        if !self.ok {
            return false;
        }
        let mut clause: Vec<Lit> = lits.into_iter().collect();
        for &l in &clause {
            self.ensure_vars(l.var().index() + 1);
        }
        // Root-level simplification: drop false literals, detect satisfied
        // clauses and tautologies.
        clause.sort_unstable();
        clause.dedup();
        let mut simplified = Vec::with_capacity(clause.len());
        let mut prev: Option<Lit> = None;
        for &l in &clause {
            if let Some(p) = prev {
                if p == !l {
                    return true; // tautology: contains l and ¬l (adjacent after sort)
                }
            }
            prev = Some(l);
            match self.lit_value(l) {
                LBool::True => return true, // already satisfied at root
                LBool::False => {}          // drop the false literal
                LBool::Undef => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                if !self.enqueue(simplified[0], NO_REASON) {
                    self.ok = false;
                    return false;
                }
                if self.propagate().is_some() {
                    self.ok = false;
                    return false;
                }
                true
            }
            _ => {
                let cref = self.alloc_clause(simplified, false);
                self.attach_clause(cref);
                true
            }
        }
    }

    /// Solves under assumption literals with no resource limits.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_limited(assumptions, SolveLimits::unlimited())
    }

    /// Solves under assumption literals and resource limits.
    pub fn solve_limited(&mut self, assumptions: &[Lit], limits: SolveLimits) -> SolveResult {
        self.cancel_until(0);
        if !self.ok {
            return SolveResult::Unsat;
        }
        for &a in assumptions {
            self.ensure_vars(a.var().index() + 1);
        }
        if self.max_learnts == 0.0 {
            self.max_learnts = (self.clauses.len() as f64 / 3.0).max(1000.0);
        }
        let conflict_start = self.stats.conflicts;
        let mut restart_round = 0u64;
        loop {
            let budget = 100.0 * luby(2.0, restart_round);
            restart_round += 1;
            match self.search(assumptions, budget as u64, &limits, conflict_start) {
                SearchOutcome::Sat => {
                    self.model = self
                        .assign
                        .iter()
                        .map(|&a| a == LBool::True)
                        .collect();
                    self.cancel_until(0);
                    return SolveResult::Sat;
                }
                SearchOutcome::Unsat => {
                    self.cancel_until(0);
                    return SolveResult::Unsat;
                }
                SearchOutcome::Restart => {
                    self.stats.restarts += 1;
                    self.cancel_until(0);
                }
                SearchOutcome::LimitHit => {
                    self.cancel_until(0);
                    return SolveResult::Unknown;
                }
            }
        }
    }

    /// The last model's value for a variable (only meaningful right after a
    /// [`SolveResult::Sat`]); `None` for variables created after that solve.
    pub fn model_value(&self, var: Var) -> Option<bool> {
        self.model.get(var.index()).copied()
    }

    /// The last model as a dense vector (empty before the first SAT).
    pub fn model(&self) -> &[bool] {
        &self.model
    }

    // ---- internals -----------------------------------------------------

    fn lit_value(&self, l: Lit) -> LBool {
        match self.assign[l.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_positive() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
            LBool::False => {
                if l.is_positive() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn alloc_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        let cref = self.clauses.len() as u32;
        self.clauses.push(Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
        });
        if learnt {
            self.learnt_refs.push(cref);
        }
        cref
    }

    fn attach_clause(&mut self, cref: u32) {
        let (l0, l1) = {
            let c = &self.clauses[cref as usize];
            debug_assert!(c.lits.len() >= 2);
            (c.lits[0], c.lits[1])
        };
        self.watches[l0.code()].push(Watch { clause: cref, blocker: l1 });
        self.watches[l1.code()].push(Watch { clause: cref, blocker: l0 });
    }

    fn enqueue(&mut self, lit: Lit, reason: u32) -> bool {
        match self.lit_value(lit) {
            LBool::True => true,
            LBool::False => false,
            LBool::Undef => {
                let v = lit.var().index();
                self.assign[v] = if lit.is_positive() {
                    LBool::True
                } else {
                    LBool::False
                };
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.trail.push(lit);
                true
            }
        }
    }

    /// Propagates all enqueued assignments; returns a conflicting clause
    /// reference if one arises.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            // Clauses watching `false_lit` must react.
            let mut watch_list = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            while i < watch_list.len() {
                let watch = watch_list[i];
                if self.lit_value(watch.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let cref = watch.clause as usize;
                if self.clauses[cref].deleted {
                    watch_list.swap_remove(i);
                    continue;
                }
                // Normalize: the false literal goes to slot 1.
                if self.clauses[cref].lits[0] == false_lit {
                    self.clauses[cref].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[cref].lits[1], false_lit);
                let first = self.clauses[cref].lits[0];
                if self.lit_value(first) == LBool::True {
                    watch_list[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                let mut moved = false;
                for k in 2..self.clauses[cref].lits.len() {
                    let cand = self.clauses[cref].lits[k];
                    if self.lit_value(cand) != LBool::False {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[cand.code()].push(Watch {
                            clause: watch.clause,
                            blocker: first,
                        });
                        watch_list.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                if self.lit_value(first) == LBool::False {
                    // Conflict: restore the remaining watches and bail.
                    self.watches[false_lit.code()].append(&mut watch_list);
                    self.qhead = self.trail.len();
                    return Some(watch.clause);
                }
                let ok = self.enqueue(first, watch.clause);
                debug_assert!(ok, "undef literal must enqueue");
                i += 1;
            }
            self.watches[false_lit.code()].append(&mut watch_list);
        }
        None
    }

    fn cancel_until(&mut self, target: u32) {
        while self.decision_level() > target {
            let lim = self.trail_lim.pop().expect("level > 0 implies a limit");
            while self.trail.len() > lim {
                let lit = self.trail.pop().expect("trail at least lim long");
                let v = lit.var().index();
                self.polarity[v] = lit.is_positive();
                self.assign[v] = LBool::Undef;
                self.reason[v] = NO_REASON;
                self.heap.insert(v, &self.activity);
            }
        }
        self.qhead = self.trail.len().min(self.qhead);
        if target == 0 {
            self.qhead = self.qhead.min(self.trail.len());
        }
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.update(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: u32) {
        let c = &mut self.clauses[cref as usize];
        if !c.learnt {
            return;
        }
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for &r in &self.learnt_refs {
                self.clauses[r as usize].activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::positive(Var::new(0))]; // slot 0 patched below
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let current = self.decision_level();

        loop {
            self.bump_clause(confl);
            let lits: Vec<Lit> = self.clauses[confl as usize].lits.clone();
            let skip_first = p.is_some();
            for (k, &q) in lits.iter().enumerate() {
                if skip_first && k == 0 {
                    continue;
                }
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(v);
                    if self.level[v] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next trail literal to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            let v = lit.var().index();
            self.seen[v] = false;
            counter -= 1;
            p = Some(lit);
            if counter == 0 {
                break;
            }
            confl = self.reason[v];
            debug_assert_ne!(confl, NO_REASON, "non-decision literal has a reason");
        }
        learnt[0] = !p.expect("loop ran at least once");

        // Conflict-clause minimization (non-recursive / "basic" mode): a
        // literal is redundant if its reason's other literals are all
        // already in the clause (seen) or fixed at the root level. The
        // `seen` flags still mark exactly the learnt literals here.
        let mut kept = Vec::with_capacity(learnt.len());
        kept.push(learnt[0]);
        for &q in &learnt[1..] {
            let v = q.var().index();
            let redundant = self.reason[v] != NO_REASON
                && self.clauses[self.reason[v] as usize]
                    .lits
                    .iter()
                    .all(|r| {
                        let rv = r.var().index();
                        rv == v || self.seen[rv] || self.level[rv] == 0
                    });
            if redundant {
                self.stats.minimized_literals += 1;
                self.seen[v] = false;
            } else {
                kept.push(q);
            }
        }
        let mut learnt = kept;

        // Compute backtrack level and position the max-level literal at
        // slot 1 (so both watches are correct after backjumping).
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        // Clear remaining `seen` flags.
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        (learnt, bt_level)
    }

    fn pick_branch_lit(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap.pop_max(&self.activity) {
            if self.assign[v] == LBool::Undef {
                return Some(Lit::with_polarity(Var::new(v), self.polarity[v]));
            }
        }
        None
    }

    fn reduce_db(&mut self) {
        // Sort learnt clause refs by activity ascending; delete the weaker
        // half, keeping reason clauses (locked) and binary clauses.
        let mut refs = self.learnt_refs.clone();
        refs.retain(|&r| !self.clauses[r as usize].deleted);
        refs.sort_by(|&a, &b| {
            self.clauses[a as usize]
                .activity
                .partial_cmp(&self.clauses[b as usize].activity)
                .expect("activities are finite")
        });
        let locked: Vec<u32> = self
            .trail
            .iter()
            .map(|l| self.reason[l.var().index()])
            .filter(|&r| r != NO_REASON)
            .collect();
        let half = refs.len() / 2;
        for &r in refs.iter().take(half) {
            let c = &self.clauses[r as usize];
            if c.lits.len() <= 2 || locked.contains(&r) {
                continue;
            }
            self.clauses[r as usize].deleted = true;
            self.stats.deleted_learnts += 1;
        }
        self.learnt_refs
            .retain(|&r| !self.clauses[r as usize].deleted);
        // Watches are cleaned lazily in propagate(); also prune here to
        // bound memory.
        for list in &mut self.watches {
            list.retain(|w| !self.clauses[w.clause as usize].deleted);
        }
    }

    fn search(
        &mut self,
        assumptions: &[Lit],
        conflict_budget: u64,
        limits: &SolveLimits,
        conflict_start: u64,
    ) -> SearchOutcome {
        let mut conflicts_this_round = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_this_round += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SearchOutcome::Unsat;
                }
                let (learnt, bt_level) = self.analyze(confl);
                self.cancel_until(bt_level);
                if learnt.len() == 1 {
                    let ok = self.enqueue(learnt[0], NO_REASON);
                    debug_assert!(ok, "asserting literal must be undef after backjump");
                } else {
                    let asserting = learnt[0];
                    let cref = self.alloc_clause(learnt, true);
                    self.attach_clause(cref);
                    self.bump_clause(cref);
                    let ok = self.enqueue(asserting, cref);
                    debug_assert!(ok, "asserting literal must be undef after backjump");
                }
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;
                if self.learnt_refs.len() as f64 > self.max_learnts + self.trail.len() as f64 {
                    self.reduce_db();
                    self.max_learnts *= 1.1;
                }
                if conflicts_this_round.is_multiple_of(4096) {
                    if let Some(deadline) = limits.deadline {
                        if Instant::now() >= deadline {
                            return SearchOutcome::LimitHit;
                        }
                    }
                }
                if let Some(max) = limits.max_conflicts {
                    if self.stats.conflicts - conflict_start >= max {
                        return SearchOutcome::LimitHit;
                    }
                }
                if conflicts_this_round >= conflict_budget {
                    return SearchOutcome::Restart;
                }
            } else {
                // Deadline check between decisions too (propagation-heavy
                // instances may rarely conflict).
                if self.stats.decisions.is_multiple_of(8192) {
                    if let Some(deadline) = limits.deadline {
                        if Instant::now() >= deadline {
                            return SearchOutcome::LimitHit;
                        }
                    }
                }
                // Assumption handling, then VSIDS decision.
                let next = if (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.lit_value(a) {
                        LBool::True => {
                            // Already implied: open an empty level for it.
                            self.trail_lim.push(self.trail.len());
                            continue;
                        }
                        LBool::False => return SearchOutcome::Unsat,
                        LBool::Undef => a,
                    }
                } else {
                    match self.pick_branch_lit() {
                        Some(l) => {
                            self.stats.decisions += 1;
                            l
                        }
                        None => return SearchOutcome::Sat,
                    }
                };
                self.trail_lim.push(self.trail.len());
                let ok = self.enqueue(next, NO_REASON);
                debug_assert!(ok, "decision literal is undef");
            }
        }
    }
}

enum SearchOutcome {
    Sat,
    Unsat,
    Restart,
    LimitHit,
}

/// The Luby restart sequence 1,1,2,1,1,2,4,… scaled by `y`.
fn luby(y: f64, mut x: u64) -> f64 {
    let (mut size, mut seq) = (1u64, 0u32);
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    y.powi(seq as i32)
}

/// An indexed binary max-heap over variable activities.
#[derive(Debug)]
struct VarHeap {
    heap: Vec<usize>,
    position: Vec<Option<usize>>,
}

impl VarHeap {
    fn new() -> VarHeap {
        VarHeap {
            heap: Vec::new(),
            position: Vec::new(),
        }
    }

    fn insert(&mut self, v: usize, activity: &[f64]) {
        if self.position.len() <= v {
            self.position.resize(v + 1, None);
        }
        if self.position[v].is_some() {
            return;
        }
        self.position[v] = Some(self.heap.len());
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    fn update(&mut self, v: usize, activity: &[f64]) {
        if let Some(pos) = self.position.get(v).copied().flatten() {
            self.sift_up(pos, activity);
        }
    }

    fn pop_max(&mut self, activity: &[f64]) -> Option<usize> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.position[top] = None;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last] = Some(0);
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut pos: usize, activity: &[f64]) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if activity[self.heap[pos]] <= activity[self.heap[parent]] {
                break;
            }
            self.swap(pos, parent);
            pos = parent;
        }
    }

    fn sift_down(&mut self, mut pos: usize, activity: &[f64]) {
        loop {
            let left = 2 * pos + 1;
            let right = left + 1;
            let mut best = pos;
            if left < self.heap.len() && activity[self.heap[left]] > activity[self.heap[best]] {
                best = left;
            }
            if right < self.heap.len() && activity[self.heap[right]] > activity[self.heap[best]] {
                best = right;
            }
            if best == pos {
                break;
            }
            self.swap(pos, best);
            pos = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.position[self.heap[a]] = Some(a);
        self.position[self.heap[b]] = Some(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_sat::{self, RandomSatConfig};
    use crate::{dpll, Cnf};

    fn lit(i: i64) -> Lit {
        Lit::from_dimacs(i)
    }

    #[test]
    fn trivial_sat_and_model() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::positive(a), Lit::positive(b)]);
        s.add_clause([Lit::negative(a)]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.model_value(a), Some(false));
        assert_eq!(s.model_value(b), Some(true));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([Lit::positive(a)]);
        assert!(!s.add_clause([Lit::negative(a)]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause([]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn tautologies_are_dropped() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([Lit::positive(a), Lit::negative(a)]);
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn pigeonhole_unsat() {
        // 4 pigeons, 3 holes.
        let (p, h) = (4usize, 3usize);
        let mut s = Solver::new();
        let var = |i: usize, j: usize| Lit::positive(Var::new(i * h + j));
        s.ensure_vars(p * h);
        for i in 0..p {
            s.add_clause((0..h).map(|j| var(i, j)));
        }
        for j in 0..h {
            for i1 in 0..p {
                for i2 in i1 + 1..p {
                    s.add_clause([!var(i1, j), !var(i2, j)]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn agrees_with_dpll_on_random_instances() {
        for seed in 0..30 {
            let cnf = random_sat::generate(RandomSatConfig {
                vars: 25,
                clauses: 107, // near the phase transition: mixed verdicts
                clause_len: 3,
                seed,
            })
            .unwrap();
            let reference = dpll::solve(&cnf, None);
            let mut s = Solver::from_cnf(&cnf);
            let got = s.solve(&[]);
            match reference.result {
                dpll::DpllResult::Sat(_) => {
                    assert_eq!(got, SolveResult::Sat, "seed {seed}");
                    assert!(cnf.is_satisfied_by(s.model()), "seed {seed} model check");
                }
                dpll::DpllResult::Unsat => assert_eq!(got, SolveResult::Unsat, "seed {seed}"),
                dpll::DpllResult::Unknown => unreachable!("no budget set"),
            }
        }
    }

    #[test]
    fn assumptions_flip_verdicts() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::positive(a), Lit::positive(b)]);
        assert_eq!(s.solve(&[Lit::negative(a)]), SolveResult::Sat);
        assert_eq!(s.model_value(b), Some(true));
        assert_eq!(
            s.solve(&[Lit::negative(a), Lit::negative(b)]),
            SolveResult::Unsat
        );
        // The solver is still usable and SAT without assumptions.
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::positive(a), Lit::positive(b)]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        s.add_clause([Lit::negative(a)]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        s.add_clause([Lit::negative(b)]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn conflict_limit_returns_unknown() {
        let cnf = random_sat::generate(RandomSatConfig {
            vars: 120,
            clauses: 516,
            clause_len: 3,
            seed: 7,
        })
        .unwrap();
        let mut s = Solver::from_cnf(&cnf);
        let result = s.solve_limited(
            &[],
            SolveLimits {
                max_conflicts: Some(1),
                deadline: None,
            },
        );
        // Either it solves within one conflict (unlikely) or reports Unknown.
        assert_ne!(result, SolveResult::Unsat);
    }

    #[test]
    fn deadline_in_the_past_returns_quickly() {
        let cnf = random_sat::generate(RandomSatConfig {
            vars: 200,
            clauses: 860,
            clause_len: 3,
            seed: 3,
        })
        .unwrap();
        let mut s = Solver::from_cnf(&cnf);
        let result = s.solve_limited(
            &[],
            SolveLimits {
                max_conflicts: Some(10),
                deadline: Some(Instant::now()),
            },
        );
        assert_ne!(result, SolveResult::Unsat);
    }

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<f64> = (0..9).map(|i| luby(2.0, i)).collect();
        assert_eq!(seq, vec![1.0, 1.0, 2.0, 1.0, 1.0, 2.0, 4.0, 1.0, 1.0]);
    }

    #[test]
    fn duplicate_literals_are_merged() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([Lit::positive(a), Lit::positive(a)]);
        // Merged to a unit clause: `a` is forced.
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.model_value(a), Some(true));
        assert_eq!(s.solve(&[Lit::negative(a)]), SolveResult::Unsat);
    }

    #[test]
    fn many_solves_reuse_learnt_clauses() {
        let cnf = random_sat::generate(RandomSatConfig {
            vars: 60,
            clauses: 255,
            clause_len: 3,
            seed: 11,
        })
        .unwrap();
        let mut s = Solver::from_cnf(&cnf);
        let first = s.solve(&[]);
        let second = s.solve(&[]);
        assert_eq!(first, second);
    }

    #[test]
    fn xor_chain_equivalence_unsat() {
        // Encode x0 ⊕ x1 = 1, x1 ⊕ x2 = 1, x0 ⊕ x2 = 1: odd cycle, UNSAT.
        let mut cnf = Cnf::new();
        let v: Vec<Var> = cnf.new_vars(3);
        let xor1 = |cnf: &mut Cnf, a: Var, b: Var| {
            cnf.add_clause([Lit::positive(a), Lit::positive(b)]);
            cnf.add_clause([Lit::negative(a), Lit::negative(b)]);
        };
        xor1(&mut cnf, v[0], v[1]);
        xor1(&mut cnf, v[1], v[2]);
        xor1(&mut cnf, v[0], v[2]);
        let mut s = Solver::from_cnf(&cnf);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn clause_database_reduction_fires_on_long_runs() {
        // A hard 170-var instance generates thousands of conflicts,
        // crossing the initial max_learnts threshold.
        let cnf = random_sat::generate(RandomSatConfig::from_ratio(170, 4.3, 3, 1)).unwrap();
        let mut s = Solver::from_cnf(&cnf);
        let result = s.solve_limited(
            &[],
            SolveLimits {
                max_conflicts: Some(20_000),
                deadline: None,
            },
        );
        assert_ne!(result, SolveResult::Unknown, "instance within budget");
        assert!(
            s.stats().deleted_learnts > 0,
            "expected learnt-clause deletion after {} conflicts",
            s.stats().conflicts
        );
    }

    #[test]
    fn minimization_fires_and_preserves_verdicts() {
        let mut minimized_somewhere = false;
        for seed in 0..10 {
            let cnf = random_sat::generate(RandomSatConfig {
                vars: 40,
                clauses: 172,
                clause_len: 3,
                seed,
            })
            .unwrap();
            let reference = dpll::solve(&cnf, None);
            let mut s = Solver::from_cnf(&cnf);
            let got = s.solve(&[]);
            match reference.result {
                dpll::DpllResult::Sat(_) => {
                    assert_eq!(got, SolveResult::Sat);
                    assert!(cnf.is_satisfied_by(s.model()));
                }
                dpll::DpllResult::Unsat => assert_eq!(got, SolveResult::Unsat),
                dpll::DpllResult::Unknown => unreachable!(),
            }
            minimized_somewhere |= s.stats().minimized_literals > 0;
        }
        assert!(
            minimized_somewhere,
            "clause minimization should fire on phase-transition instances"
        );
    }

    #[test]
    fn lit_helper() {
        let mut s = Solver::new();
        s.add_clause([lit(3)]);
        assert_eq!(s.num_vars(), 3);
    }
}
