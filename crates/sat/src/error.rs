use std::fmt;

/// Errors produced by the SAT tooling.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SatError {
    /// DIMACS text failed to parse.
    Dimacs {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An encoder input was invalid (propagated from the netlist layer).
    Netlist(fulllock_netlist::NetlistError),
    /// A generator was asked for an impossible configuration.
    BadConfig(String),
    /// A `FULLLOCK_FAILPOINTS` fault-plan spec failed to parse.
    FaultSpec {
        /// The offending spec fragment.
        spec: String,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for SatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SatError::Dimacs { line, message } => {
                write!(f, "DIMACS parse error at line {line}: {message}")
            }
            SatError::Netlist(e) => write!(f, "netlist error: {e}"),
            SatError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SatError::FaultSpec { spec, message } => {
                write!(f, "invalid failpoint spec {spec:?}: {message}")
            }
        }
    }
}

impl std::error::Error for SatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SatError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fulllock_netlist::NetlistError> for SatError {
    fn from(e: fulllock_netlist::NetlistError) -> Self {
        SatError::Netlist(e)
    }
}
