//! SAT tooling for the Full-Lock reproduction.
//!
//! The paper's central claim is about *SAT instance hardness*: Full-Lock's
//! PLRs translate (via the Tseytin transformation) into CNF whose
//! clause/variable ratio sits in the hard 3-SAT band, blowing up the search
//! effort of each attack iteration. This crate supplies every SAT-side
//! ingredient:
//!
//! * [`Cnf`], [`Lit`], [`Var`] — formulas with DIMACS I/O and the
//!   clause/variable-ratio statistic ([`Cnf`]);
//! * [`tseytin`] — netlist → CNF encoding (Table 1 of the paper), with
//!   shared-input encoding for miter construction;
//! * [`random_sat`] — fixed-length random k-SAT generation (Fig 1's
//!   workload);
//! * [`dpll`] — the instrumented, textbook DPLL of Algorithm 1, counting
//!   recursive calls;
//! * [`cdcl`] — a MiniSAT-class CDCL solver (watched literals, 1UIP
//!   learning, VSIDS, Luby restarts, incremental solving) that powers the
//!   attacks;
//! * [`portfolio`] — N diversified CDCL solvers racing on threads with
//!   glue-clause exchange and first-finisher-wins cancellation;
//! * [`backend`] — the [`SolveBackend`] trait + [`BackendSpec`] selector
//!   that lets attack engines swap between the sequential solver and the
//!   portfolio;
//! * [`certify`] — result certification ([`CertifyLevel`]): model
//!   re-checking of every SAT answer, DRAT proof logging + forward
//!   checking of UNSAT answers, and typed [`CertifyError`]s so no wrong
//!   answer escapes silently;
//! * [`ambient`] — one typed capture ([`AmbientConfig`]) of the
//!   `FULLLOCK_*` environment knobs, so long-running servers snapshot the
//!   environment once instead of re-reading it per job;
//! * [`quota`] — per-tenant admission and cumulative-spend accounting
//!   ([`TenantQuota`]) for the serving layer.
//!
//! # Example
//!
//! ```
//! use fulllock_sat::cdcl::{SolveResult, Solver};
//! use fulllock_sat::random_sat::{generate, RandomSatConfig};
//!
//! # fn main() -> Result<(), fulllock_sat::SatError> {
//! let cnf = generate(RandomSatConfig::from_ratio(40, 3.0, 3, 0))?;
//! let mut solver = Solver::from_cnf(&cnf);
//! // Ratio 3 is under-constrained: almost surely satisfiable.
//! assert_eq!(solver.solve(&[]), SolveResult::Sat);
//! assert!(cnf.is_satisfied_by(solver.model()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod ambient;
pub mod backend;
pub mod cdcl;
pub mod certify;
mod cnf;
pub mod dpll;
pub mod equiv;
mod error;
pub mod faults;
mod lit;
pub mod portfolio;
pub mod quota;
pub mod random_sat;
pub mod tseytin;

pub use ambient::{AmbientConfig, AmbientError};
pub use backend::{BackendSpec, SolveBackend};
pub use certify::{CertifyError, CertifyLevel};
pub use cnf::Cnf;
pub use error::SatError;
pub use lit::{Lit, Var};
pub use portfolio::{PortfolioConfig, PortfolioSolver};
pub use quota::{QuotaError, QuotaSpec, QuotaUsage, TenantQuota};

/// Crate-wide result alias.
pub type Result<T, E = SatError> = std::result::Result<T, E>;
