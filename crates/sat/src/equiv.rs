//! SAT-based combinational equivalence checking (CEC).
//!
//! Builds a miter over two netlists with shared primary inputs and asks
//! the CDCL solver whether any input makes their outputs differ. This is
//! the *formal* counterpart of the sampled functional checks used
//! elsewhere: [`check`] proves equivalence outright or returns a concrete
//! counterexample pattern.
//!
//! The reproduction uses it to verify that locking with the correct key is
//! *exactly* functionality-preserving (not just on sampled patterns), and
//! that keys recovered by attacks are exact.

use fulllock_netlist::Netlist;

use crate::cdcl::{SolveLimits, SolveResult, Solver};
use crate::tseytin::{encode_gate, encode_into};
use crate::{Cnf, Lit, SatError, Var};

/// Verdict of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivResult {
    /// The two netlists compute the same function.
    Equivalent,
    /// They differ on this input pattern (one value per primary input).
    Counterexample(Vec<bool>),
    /// The solver hit a resource limit first.
    Unknown,
}

impl EquivResult {
    /// Whether equivalence was proven.
    pub fn is_equivalent(&self) -> bool {
        *self == EquivResult::Equivalent
    }
}

/// Checks whether two acyclic netlists with identical interfaces compute
/// the same function.
///
/// # Errors
///
/// Returns [`SatError::BadConfig`] if the input/output counts differ and
/// propagates encoding errors for cyclic netlists.
///
/// # Example
///
/// ```
/// use fulllock_netlist::{GateKind, Netlist};
/// use fulllock_sat::equiv;
///
/// # fn main() -> Result<(), fulllock_sat::SatError> {
/// // De Morgan: ¬(a ∧ b) ≡ ¬a ∨ ¬b.
/// let mut lhs = Netlist::new("nand");
/// let a = lhs.add_input("a");
/// let b = lhs.add_input("b");
/// let y = lhs.add_gate(GateKind::Nand, &[a, b]).unwrap();
/// lhs.mark_output(y);
///
/// let mut rhs = Netlist::new("or_of_nots");
/// let a = rhs.add_input("a");
/// let b = rhs.add_input("b");
/// let na = rhs.add_gate(GateKind::Not, &[a]).unwrap();
/// let nb = rhs.add_gate(GateKind::Not, &[b]).unwrap();
/// let y = rhs.add_gate(GateKind::Or, &[na, nb]).unwrap();
/// rhs.mark_output(y);
///
/// assert!(equiv::check(&lhs, &rhs, None)?.is_equivalent());
/// # Ok(())
/// # }
/// ```
pub fn check(
    a: &Netlist,
    b: &Netlist,
    limits: Option<SolveLimits>,
) -> Result<EquivResult, SatError> {
    if a.inputs().len() != b.inputs().len() {
        return Err(SatError::BadConfig(format!(
            "input counts differ: {} vs {}",
            a.inputs().len(),
            b.inputs().len()
        )));
    }
    if a.outputs().len() != b.outputs().len() {
        return Err(SatError::BadConfig(format!(
            "output counts differ: {} vs {}",
            a.outputs().len(),
            b.outputs().len()
        )));
    }
    if fulllock_netlist::topo::is_cyclic(a) || fulllock_netlist::topo::is_cyclic(b) {
        return Err(SatError::BadConfig(
            "equivalence checking requires acyclic netlists".into(),
        ));
    }

    let mut cnf = Cnf::new();
    let inputs: Vec<Var> = a.inputs().iter().map(|_| cnf.new_var()).collect();
    let vars_a = encode_into(a, &mut cnf, &inputs);
    let vars_b = encode_into(b, &mut cnf, &inputs);

    let mut diffs: Vec<Lit> = Vec::with_capacity(a.outputs().len());
    for (&oa, &ob) in a.outputs().iter().zip(b.outputs()) {
        let d = cnf.new_var();
        encode_gate(
            &mut cnf,
            fulllock_netlist::GateKind::Xor,
            d,
            &[vars_a[oa.index()], vars_b[ob.index()]],
        );
        diffs.push(Lit::positive(d));
    }
    cnf.add_clause(diffs);

    let mut solver = Solver::from_cnf(&cnf);
    match solver.solve_limited(&[], limits.unwrap_or_default()) {
        SolveResult::Unsat => Ok(EquivResult::Equivalent),
        SolveResult::Unknown => Ok(EquivResult::Unknown),
        SolveResult::Sat => Ok(EquivResult::Counterexample(
            inputs
                .iter()
                .map(|&v| solver.model_value(v).unwrap_or(false))
                .collect(),
        )),
    }
}

/// Checks a netlist against itself with some inputs tied to constants —
/// the building block for checking a locked circuit under a fixed key:
/// `check_under_constants(locked, &[(key_sig_positions, bits)], original)`.
///
/// `a_constants` lists (input position in `a`, forced value); the
/// remaining inputs of `a` are matched positionally with `b`'s inputs.
///
/// # Errors
///
/// Returns [`SatError::BadConfig`] if the free-input or output counts
/// differ, or if either netlist is cyclic.
pub fn check_under_constants(
    a: &Netlist,
    a_constants: &[(usize, bool)],
    b: &Netlist,
    limits: Option<SolveLimits>,
) -> Result<EquivResult, SatError> {
    let constant_positions: Vec<usize> = a_constants.iter().map(|&(p, _)| p).collect();
    let free_count = a.inputs().len() - a_constants.len();
    if free_count != b.inputs().len() {
        return Err(SatError::BadConfig(format!(
            "free input counts differ: {} vs {}",
            free_count,
            b.inputs().len()
        )));
    }
    if a.outputs().len() != b.outputs().len() {
        return Err(SatError::BadConfig(format!(
            "output counts differ: {} vs {}",
            a.outputs().len(),
            b.outputs().len()
        )));
    }
    if fulllock_netlist::topo::is_cyclic(a) || fulllock_netlist::topo::is_cyclic(b) {
        return Err(SatError::BadConfig(
            "equivalence checking requires acyclic netlists".into(),
        ));
    }

    let mut cnf = Cnf::new();
    // Shared variables for b's inputs; fresh (later unit-forced) variables
    // for a's constant inputs.
    let shared: Vec<Var> = b.inputs().iter().map(|_| cnf.new_var()).collect();
    let mut a_inputs: Vec<Var> = Vec::with_capacity(a.inputs().len());
    let mut next_shared = 0usize;
    for position in 0..a.inputs().len() {
        if constant_positions.contains(&position) {
            a_inputs.push(cnf.new_var());
        } else {
            a_inputs.push(shared[next_shared]);
            next_shared += 1;
        }
    }
    let vars_a = encode_into(a, &mut cnf, &a_inputs);
    let vars_b = encode_into(b, &mut cnf, &shared);
    for &(position, value) in a_constants {
        cnf.add_clause([Lit::with_polarity(a_inputs[position], value)]);
    }

    let mut diffs: Vec<Lit> = Vec::with_capacity(a.outputs().len());
    for (&oa, &ob) in a.outputs().iter().zip(b.outputs()) {
        let d = cnf.new_var();
        encode_gate(
            &mut cnf,
            fulllock_netlist::GateKind::Xor,
            d,
            &[vars_a[oa.index()], vars_b[ob.index()]],
        );
        diffs.push(Lit::positive(d));
    }
    cnf.add_clause(diffs);

    let mut solver = Solver::from_cnf(&cnf);
    match solver.solve_limited(&[], limits.unwrap_or_default()) {
        SolveResult::Unsat => Ok(EquivResult::Equivalent),
        SolveResult::Unknown => Ok(EquivResult::Unknown),
        SolveResult::Sat => Ok(EquivResult::Counterexample(
            shared
                .iter()
                .map(|&v| solver.model_value(v).unwrap_or(false))
                .collect(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fulllock_netlist::{benchmarks, GateKind};

    fn not_not(n: usize) -> Netlist {
        let mut nl = Netlist::new("nn");
        let a = nl.add_input("a");
        let mut prev = a;
        for _ in 0..n {
            prev = nl.add_gate(GateKind::Not, &[prev]).unwrap();
        }
        nl.mark_output(prev);
        nl
    }

    #[test]
    fn double_negation_is_identity() {
        let buf = {
            let mut nl = Netlist::new("b");
            let a = nl.add_input("a");
            let g = nl.add_gate(GateKind::Buf, &[a]).unwrap();
            nl.mark_output(g);
            nl
        };
        assert!(check(&not_not(2), &buf, None).unwrap().is_equivalent());
        // Odd chain is an inverter, not a buffer.
        match check(&not_not(3), &buf, None).unwrap() {
            EquivResult::Counterexample(cex) => assert_eq!(cex.len(), 1),
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn benchmark_is_equivalent_to_itself() {
        let nl = benchmarks::load("c432").unwrap();
        assert!(check(&nl, &nl, None).unwrap().is_equivalent());
    }

    #[test]
    fn different_benchmarks_are_not_equivalent() {
        // c499 and c1355 stand-ins share the interface (41/32) but are
        // different random functions.
        let a = benchmarks::load("c499").unwrap();
        let b = benchmarks::load("c1355").unwrap();
        match check(&a, &b, None).unwrap() {
            EquivResult::Counterexample(cex) => assert_eq!(cex.len(), 41),
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn counterexample_actually_differs() {
        let a = benchmarks::load("c499").unwrap();
        let b = benchmarks::load("c1355").unwrap();
        let EquivResult::Counterexample(cex) = check(&a, &b, None).unwrap() else {
            panic!("expected counterexample");
        };
        let sim_a = fulllock_netlist::Simulator::new(&a).unwrap();
        let sim_b = fulllock_netlist::Simulator::new(&b).unwrap();
        assert_ne!(sim_a.run(&cex).unwrap(), sim_b.run(&cex).unwrap());
    }

    #[test]
    fn interface_mismatch_is_an_error() {
        let a = benchmarks::load("c17").unwrap();
        let b = benchmarks::load("c432").unwrap();
        assert!(check(&a, &b, None).is_err());
    }

    #[test]
    fn constants_pin_inputs() {
        // y = MUX(s, a, b) with s forced to 0 is just `a` (as a function
        // of the remaining inputs a, b).
        let mut mux = Netlist::new("m");
        let s = mux.add_input("s");
        let a = mux.add_input("a");
        let b = mux.add_input("b");
        let y = mux.add_gate(GateKind::Mux, &[s, a, b]).unwrap();
        mux.mark_output(y);

        let mut pass = Netlist::new("p");
        let a2 = pass.add_input("a");
        let _b2 = pass.add_input("b");
        let g = pass.add_gate(GateKind::Buf, &[a2]).unwrap();
        pass.mark_output(g);

        assert!(check_under_constants(&mux, &[(0, false)], &pass, None)
            .unwrap()
            .is_equivalent());
        assert!(matches!(
            check_under_constants(&mux, &[(0, true)], &pass, None).unwrap(),
            EquivResult::Counterexample(_)
        ));
    }
}
