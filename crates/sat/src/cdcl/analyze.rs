//! First-UIP conflict analysis, conflict-clause minimization, and LBD
//! ("literal block distance") computation.
//!
//! LBD is the number of distinct decision levels among a clause's literals
//! (Audemard & Simon's "glue"). Low-LBD clauses chain propagations across
//! few levels and are empirically the ones worth keeping; the learnt-DB
//! reduction in `mod.rs` keeps glue ≤ 2 clauses forever and evicts
//! worst-glue first.

use crate::{Lit, Var};

use super::clause_db::{CRef, CREF_UNDEF};
use super::Solver;

impl Solver {
    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first, max-level literal second), the backtrack level, and
    /// the learnt clause's LBD.
    pub(super) fn analyze(&mut self, mut confl: CRef) -> (Vec<Lit>, u32, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::positive(Var::new(0))]; // slot 0 patched below
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let current = self.decision_level();

        loop {
            self.bump_clause(confl);
            // Glucose-style refresh: a learnt clause met during analysis
            // may have a lower LBD under the current assignment than when
            // it was learnt — remember the improvement so reduction ranks
            // it more favourably.
            if self.db.is_learnt(confl) {
                let lbd = self.clause_lbd(confl);
                if lbd < self.db.lbd(confl) {
                    self.db.set_lbd(confl, lbd);
                }
            }
            // When resolving on a reason clause, slot 0 holds the literal
            // being resolved away; skip it.
            let start = usize::from(p.is_some());
            for k in start..self.db.size(confl) {
                let q = self.db.lit(confl, k);
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(v);
                    if self.level[v] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next trail literal to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            let v = lit.var().index();
            self.seen[v] = false;
            counter -= 1;
            p = Some(lit);
            if counter == 0 {
                break;
            }
            confl = self.reason[v];
            debug_assert_ne!(confl, CREF_UNDEF, "non-decision literal has a reason");
        }
        learnt[0] = !p.expect("loop ran at least once");

        // Conflict-clause minimization (non-recursive / "basic" mode): a
        // literal is redundant if its reason's other literals are all
        // already in the clause (seen) or fixed at the root level. The
        // `seen` flags still mark exactly the learnt literals here.
        let mut kept = Vec::with_capacity(learnt.len());
        kept.push(learnt[0]);
        let mut minimized = 0u64;
        for &q in &learnt[1..] {
            let v = q.var().index();
            let r = self.reason[v];
            let redundant = r != CREF_UNDEF
                && self.db.lits(r).all(|l| {
                    let rv = l.var().index();
                    rv == v || self.seen[rv] || self.level[rv] == 0
                });
            if redundant {
                minimized += 1;
                self.seen[v] = false;
            } else {
                kept.push(q);
            }
        }
        self.stats.minimized_literals += minimized;
        let mut learnt = kept;

        // Compute backtrack level and position the max-level literal at
        // slot 1 (so both watches are correct after backjumping).
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        let lbd = self.lbd_of(&learnt);
        // Clear remaining `seen` flags.
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        (learnt, bt_level, lbd)
    }

    /// LBD of a literal slice under the current assignment.
    pub(super) fn lbd_of(&mut self, lits: &[Lit]) -> u32 {
        self.level_stamp += 1;
        let stamp = self.level_stamp;
        let mut lbd = 0;
        for &l in lits {
            let lev = self.level[l.var().index()] as usize;
            if self.level_seen[lev] != stamp {
                self.level_seen[lev] = stamp;
                lbd += 1;
            }
        }
        lbd
    }

    /// LBD of a stored clause under the current assignment.
    fn clause_lbd(&mut self, c: CRef) -> u32 {
        self.level_stamp += 1;
        let stamp = self.level_stamp;
        let mut lbd = 0;
        for k in 0..self.db.size(c) {
            let lev = self.level[self.db.lit(c, k).var().index()] as usize;
            if self.level_seen[lev] != stamp {
                self.level_seen[lev] = stamp;
                lbd += 1;
            }
        }
        lbd
    }
}
