//! A CDCL (conflict-driven clause-learning) SAT solver.
//!
//! MiniSAT/Glucose-family architecture: all clauses live back-to-back in a
//! flat `u32` arena (`clause_db`), propagation uses two watched literals
//! with blockers, conflicts are analyzed to the first UIP with clause
//! minimization (`analyze`), decisions come from a VSIDS activity heap
//! (`heap`) with phase saving, restarts follow the Luby sequence, and the
//! learnt database is reduced LBD-first (glue ≤ 2 clauses are kept
//! forever) with arena compaction so watch lists stay dense. The solver is
//! incremental: clauses may be added between [`Solver::solve`] calls (the
//! SAT attack grows its miter formula by two circuit copies per iteration)
//! and solving accepts assumption literals.
//!
//! # Example
//!
//! ```
//! use fulllock_sat::cdcl::{SolveResult, Solver};
//! use fulllock_sat::Lit;
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause([Lit::positive(a), Lit::positive(b)]);
//! solver.add_clause([Lit::negative(a)]);
//! assert_eq!(solver.solve(&[]), SolveResult::Sat);
//! assert_eq!(solver.model_value(b), Some(true));
//! ```

mod analyze;
mod clause_db;
mod heap;
mod simplify;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::certify::DratTrace;
use crate::{Cnf, Lit, Var};

use clause_db::{CRef, ClauseDb, CREF_UNDEF};
use heap::VarHeap;
use simplify::SimpState;

/// Verdict of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A model was found; read it with [`Solver::model_value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// A resource limit ([`SolveLimits`]) was hit first.
    Unknown,
}

/// Resource limits for one [`Solver::solve_limited`] call, built with
/// [`SolveLimits::builder`].
///
/// Besides the conflict cap and wall-clock deadline, a limit set can carry
/// a learnt-arena memory cap (the solver force-reduces its learnt database
/// and gives up if it still exceeds the cap) and a shared interrupt flag —
/// the cooperative-cancellation hook the portfolio racer uses to stop the
/// losing workers as soon as one finishes.
///
/// ```
/// use std::time::{Duration, Instant};
/// use fulllock_sat::cdcl::SolveLimits;
///
/// let limits = SolveLimits::builder()
///     .deadline(Instant::now() + Duration::from_secs(10))
///     .max_conflicts(500_000)
///     .max_learnt_bytes(64 << 20)
///     .build();
/// assert_eq!(limits.max_conflicts(), Some(500_000));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SolveLimits {
    max_conflicts: Option<u64>,
    deadline: Option<Instant>,
    max_learnt_bytes: Option<usize>,
    interrupt: Option<Arc<AtomicBool>>,
}

impl SolveLimits {
    /// Starts building a limit set; `build` with nothing set means
    /// "run to completion".
    pub fn builder() -> SolveLimitsBuilder {
        SolveLimitsBuilder {
            inner: SolveLimits::default(),
        }
    }

    /// The conflict cap, if any.
    pub fn max_conflicts(&self) -> Option<u64> {
        self.max_conflicts
    }

    /// The wall-clock deadline, if any (checked at restarts and every few
    /// thousand conflicts/decisions, so overshoot is bounded).
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The learnt-arena memory cap in bytes, if any.
    pub fn max_learnt_bytes(&self) -> Option<usize> {
        self.max_learnt_bytes
    }

    /// The shared cooperative-interrupt flag, if any.
    pub fn interrupt_flag(&self) -> Option<&Arc<AtomicBool>> {
        self.interrupt.as_ref()
    }

    /// Whether the interrupt flag (if any) has been raised.
    pub fn interrupted(&self) -> bool {
        self.interrupt
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }
}

/// Builder for [`SolveLimits`].
#[derive(Debug, Clone, Default)]
pub struct SolveLimitsBuilder {
    inner: SolveLimits,
}

impl SolveLimitsBuilder {
    /// Stop once this wall-clock instant passes.
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.inner.deadline = Some(deadline);
        self
    }

    /// Stop this long from now (convenience for [`Self::deadline`]).
    pub fn timeout(self, timeout: Duration) -> Self {
        self.deadline(Instant::now() + timeout)
    }

    /// Stop after this many conflicts.
    pub fn max_conflicts(mut self, max: u64) -> Self {
        self.inner.max_conflicts = Some(max);
        self
    }

    /// Stop once the learnt-clause arena exceeds this many bytes even
    /// right after a forced database reduction.
    pub fn max_learnt_bytes(mut self, bytes: usize) -> Self {
        self.inner.max_learnt_bytes = Some(bytes);
        self
    }

    /// Stop as soon as this shared flag is raised (polled at the same
    /// cadence as the deadline). Lets an external controller — e.g. the
    /// portfolio's first finisher — cancel an in-flight solve.
    pub fn interrupt(mut self, flag: Arc<AtomicBool>) -> Self {
        self.inner.interrupt = Some(flag);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> SolveLimits {
        self.inner
    }
}

/// Tunable search parameters of one [`Solver`] instance.
///
/// The defaults reproduce the solver's historical behaviour; the other
/// constructors exist to *diversify* a portfolio — workers with different
/// decay rates, restart schedules, and initial polarities explore the
/// search space differently, and the first to finish wins.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverConfig {
    /// VSIDS variable-activity decay (activity increment grows by
    /// `1/var_decay` per conflict).
    pub var_decay: f64,
    /// Learnt-clause activity decay.
    pub clause_decay: f64,
    /// Base of the Luby restart schedule, in conflicts.
    pub restart_base: f64,
    /// Growth factor of the Luby restart schedule.
    pub restart_factor: f64,
    /// Seed for randomized initial branching polarities; `None` keeps the
    /// classic all-false initial phase. Phase saving overrides the initial
    /// polarity once a variable has been assigned.
    pub polarity_seed: Option<u64>,
    /// Collect glue (LBD ≤ 2) learnt clauses and learnt units into an
    /// outbox for portfolio clause sharing ([`Solver::take_shared_clauses`]).
    pub share_glue: bool,
    /// Run bounded inprocessing (subsumption, variable elimination, clause
    /// vivification) between restarts and incremental solve calls; see
    /// [the `simplify` module](Solver::freeze_var). On by default; the
    /// `FULLLOCK_INPROCESS=off` environment variable flips the default so
    /// a whole test suite or campaign can run without simplification (the
    /// CI certification matrix uses this to prove verdicts are identical
    /// either way).
    pub inprocess: bool,
}

/// Environment variable that flips [`SolverConfig::default`]'s
/// `inprocess` field: `off` / `0` / `false` disable inprocessing, any
/// other value (or unset) keeps it on.
pub const INPROCESS_ENV: &str = "FULLLOCK_INPROCESS";

fn inprocess_from_env() -> bool {
    match std::env::var(INPROCESS_ENV) {
        Ok(value) => !matches!(
            value.trim().to_ascii_lowercase().as_str(),
            "off" | "0" | "false"
        ),
        Err(_) => true,
    }
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            var_decay: 0.95,
            clause_decay: 0.999,
            restart_base: 100.0,
            restart_factor: 2.0,
            polarity_seed: None,
            share_glue: false,
            inprocess: inprocess_from_env(),
        }
    }
}

impl SolverConfig {
    /// A diversified configuration for portfolio worker `index`. Worker 0
    /// is exactly the default configuration (so a 1-thread portfolio
    /// reproduces the sequential solver); higher indices vary the decay
    /// rates, restart schedule, and initial polarities.
    pub fn diversified(index: usize, seed: u64) -> SolverConfig {
        let base = SolverConfig::default();
        if index == 0 {
            return base;
        }
        // Small deterministic per-worker variations around the default.
        let mix = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(index as u64);
        match index % 4 {
            // Aggressive: fast decay, rapid restarts, random polarities.
            1 => SolverConfig {
                var_decay: 0.85,
                restart_base: 50.0,
                polarity_seed: Some(mix | 1),
                ..base
            },
            // Conservative: slow decay, long Luby arms.
            2 => SolverConfig {
                var_decay: 0.99,
                restart_base: 300.0,
                polarity_seed: Some(mix | 1),
                ..base
            },
            // Default dynamics with randomized polarities and a gentler
            // restart growth.
            3 => SolverConfig {
                restart_factor: 1.5,
                restart_base: 150.0,
                polarity_seed: Some(mix | 1),
                ..base
            },
            // index % 4 == 0 (index ≥ 4): default dynamics, fresh seed.
            _ => SolverConfig {
                polarity_seed: Some(mix | 1),
                ..base
            },
        }
    }
}

/// Cumulative statistics across a solver's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverStats {
    /// Decisions taken.
    pub decisions: u64,
    /// Unit propagations performed.
    pub propagations: u64,
    /// Conflicts encountered (equals learnt clauses, pre-reduction).
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses deleted by database reduction.
    pub deleted_learnts: u64,
    /// Literals removed from learnt clauses by conflict-clause
    /// minimization.
    pub minimized_literals: u64,
    /// Learnt-database reductions performed.
    pub reductions: u64,
    /// Histogram of learnt-clause LBD ("glue") at learning time: bucket
    /// `i` counts clauses with LBD `i + 1`; the last bucket collects
    /// LBD ≥ 8.
    pub lbd_histogram: [u64; 8],
    /// Wall-clock nanoseconds spent inside unit propagation.
    pub propagate_ns: u64,
    /// Wall-clock nanoseconds spent inside conflict analysis.
    pub analyze_ns: u64,
    /// Portfolio workers that panicked and were isolated during solves
    /// contributing to these stats. Always 0 for a sequential solver; set
    /// by [`PortfolioSolver::stats`](crate::portfolio::PortfolioSolver::stats).
    pub worker_panics: u64,
    /// Exchanged clauses rejected at import because they failed validation
    /// (out-of-range variable, duplicate literal, or tautology). Always 0
    /// for a sequential solver.
    pub exchange_rejects: u64,
    /// `Sat` answers whose model was re-checked against the original
    /// clauses and passed (see
    /// [`certify`](crate::certify::CertifyingBackend)).
    pub certified_models: u64,
    /// `solve`/`solve_limited` calls answered by this solver instance —
    /// with [`SolverStats::learnts_carried`], the solver-reuse signal of
    /// an incremental attack loop.
    pub solves: u64,
    /// Learnt clauses already live at the start of each solve call,
    /// summed over calls: how much derived knowledge incremental solving
    /// carried across DIP iterations instead of rediscovering.
    pub learnts_carried: u64,
    /// Inprocessing rounds performed.
    pub inprocessings: u64,
    /// Variables removed by bounded variable elimination (restored
    /// variables are not subtracted).
    pub vars_eliminated: u64,
    /// Clauses deleted because another clause subsumed them.
    pub clauses_subsumed: u64,
    /// Clauses replaced by a strictly stronger clause (root-false literal
    /// stripping and self-subsuming resolution).
    pub clauses_strengthened: u64,
    /// Clauses shortened by vivification.
    pub vivification_shrinks: u64,
}

impl SolverStats {
    /// Mean learnt-clause LBD from the histogram (the overflow bucket
    /// counts as 8); 0 before the first conflict.
    pub fn mean_lbd(&self) -> f64 {
        let total: u64 = self.lbd_histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .lbd_histogram
            .iter()
            .enumerate()
            .map(|(i, &n)| (i as u64 + 1) * n)
            .sum();
        weighted as f64 / total as f64
    }

    /// Propagations per second of cumulative in-propagation *thread* time
    /// (`propagate_ns`), not wall-clock; 0 before any propagation.
    ///
    /// Because both numerator and denominator are additive counters, stats
    /// [`merge`](Self::merge)d across portfolio workers yield the correct
    /// aggregate per-CPU-second rate. On a single solver thread the two
    /// notions coincide. Never average or sum the *rates* of several
    /// workers — merge the counters, then derive.
    pub fn props_per_cpu_sec(&self) -> f64 {
        if self.propagate_ns == 0 {
            0.0
        } else {
            self.propagations as f64 * 1e9 / self.propagate_ns as f64
        }
    }

    /// Accumulates another stats block into this one, field by field. All
    /// fields are additive counters (including the timing counters, which
    /// are per-thread nanoseconds), so merging portfolio worker stats and
    /// then deriving rates gives the true aggregate — unlike summing or
    /// averaging per-worker rates.
    pub fn merge(&mut self, other: &SolverStats) {
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.conflicts += other.conflicts;
        self.restarts += other.restarts;
        self.deleted_learnts += other.deleted_learnts;
        self.minimized_literals += other.minimized_literals;
        self.reductions += other.reductions;
        for (bucket, &n) in self.lbd_histogram.iter_mut().zip(&other.lbd_histogram) {
            *bucket += n;
        }
        self.propagate_ns += other.propagate_ns;
        self.analyze_ns += other.analyze_ns;
        self.worker_panics += other.worker_panics;
        self.exchange_rejects += other.exchange_rejects;
        self.certified_models += other.certified_models;
        self.solves += other.solves;
        self.learnts_carried += other.learnts_carried;
        self.inprocessings += other.inprocessings;
        self.vars_eliminated += other.vars_eliminated;
        self.clauses_subsumed += other.clauses_subsumed;
        self.clauses_strengthened += other.clauses_strengthened;
        self.vivification_shrinks += other.vivification_shrinks;
    }
}

// Per-literal assignment values: `assigns[lit.code()]` answers "what is
// this literal's value" in one load, with no sign fix-up on the hot path.
const VAL_FALSE: u8 = 0;
const VAL_TRUE: u8 = 1;
const VAL_UNDEF: u8 = 2;

#[derive(Debug, Clone, Copy)]
struct Watch {
    clause: CRef,
    /// A literal of the clause other than the watched one; if it is already
    /// true the clause is satisfied and the watch scan can skip the clause.
    blocker: Lit,
}

/// The CDCL solver. See the [module docs](self) for the feature set.
#[derive(Debug)]
pub struct Solver {
    db: ClauseDb,
    watches: Vec<Vec<Watch>>,

    /// Indexed by `Lit::code()`: both polarities are written on
    /// assignment so lookups need no sign arithmetic.
    assigns: Vec<u8>,
    level: Vec<u32>,
    reason: Vec<CRef>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,

    activity: Vec<f64>,
    var_inc: f64,
    heap: VarHeap,
    polarity: Vec<bool>,

    cla_inc: f32,
    max_learnts: f64,

    ok: bool,
    model: Vec<bool>,
    stats: SolverStats,

    config: SolverConfig,
    /// xorshift state for randomized initial polarities (None ⇒ all-false).
    polarity_rng: Option<u64>,
    /// Glue clauses and learnt units collected for portfolio sharing
    /// (only when `config.share_glue`); drained by
    /// [`Solver::take_shared_clauses`].
    outbox: Vec<Vec<Lit>>,

    /// Assumptions proven jointly unsatisfiable by the last failing
    /// `solve*` call (MiniSAT's `analyzeFinal` conflict, kept in
    /// assumption polarity); empty unless that call returned `Unsat`
    /// because the assumptions conflicted.
    assumption_core: Vec<Lit>,

    // Scratch for conflict analysis.
    seen: Vec<bool>,
    // Scratch for LBD computation: level -> stamp of last visit.
    level_seen: Vec<u64>,
    level_stamp: u64,

    /// DRAT trace of every clause added, learnt, and deleted; `None` (the
    /// default) keeps proof logging entirely off the hot path.
    proof: Option<DratTrace>,

    /// Inprocessing state: frozen/eliminated variables, the elimination
    /// stack, and round triggers (see the `simplify` module).
    simp: SimpState,
    /// Problem clauses ever handed to [`Solver::add_clause`] (deletions do
    /// not subtract): the pristine-solver guard of [`Solver::enable_proof`].
    added_clauses: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver with default parameters.
    pub fn new() -> Solver {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates an empty solver with explicit search parameters.
    pub fn with_config(config: SolverConfig) -> Solver {
        Solver {
            db: ClauseDb::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            heap: VarHeap::new(),
            polarity: Vec::new(),
            cla_inc: 1.0,
            max_learnts: 0.0,
            ok: true,
            model: Vec::new(),
            stats: SolverStats::default(),
            config,
            polarity_rng: config.polarity_seed.map(|s| s | 1),
            outbox: Vec::new(),
            assumption_core: Vec::new(),
            seen: Vec::new(),
            level_seen: vec![0],
            level_stamp: 0,
            proof: None,
            simp: SimpState::default(),
            added_clauses: 0,
        }
    }

    /// Builds a solver pre-loaded with a formula.
    pub fn from_cnf(cnf: &Cnf) -> Solver {
        Solver::from_cnf_with_config(cnf, SolverConfig::default())
    }

    /// Builds a configured solver pre-loaded with a formula.
    pub fn from_cnf_with_config(cnf: &Cnf, config: SolverConfig) -> Solver {
        let mut solver = Solver::with_config(config);
        solver.ensure_vars(cnf.num_vars());
        for clause in cnf.clauses() {
            solver.add_clause(clause.iter().copied());
        }
        solver
    }

    /// The search parameters this solver was built with.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.level.len());
        let init_polarity = match &mut self.polarity_rng {
            None => false,
            Some(state) => {
                *state ^= *state << 13;
                *state ^= *state >> 7;
                *state ^= *state << 17;
                *state & 1 == 1
            }
        };
        self.assigns.push(VAL_UNDEF);
        self.assigns.push(VAL_UNDEF);
        self.level.push(0);
        self.reason.push(CREF_UNDEF);
        self.activity.push(0.0);
        self.polarity.push(init_polarity);
        self.seen.push(false);
        self.level_seen.push(0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.simp.frozen.push(false);
        self.simp.eliminated.push(false);
        self.heap.insert(v.index(), &self.activity);
        v
    }

    /// Ensures at least `n` variables exist.
    pub fn ensure_vars(&mut self, n: usize) {
        while self.level.len() < n {
            self.new_var();
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.level.len()
    }

    /// Number of original (problem) clauses added so far, excluding learnt
    /// clauses.
    pub fn num_clauses(&self) -> usize {
        self.db.num_problem()
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Bumps the imported-clause rejection counter (portfolio exchange
    /// validation).
    pub(crate) fn bump_exchange_rejects(&mut self) {
        self.stats.exchange_rejects += 1;
    }

    /// Turns on DRAT proof logging. Must be called on a pristine solver —
    /// before any clause is added — so the trace covers the whole
    /// derivation; returns `false` (and logs nothing) otherwise.
    pub fn enable_proof(&mut self) -> bool {
        if self.added_clauses > 0 || !self.trail.is_empty() || !self.ok {
            return false;
        }
        self.proof = Some(DratTrace::new());
        true
    }

    /// The DRAT trace recorded since [`Solver::enable_proof`], if enabled.
    pub fn proof(&self) -> Option<&DratTrace> {
        self.proof.as_ref()
    }

    /// Adds a clause, growing the variable space as needed. Returns `false`
    /// if the formula is now trivially unsatisfiable (an empty clause, or a
    /// conflict at the root level).
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> bool {
        self.cancel_until(0);
        if !self.ok {
            return false;
        }
        let mut clause: Vec<Lit> = lits.into_iter().collect();
        self.added_clauses += 1;
        for &l in &clause {
            self.ensure_vars(l.var().index() + 1);
        }
        // A clause over an eliminated variable restores it first (rare:
        // interface variables are frozen, so only an exchange import or an
        // unusual caller lands here).
        if self.mentions_eliminated(&clause) {
            self.restore_all_eliminated();
            if !self.ok {
                return false;
            }
        }
        // Root-level simplification: drop false literals, detect satisfied
        // clauses and tautologies.
        clause.sort_unstable();
        clause.dedup();
        if let Some(trace) = &mut self.proof {
            trace.push_original(clause.clone());
        }
        let mut simplified = Vec::with_capacity(clause.len());
        let mut prev: Option<Lit> = None;
        for &l in &clause {
            if let Some(p) = prev {
                if p == !l {
                    return true; // tautology: contains l and ¬l (adjacent after sort)
                }
            }
            prev = Some(l);
            match self.assigns[l.code()] {
                VAL_TRUE => return true, // already satisfied at root
                VAL_FALSE => {}          // drop the false literal
                _ => simplified.push(l),
            }
        }
        // Dropping root-false literals is a reverse-unit-propagation step
        // (the dropped literals' negations are root consequences), so the
        // simplified clause is logged as a checkable DRAT addition.
        if simplified != clause && !simplified.is_empty() {
            self.log_proof_add(&simplified);
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                self.log_proof_add(&[]);
                false
            }
            1 => {
                if !self.enqueue(simplified[0], CREF_UNDEF) {
                    self.ok = false;
                    self.log_proof_add(&[]);
                    return false;
                }
                if self.propagate().is_some() {
                    self.ok = false;
                    self.log_proof_add(&[]);
                    return false;
                }
                true
            }
            _ => {
                let cref = self.db.alloc(&simplified, false);
                self.attach_clause(cref);
                true
            }
        }
    }

    /// Records a derived clause in the DRAT trace, if proof logging is on.
    fn log_proof_add(&mut self, lits: &[Lit]) {
        if let Some(trace) = &mut self.proof {
            trace.push_add(lits.to_vec());
        }
    }

    /// Bytes currently occupied by learnt clauses in the arena (the
    /// quantity [`SolveLimitsBuilder::max_learnt_bytes`] caps).
    pub fn learnt_arena_bytes(&self) -> usize {
        self.db.learnt_words() * std::mem::size_of::<u32>()
    }

    /// Drains the shared-clause outbox: glue (LBD ≤ 2) learnt clauses and
    /// learnt units collected since the last drain. Empty unless the
    /// solver was configured with [`SolverConfig::share_glue`].
    pub fn take_shared_clauses(&mut self) -> Vec<Vec<Lit>> {
        std::mem::take(&mut self.outbox)
    }

    /// Solves under assumption literals with no resource limits.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_limited(assumptions, SolveLimits::default())
    }

    /// Solves under assumption literals and resource limits. Returns
    /// [`SolveResult::Unknown`] as soon as any limit — conflict cap,
    /// deadline, learnt-memory cap, or cooperative interrupt — is hit;
    /// partial statistics remain readable via [`Solver::stats`].
    pub fn solve_limited(&mut self, assumptions: &[Lit], limits: SolveLimits) -> SolveResult {
        self.cancel_until(0);
        self.assumption_core.clear();
        if !self.ok {
            return SolveResult::Unsat;
        }
        self.stats.solves += 1;
        self.stats.learnts_carried += self.db.num_learnts() as u64;
        if self.deadline_or_interrupt_hit(&limits) {
            return SolveResult::Unknown;
        }
        for &a in assumptions {
            self.ensure_vars(a.var().index() + 1);
        }
        // Assuming an eliminated variable restores it first, so the
        // assumption constrains the formula it was meant to constrain.
        if self.mentions_eliminated(assumptions) {
            self.restore_all_eliminated();
        }
        self.maybe_inprocess(assumptions, &limits);
        if !self.ok {
            return SolveResult::Unsat;
        }
        if self.max_learnts == 0.0 {
            self.max_learnts = (self.db.num_problem() as f64 / 3.0).max(1000.0);
        }
        let conflict_start = self.stats.conflicts;
        let mut restart_round = 0u64;
        loop {
            let budget = self.config.restart_base * luby(self.config.restart_factor, restart_round);
            restart_round += 1;
            match self.search(assumptions, budget as u64, &limits, conflict_start) {
                SearchOutcome::Sat => {
                    self.model = (0..self.num_vars())
                        .map(|v| self.assigns[2 * v] == VAL_TRUE)
                        .collect();
                    // Variables removed by elimination carry arbitrary
                    // assignments; patch them so the model satisfies the
                    // pre-elimination formula too (certification re-checks
                    // models against every clause ever added).
                    self.extend_model_with_eliminated();
                    self.cancel_until(0);
                    return SolveResult::Sat;
                }
                SearchOutcome::Unsat => {
                    self.cancel_until(0);
                    return SolveResult::Unsat;
                }
                SearchOutcome::Restart => {
                    self.stats.restarts += 1;
                    self.cancel_until(0);
                    self.maybe_inprocess(assumptions, &limits);
                    if !self.ok {
                        return SolveResult::Unsat;
                    }
                }
                SearchOutcome::LimitHit => {
                    self.cancel_until(0);
                    return SolveResult::Unknown;
                }
            }
        }
    }

    /// The last model's value for a variable (only meaningful right after a
    /// [`SolveResult::Sat`]); `None` for variables created after that solve.
    pub fn model_value(&self, var: Var) -> Option<bool> {
        self.model.get(var.index()).copied()
    }

    /// The last model as a dense vector (empty before the first SAT).
    pub fn model(&self) -> &[bool] {
        &self.model
    }

    /// The subset of the last `solve*` call's assumptions proven jointly
    /// unsatisfiable, in assumption polarity (MiniSAT's `analyzeFinal`
    /// conflict clause, negated). Meaningful only right after a
    /// [`SolveResult::Unsat`] answer; empty when the formula is UNSAT
    /// regardless of assumptions (a root-level conflict), and cleared by
    /// the next solve call.
    ///
    /// Not guaranteed minimal, but typically far smaller than the full
    /// assumption set — the oracle-quarantine logic in the attack layer
    /// uses it to localise which asserted I/O pairs conflict.
    pub fn final_assumption_core(&self) -> &[Lit] {
        &self.assumption_core
    }

    // ---- internals -----------------------------------------------------

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn attach_clause(&mut self, cref: CRef) {
        debug_assert!(self.db.size(cref) >= 2);
        let l0 = self.db.lit(cref, 0);
        let l1 = self.db.lit(cref, 1);
        self.watches[l0.code()].push(Watch {
            clause: cref,
            blocker: l1,
        });
        self.watches[l1.code()].push(Watch {
            clause: cref,
            blocker: l0,
        });
    }

    fn enqueue(&mut self, lit: Lit, reason: CRef) -> bool {
        match self.assigns[lit.code()] {
            VAL_TRUE => true,
            VAL_FALSE => false,
            _ => {
                self.assigns[lit.code()] = VAL_TRUE;
                self.assigns[(!lit).code()] = VAL_FALSE;
                let v = lit.var().index();
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.trail.push(lit);
                true
            }
        }
    }

    /// Propagates all enqueued assignments; returns a conflicting clause
    /// reference if one arises.
    fn propagate(&mut self) -> Option<CRef> {
        let start = Instant::now();
        let confl = self.propagate_inner();
        self.stats.propagate_ns += start.elapsed().as_nanos() as u64;
        confl
    }

    fn propagate_inner(&mut self) -> Option<CRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            if self.watches[false_lit.code()].is_empty() {
                continue;
            }
            // Take the list (a pointer move, no copy), compact it in place
            // with a read/write cursor pair, and move it back. Watches that
            // migrate to another literal or belong to deleted clauses are
            // dropped by not advancing the write cursor.
            let mut list = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut conflict = None;
            let mut i = 0;
            let mut j = 0;
            'watches: while i < list.len() {
                let w = list[i];
                i += 1;
                if self.assigns[w.blocker.code()] == VAL_TRUE {
                    list[j] = w;
                    j += 1;
                    continue;
                }
                let cref = w.clause;
                if self.db.is_deleted(cref) {
                    continue;
                }
                // Normalize: the false literal goes to slot 1.
                if self.db.lit(cref, 0) == false_lit {
                    self.db.swap_lits(cref, 0, 1);
                }
                debug_assert_eq!(self.db.lit(cref, 1), false_lit);
                let first = self.db.lit(cref, 0);
                if self.assigns[first.code()] == VAL_TRUE {
                    list[j] = Watch {
                        clause: cref,
                        blocker: first,
                    };
                    j += 1;
                    continue;
                }
                // Look for a replacement watch.
                for k in 2..self.db.size(cref) {
                    let cand = self.db.lit(cref, k);
                    if self.assigns[cand.code()] != VAL_FALSE {
                        self.db.swap_lits(cref, 1, k);
                        self.watches[cand.code()].push(Watch {
                            clause: cref,
                            blocker: first,
                        });
                        continue 'watches;
                    }
                }
                // Clause is unit or conflicting: it stays watched here.
                list[j] = Watch {
                    clause: cref,
                    blocker: first,
                };
                j += 1;
                if self.assigns[first.code()] == VAL_FALSE {
                    // Conflict: preserve the unscanned remainder and bail.
                    while i < list.len() {
                        list[j] = list[i];
                        j += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(cref);
                    break;
                }
                let enq = self.enqueue(first, cref);
                debug_assert!(enq, "undef literal must enqueue");
            }
            list.truncate(j);
            self.watches[false_lit.code()] = list;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn cancel_until(&mut self, target: u32) {
        while self.decision_level() > target {
            let lim = self.trail_lim.pop().expect("level > 0 implies a limit");
            while self.trail.len() > lim {
                let lit = self.trail.pop().expect("trail at least lim long");
                let v = lit.var().index();
                self.polarity[v] = lit.is_positive();
                self.assigns[lit.code()] = VAL_UNDEF;
                self.assigns[(!lit).code()] = VAL_UNDEF;
                self.reason[v] = CREF_UNDEF;
                self.heap.insert(v, &self.activity);
            }
        }
        self.qhead = self.qhead.min(self.trail.len());
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.update(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: CRef) {
        if !self.db.is_learnt(cref) {
            return;
        }
        let bumped = self.db.activity(cref) + self.cla_inc;
        self.db.set_activity(cref, bumped);
        if bumped > 1e20 {
            for idx in 0..self.db.learnts.len() {
                let r = self.db.learnts[idx];
                let rescaled = self.db.activity(r) * 1e-20;
                self.db.set_activity(r, rescaled);
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn pick_branch_lit(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap.pop_max(&self.activity) {
            if self.assigns[2 * v] == VAL_UNDEF {
                return Some(Lit::with_polarity(Var::new(v), self.polarity[v]));
            }
        }
        None
    }

    /// A learnt clause currently acting as the reason of its asserting
    /// literal must not be deleted.
    fn is_locked(&self, cref: CRef) -> bool {
        let first = self.db.lit(cref, 0);
        self.assigns[first.code()] == VAL_TRUE && self.reason[first.var().index()] == cref
    }

    /// Deletes the worst half of the learnt database. Binary clauses, glue
    /// (LBD ≤ 2) clauses, and locked reasons are kept unconditionally; the
    /// rest are ranked worst-first by (LBD descending, activity ascending).
    /// When enough of the arena is dead, it is compacted and all clause
    /// references (watches, reasons, learnt index) are remapped.
    fn reduce_db(&mut self) {
        self.stats.reductions += 1;
        let target = self.db.num_learnts() / 2;
        let mut removable: Vec<CRef> = Vec::with_capacity(self.db.num_learnts());
        for idx in 0..self.db.learnts.len() {
            let c = self.db.learnts[idx];
            if self.db.size(c) <= 2 || self.db.lbd(c) <= 2 || self.is_locked(c) {
                continue;
            }
            removable.push(c);
        }
        removable.sort_by(|&a, &b| {
            self.db.lbd(b).cmp(&self.db.lbd(a)).then(
                self.db
                    .activity(a)
                    .partial_cmp(&self.db.activity(b))
                    .expect("activities are finite"),
            )
        });
        for &c in removable.iter().take(target) {
            if self.proof.is_some() {
                let lits: Vec<Lit> = self.db.lits(c).collect();
                if let Some(trace) = &mut self.proof {
                    trace.push_delete(lits);
                }
            }
            self.db.mark_deleted(c);
            self.stats.deleted_learnts += 1;
        }
        self.db.prune_deleted_learnts();
        // Deleted clauses' watches are dropped lazily by propagation; once
        // a quarter of the arena is dead, compact it so the watch scan
        // stays dense.
        if self.db.wasted_fraction() > 0.25 {
            self.compact_db();
        }
    }

    fn compact_db(&mut self) {
        // Drop watches on deleted clauses first so every surviving watch
        // has a post-compaction mapping.
        for list in &mut self.watches {
            list.retain(|w| !self.db.is_deleted(w.clause));
        }
        let map = self.db.compact();
        for list in &mut self.watches {
            for w in list.iter_mut() {
                w.clause = map.get(w.clause);
            }
        }
        // Reasons are reset to CREF_UNDEF on unassignment, so every
        // non-sentinel entry points at a live (locked or problem) clause.
        for r in &mut self.reason {
            if *r != CREF_UNDEF {
                *r = map.get(*r);
            }
        }
    }

    /// Polled every ~1k conflicts / ~4k decisions: wall-clock deadline and
    /// the cooperative interrupt flag.
    fn deadline_or_interrupt_hit(&self, limits: &SolveLimits) -> bool {
        if limits.interrupted() {
            return true;
        }
        if let Some(deadline) = limits.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        false
    }

    /// MiniSAT's `analyzeFinal`: the assumption `failed` was found falsified
    /// while extending the assumption prefix, so its negation was implied by
    /// the assumptions decided below it. Walk the implication trail backwards
    /// from the falsifying literal, expanding reasons, until only assumption
    /// decisions remain — those, plus `failed` itself, form the conflicting
    /// assumption subset stored in `assumption_core` (kept in assumption
    /// polarity, unlike MiniSAT's negated conflict clause).
    fn analyze_final(&mut self, failed: Lit) {
        self.assumption_core.clear();
        self.assumption_core.push(failed);
        if self.decision_level() == 0 {
            // `!failed` is a root consequence: `failed` conflicts alone.
            return;
        }
        self.seen[failed.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var().index();
            if !self.seen[v] {
                continue;
            }
            let r = self.reason[v];
            if r == CREF_UNDEF {
                // A decision inside the assumption prefix IS an assumption.
                debug_assert!(self.level[v] > 0);
                self.assumption_core.push(lit);
            } else {
                for k in 0..self.db.size(r) {
                    let q = self.db.lit(r, k);
                    if q.var().index() != v && self.level[q.var().index()] > 0 {
                        self.seen[q.var().index()] = true;
                    }
                }
            }
            self.seen[v] = false;
        }
        self.seen[failed.var().index()] = false;
    }

    fn search(
        &mut self,
        assumptions: &[Lit],
        conflict_budget: u64,
        limits: &SolveLimits,
        conflict_start: u64,
    ) -> SearchOutcome {
        let mut conflicts_this_round = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_this_round += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    // A conflict with no decisions open is derived by root
                    // unit propagation alone: the empty clause is RUP.
                    self.log_proof_add(&[]);
                    return SearchOutcome::Unsat;
                }
                let analyze_start = Instant::now();
                let (learnt, bt_level, lbd) = self.analyze(confl);
                self.stats.analyze_ns += analyze_start.elapsed().as_nanos() as u64;
                self.log_proof_add(&learnt);
                self.stats.lbd_histogram[lbd.clamp(1, 8) as usize - 1] += 1;
                self.cancel_until(bt_level);
                if self.config.share_glue && (learnt.len() == 1 || lbd <= 2) {
                    // Units and glue clauses are cheap to import and prune
                    // the most; cap the outbox in case nobody drains it.
                    if self.outbox.len() < 4096 {
                        self.outbox.push(learnt.clone());
                    }
                }
                if learnt.len() == 1 {
                    let ok = self.enqueue(learnt[0], CREF_UNDEF);
                    debug_assert!(ok, "asserting literal must be undef after backjump");
                } else {
                    let asserting = learnt[0];
                    let cref = self.db.alloc(&learnt, true);
                    self.db.set_lbd(cref, lbd);
                    self.attach_clause(cref);
                    self.bump_clause(cref);
                    let ok = self.enqueue(asserting, cref);
                    debug_assert!(ok, "asserting literal must be undef after backjump");
                }
                self.var_inc /= self.config.var_decay;
                self.cla_inc /= self.config.clause_decay as f32;
                if self.db.num_learnts() as f64 > self.max_learnts + self.trail.len() as f64 {
                    self.reduce_db();
                    self.max_learnts *= 1.1;
                }
                if conflicts_this_round.is_multiple_of(1024) {
                    if self.deadline_or_interrupt_hit(limits) {
                        return SearchOutcome::LimitHit;
                    }
                    // Learnt-arena memory cap: force a reduction; if the
                    // arena is still over the cap the instance does not fit
                    // the budget.
                    if let Some(bytes) = limits.max_learnt_bytes {
                        let cap_words = bytes / std::mem::size_of::<u32>();
                        if self.db.learnt_words() > cap_words {
                            self.reduce_db();
                            if self.db.learnt_words() > cap_words {
                                return SearchOutcome::LimitHit;
                            }
                        }
                    }
                }
                if let Some(max) = limits.max_conflicts {
                    if self.stats.conflicts - conflict_start >= max {
                        return SearchOutcome::LimitHit;
                    }
                }
                if conflicts_this_round >= conflict_budget {
                    return SearchOutcome::Restart;
                }
            } else {
                // Deadline/interrupt check between decisions too
                // (propagation-heavy instances may rarely conflict).
                if self.stats.decisions.is_multiple_of(4096)
                    && self.deadline_or_interrupt_hit(limits)
                {
                    return SearchOutcome::LimitHit;
                }
                // Assumption handling, then VSIDS decision.
                let next = if (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.assigns[a.code()] {
                        VAL_TRUE => {
                            // Already implied: open an empty level for it.
                            self.trail_lim.push(self.trail.len());
                            continue;
                        }
                        VAL_FALSE => {
                            self.analyze_final(a);
                            return SearchOutcome::Unsat;
                        }
                        _ => a,
                    }
                } else {
                    match self.pick_branch_lit() {
                        Some(l) => {
                            self.stats.decisions += 1;
                            l
                        }
                        None => return SearchOutcome::Sat,
                    }
                };
                self.trail_lim.push(self.trail.len());
                let ok = self.enqueue(next, CREF_UNDEF);
                debug_assert!(ok, "decision literal is undef");
            }
        }
    }
}

enum SearchOutcome {
    Sat,
    Unsat,
    Restart,
    LimitHit,
}

/// The Luby restart sequence 1,1,2,1,1,2,4,… scaled by `y`.
fn luby(y: f64, mut x: u64) -> f64 {
    let (mut size, mut seq) = (1u64, 0u32);
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    y.powi(seq as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_sat::{self, RandomSatConfig};
    use crate::{dpll, Cnf};

    fn lit(i: i64) -> Lit {
        Lit::from_dimacs(i)
    }

    #[test]
    fn trivial_sat_and_model() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::positive(a), Lit::positive(b)]);
        s.add_clause([Lit::negative(a)]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.model_value(a), Some(false));
        assert_eq!(s.model_value(b), Some(true));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([Lit::positive(a)]);
        assert!(!s.add_clause([Lit::negative(a)]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause([]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn tautologies_are_dropped() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([Lit::positive(a), Lit::negative(a)]);
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn pigeonhole_unsat() {
        // 4 pigeons, 3 holes.
        let (p, h) = (4usize, 3usize);
        let mut s = Solver::new();
        let var = |i: usize, j: usize| Lit::positive(Var::new(i * h + j));
        s.ensure_vars(p * h);
        for i in 0..p {
            s.add_clause((0..h).map(|j| var(i, j)));
        }
        for j in 0..h {
            for i1 in 0..p {
                for i2 in i1 + 1..p {
                    s.add_clause([!var(i1, j), !var(i2, j)]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn agrees_with_dpll_on_random_instances() {
        for seed in 0..30 {
            let cnf = random_sat::generate(RandomSatConfig {
                vars: 25,
                clauses: 107, // near the phase transition: mixed verdicts
                clause_len: 3,
                seed,
            })
            .unwrap();
            let reference = dpll::solve(&cnf, None);
            let mut s = Solver::from_cnf(&cnf);
            let got = s.solve(&[]);
            match reference.result {
                dpll::DpllResult::Sat(_) => {
                    assert_eq!(got, SolveResult::Sat, "seed {seed}");
                    assert!(cnf.is_satisfied_by(s.model()), "seed {seed} model check");
                }
                dpll::DpllResult::Unsat => assert_eq!(got, SolveResult::Unsat, "seed {seed}"),
                dpll::DpllResult::Unknown => unreachable!("no budget set"),
            }
        }
    }

    #[test]
    fn assumptions_flip_verdicts() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::positive(a), Lit::positive(b)]);
        assert_eq!(s.solve(&[Lit::negative(a)]), SolveResult::Sat);
        assert_eq!(s.model_value(b), Some(true));
        assert_eq!(
            s.solve(&[Lit::negative(a), Lit::negative(b)]),
            SolveResult::Unsat
        );
        // The solver is still usable and SAT without assumptions.
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn assumption_core_is_a_conflicting_subset() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        let d = s.new_var();
        // a ∧ b → ¬c, so assuming {a, b, c} conflicts; d is irrelevant.
        s.add_clause([Lit::negative(a), Lit::negative(b), Lit::negative(c)]);
        let assumptions = [
            Lit::positive(d),
            Lit::positive(a),
            Lit::positive(b),
            Lit::positive(c),
        ];
        assert_eq!(s.solve(&assumptions), SolveResult::Unsat);
        let core = s.final_assumption_core().to_vec();
        assert!(!core.is_empty());
        assert!(core.iter().all(|l| assumptions.contains(l)), "{core:?}");
        assert!(!core.contains(&Lit::positive(d)), "{core:?}");
        // Re-solving under only the core is still UNSAT.
        assert_eq!(s.solve(&core), SolveResult::Unsat);
        // A later non-Unsat solve clears the core.
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(s.final_assumption_core().is_empty());
    }

    #[test]
    fn directly_contradictory_assumptions_core() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::positive(a), Lit::positive(b)]);
        let assumptions = [Lit::positive(a), Lit::negative(a)];
        assert_eq!(s.solve(&assumptions), SolveResult::Unsat);
        let core = s.final_assumption_core().to_vec();
        assert!(core.contains(&Lit::positive(a)));
        assert!(core.contains(&Lit::negative(a)));
    }

    #[test]
    fn root_level_unsat_has_empty_core() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([Lit::positive(a)]);
        s.add_clause([Lit::negative(a)]);
        assert_eq!(s.solve(&[Lit::positive(a)]), SolveResult::Unsat);
        assert!(
            s.final_assumption_core().is_empty(),
            "formula is UNSAT regardless of assumptions"
        );
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::positive(a), Lit::positive(b)]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        s.add_clause([Lit::negative(a)]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        s.add_clause([Lit::negative(b)]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn conflict_limit_returns_unknown() {
        let cnf = random_sat::generate(RandomSatConfig {
            vars: 120,
            clauses: 516,
            clause_len: 3,
            seed: 7,
        })
        .unwrap();
        let mut s = Solver::from_cnf(&cnf);
        let result = s.solve_limited(&[], SolveLimits::builder().max_conflicts(1).build());
        // Either it solves within one conflict (unlikely) or reports Unknown.
        assert_ne!(result, SolveResult::Unsat);
    }

    #[test]
    fn deadline_in_the_past_returns_quickly() {
        let cnf = random_sat::generate(RandomSatConfig {
            vars: 200,
            clauses: 860,
            clause_len: 3,
            seed: 3,
        })
        .unwrap();
        let mut s = Solver::from_cnf(&cnf);
        let result = s.solve_limited(
            &[],
            SolveLimits::builder()
                .max_conflicts(10)
                .deadline(Instant::now())
                .build(),
        );
        assert_ne!(result, SolveResult::Unsat);
    }

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<f64> = (0..9).map(|i| luby(2.0, i)).collect();
        assert_eq!(seq, vec![1.0, 1.0, 2.0, 1.0, 1.0, 2.0, 4.0, 1.0, 1.0]);
    }

    #[test]
    fn duplicate_literals_are_merged() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([Lit::positive(a), Lit::positive(a)]);
        // Merged to a unit clause: `a` is forced.
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.model_value(a), Some(true));
        assert_eq!(s.solve(&[Lit::negative(a)]), SolveResult::Unsat);
    }

    #[test]
    fn many_solves_reuse_learnt_clauses() {
        let cnf = random_sat::generate(RandomSatConfig {
            vars: 60,
            clauses: 255,
            clause_len: 3,
            seed: 11,
        })
        .unwrap();
        let mut s = Solver::from_cnf(&cnf);
        let first = s.solve(&[]);
        let second = s.solve(&[]);
        assert_eq!(first, second);
    }

    #[test]
    fn xor_chain_equivalence_unsat() {
        // Encode x0 ⊕ x1 = 1, x1 ⊕ x2 = 1, x0 ⊕ x2 = 1: odd cycle, UNSAT.
        let mut cnf = Cnf::new();
        let v: Vec<Var> = cnf.new_vars(3);
        let xor1 = |cnf: &mut Cnf, a: Var, b: Var| {
            cnf.add_clause([Lit::positive(a), Lit::positive(b)]);
            cnf.add_clause([Lit::negative(a), Lit::negative(b)]);
        };
        xor1(&mut cnf, v[0], v[1]);
        xor1(&mut cnf, v[1], v[2]);
        xor1(&mut cnf, v[0], v[2]);
        let mut s = Solver::from_cnf(&cnf);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn clause_database_reduction_fires_on_long_runs() {
        // A hard 170-var instance generates thousands of conflicts,
        // crossing the initial max_learnts threshold.
        let cnf = random_sat::generate(RandomSatConfig::from_ratio(170, 4.3, 3, 1)).unwrap();
        let mut s = Solver::from_cnf(&cnf);
        let result = s.solve_limited(&[], SolveLimits::builder().max_conflicts(20_000).build());
        assert_ne!(result, SolveResult::Unknown, "instance within budget");
        assert!(
            s.stats().deleted_learnts > 0,
            "expected learnt-clause deletion after {} conflicts",
            s.stats().conflicts
        );
        assert!(s.stats().reductions > 0);
    }

    #[test]
    fn minimization_fires_and_preserves_verdicts() {
        let mut minimized_somewhere = false;
        for seed in 0..10 {
            let cnf = random_sat::generate(RandomSatConfig {
                vars: 40,
                clauses: 172,
                clause_len: 3,
                seed,
            })
            .unwrap();
            let reference = dpll::solve(&cnf, None);
            let mut s = Solver::from_cnf(&cnf);
            let got = s.solve(&[]);
            match reference.result {
                dpll::DpllResult::Sat(_) => {
                    assert_eq!(got, SolveResult::Sat);
                    assert!(cnf.is_satisfied_by(s.model()));
                }
                dpll::DpllResult::Unsat => assert_eq!(got, SolveResult::Unsat),
                dpll::DpllResult::Unknown => unreachable!(),
            }
            minimized_somewhere |= s.stats().minimized_literals > 0;
        }
        assert!(
            minimized_somewhere,
            "clause minimization should fire on phase-transition instances"
        );
    }

    #[test]
    fn lit_helper() {
        let mut s = Solver::new();
        s.add_clause([lit(3)]);
        assert_eq!(s.num_vars(), 3);
    }

    #[test]
    fn both_watches_falsified_in_one_batch() {
        // Deciding `d` falsifies BOTH watched literals of (a ∨ b) within a
        // single propagation batch: the binary clauses force ¬a then ¬b
        // before (a ∨ b)'s watch list is revisited, so the conflict is
        // detected mid-scan and the unscanned remainder of ¬a's watch list
        // — here the watch of (a ∨ c) — must be preserved intact.
        let mut s = Solver::new();
        let d = s.new_var();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_clause([Lit::negative(d), Lit::negative(a)]);
        s.add_clause([Lit::negative(d), Lit::negative(b)]);
        s.add_clause([Lit::positive(a), Lit::positive(b)]);
        s.add_clause([Lit::positive(a), Lit::positive(c)]);
        assert_eq!(s.solve(&[Lit::positive(d)]), SolveResult::Unsat);
        // The learnt unit ¬d makes the formula SAT without assumptions, and
        // (a ∨ c) must still be watched correctly: forcing ¬a must imply c.
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.model_value(d), Some(false));
        assert_eq!(
            s.solve(&[Lit::negative(a), Lit::negative(c)]),
            SolveResult::Unsat,
            "(a ∨ c) lost its watches after the mid-scan conflict"
        );
    }

    #[test]
    fn lbd_histogram_and_timing_populate() {
        let cnf = random_sat::generate(RandomSatConfig {
            vars: 60,
            clauses: 258,
            clause_len: 3,
            seed: 5,
        })
        .unwrap();
        let mut s = Solver::from_cnf(&cnf);
        let _ = s.solve(&[]);
        let stats = s.stats();
        assert!(stats.conflicts > 0, "phase-transition instance conflicts");
        // Every analyzed conflict records one LBD sample; a root-level
        // conflict ends the solve without analysis, so allow one less.
        let histogram_total: u64 = stats.lbd_histogram.iter().sum();
        assert!(
            histogram_total == stats.conflicts || histogram_total + 1 == stats.conflicts,
            "histogram {histogram_total} vs conflicts {}",
            stats.conflicts
        );
        assert!(stats.mean_lbd() >= 1.0);
        assert!(stats.propagate_ns > 0);
        assert!(stats.analyze_ns > 0);
        assert!(stats.props_per_cpu_sec() > 0.0);
    }

    #[test]
    fn glue_clauses_survive_reduction() {
        // After heavy reduction, every surviving learnt clause obeys the
        // keep policy's spirit: the histogram proves low-LBD clauses were
        // learnt, and verdict correctness (checked against DPLL elsewhere)
        // proves reduction never deleted a locked reason.
        let cnf = random_sat::generate(RandomSatConfig::from_ratio(150, 4.3, 3, 9)).unwrap();
        let mut s = Solver::from_cnf(&cnf);
        let result = s.solve_limited(&[], SolveLimits::builder().max_conflicts(30_000).build());
        assert_ne!(result, SolveResult::Unknown);
        if s.stats().reductions > 0 {
            assert!(s.stats().deleted_learnts > 0);
        }
    }
}
