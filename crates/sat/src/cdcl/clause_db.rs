//! The flat clause arena: every clause — problem and learnt — lives
//! back-to-back in one `Vec<u32>`, referenced by offset.
//!
//! Layout of one clause at offset `c`:
//!
//! ```text
//! arena[c]     size << 2 | deleted << 1 | learnt
//! arena[c+1]   LBD ("glue": distinct decision levels at learning time)
//! arena[c+2]   activity (f32 bits)
//! arena[c+3..] literal codes (Lit::code), size of them
//! ```
//!
//! Compared to one heap allocation per clause, the arena keeps the watch
//! scan's memory traffic sequential (header and watched literals share a
//! cache line for short clauses) and makes learnt-database reduction a
//! single compacting sweep instead of a free-list churn.

use crate::Lit;

/// Reference to a clause: its offset in the arena.
pub(crate) type CRef = u32;

/// Sentinel: "no clause" (also used as "no reason" on the trail).
pub(crate) const CREF_UNDEF: CRef = u32::MAX;

const HEADER_WORDS: usize = 3;
const FLAG_LEARNT: u32 = 0b01;
const FLAG_DELETED: u32 = 0b10;

/// Forward map from pre-compaction to post-compaction clause offsets.
///
/// Only indices that were live clause headers are meaningful.
#[derive(Debug)]
pub(crate) struct CRefMap {
    forward: Vec<u32>,
}

impl CRefMap {
    /// The new offset of a clause that was live at `old`.
    pub(crate) fn get(&self, old: CRef) -> CRef {
        self.forward[old as usize]
    }
}

/// The arena of all clauses plus the learnt-clause index.
#[derive(Debug, Default)]
pub(crate) struct ClauseDb {
    arena: Vec<u32>,
    /// Offsets of live learnt clauses, in arena order.
    pub(crate) learnts: Vec<CRef>,
    /// Words occupied by deleted clauses (drives compaction).
    wasted: usize,
    /// Words occupied by live learnt clauses (headers included) — the
    /// quantity a learnt-arena memory cap is enforced against.
    learnt_words: usize,
    num_problem: usize,
}

impl ClauseDb {
    pub(crate) fn new() -> ClauseDb {
        ClauseDb::default()
    }

    /// Appends a clause; returns its reference.
    pub(crate) fn alloc(&mut self, lits: &[Lit], learnt: bool) -> CRef {
        debug_assert!(!lits.is_empty());
        let cref = u32::try_from(self.arena.len()).expect("clause arena exceeds u32 offsets");
        self.arena
            .push(((lits.len() as u32) << 2) | (u32::from(learnt) * FLAG_LEARNT));
        self.arena.push(0); // LBD, set by the learner
        self.arena.push(0f32.to_bits());
        self.arena.extend(lits.iter().map(|l| l.code() as u32));
        if learnt {
            self.learnts.push(cref);
            self.learnt_words += HEADER_WORDS + lits.len();
        } else {
            self.num_problem += 1;
        }
        cref
    }

    /// Arena words occupied by live learnt clauses (headers included).
    pub(crate) fn learnt_words(&self) -> usize {
        self.learnt_words
    }

    /// Number of live problem (non-learnt) clauses.
    pub(crate) fn num_problem(&self) -> usize {
        self.num_problem
    }

    /// Number of live learnt clauses.
    pub(crate) fn num_learnts(&self) -> usize {
        self.learnts.len()
    }

    #[inline]
    pub(crate) fn size(&self, c: CRef) -> usize {
        (self.arena[c as usize] >> 2) as usize
    }

    #[inline]
    pub(crate) fn is_learnt(&self, c: CRef) -> bool {
        self.arena[c as usize] & FLAG_LEARNT != 0
    }

    #[inline]
    pub(crate) fn is_deleted(&self, c: CRef) -> bool {
        self.arena[c as usize] & FLAG_DELETED != 0
    }

    #[inline]
    pub(crate) fn lit(&self, c: CRef, i: usize) -> Lit {
        Lit::from_code(self.arena[c as usize + HEADER_WORDS + i] as usize)
    }

    #[inline]
    pub(crate) fn swap_lits(&mut self, c: CRef, i: usize, j: usize) {
        self.arena
            .swap(c as usize + HEADER_WORDS + i, c as usize + HEADER_WORDS + j);
    }

    /// The clause's literals as an iterator (header skipped).
    pub(crate) fn lits(&self, c: CRef) -> impl Iterator<Item = Lit> + '_ {
        let base = c as usize + HEADER_WORDS;
        self.arena[base..base + self.size(c)]
            .iter()
            .map(|&code| Lit::from_code(code as usize))
    }

    #[inline]
    pub(crate) fn lbd(&self, c: CRef) -> u32 {
        self.arena[c as usize + 1]
    }

    #[inline]
    pub(crate) fn set_lbd(&mut self, c: CRef, lbd: u32) {
        self.arena[c as usize + 1] = lbd;
    }

    #[inline]
    pub(crate) fn activity(&self, c: CRef) -> f32 {
        f32::from_bits(self.arena[c as usize + 2])
    }

    #[inline]
    pub(crate) fn set_activity(&mut self, c: CRef, activity: f32) {
        self.arena[c as usize + 2] = activity.to_bits();
    }

    /// Marks a clause deleted. Its watches are dropped lazily by the
    /// propagation scan and for good at the next [`ClauseDb::compact`].
    pub(crate) fn mark_deleted(&mut self, c: CRef) {
        debug_assert!(!self.is_deleted(c));
        self.arena[c as usize] |= FLAG_DELETED;
        self.wasted += HEADER_WORDS + self.size(c);
        if self.is_learnt(c) {
            self.learnt_words -= HEADER_WORDS + self.size(c);
        } else {
            // Inprocessing (subsumption, variable elimination) deletes
            // problem clauses too; keep the live count honest.
            self.num_problem -= 1;
        }
    }

    /// Every live (non-deleted) clause reference, problem and learnt, in
    /// arena order. Collect before mutating the database.
    pub(crate) fn iter_crefs(&self) -> impl Iterator<Item = CRef> + '_ {
        let mut offset = 0usize;
        std::iter::from_fn(move || {
            while offset < self.arena.len() {
                let header = self.arena[offset];
                let cref = offset as CRef;
                offset += HEADER_WORDS + (header >> 2) as usize;
                if header & FLAG_DELETED == 0 {
                    return Some(cref);
                }
            }
            None
        })
    }

    /// Drops deleted clauses from the learnt index (their arena words are
    /// reclaimed later by [`ClauseDb::compact`]).
    pub(crate) fn prune_deleted_learnts(&mut self) {
        let arena = &self.arena;
        self.learnts
            .retain(|&c| arena[c as usize] & FLAG_DELETED == 0);
    }

    /// Fraction of arena words occupied by deleted clauses.
    pub(crate) fn wasted_fraction(&self) -> f64 {
        if self.arena.is_empty() {
            0.0
        } else {
            self.wasted as f64 / self.arena.len() as f64
        }
    }

    /// Compacts the arena in place, dropping deleted clauses, and returns
    /// the old→new offset map so the solver can rewrite watch lists,
    /// reason pointers, and the learnt index. Literal order within each
    /// clause is preserved, so the two-watched-literal invariant survives
    /// untouched.
    pub(crate) fn compact(&mut self) -> CRefMap {
        let mut forward = vec![CREF_UNDEF; self.arena.len()];
        let mut write = 0usize;
        let mut read = 0usize;
        while read < self.arena.len() {
            let words = HEADER_WORDS + (self.arena[read] >> 2) as usize;
            if self.arena[read] & FLAG_DELETED == 0 {
                forward[read] = write as u32;
                self.arena.copy_within(read..read + words, write);
                write += words;
            }
            read += words;
        }
        self.arena.truncate(write);
        self.wasted = 0;
        let map = CRefMap { forward };
        self.learnts.retain_mut(|c| {
            *c = map.get(*c);
            *c != CREF_UNDEF
        });
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    fn lit(i: usize) -> Lit {
        Lit::positive(Var::new(i))
    }

    #[test]
    fn alloc_and_accessors_round_trip() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&[lit(0), lit(1), lit(2)], false);
        let b = db.alloc(&[lit(3), lit(4)], true);
        assert_eq!(db.size(a), 3);
        assert_eq!(db.size(b), 2);
        assert!(!db.is_learnt(a));
        assert!(db.is_learnt(b));
        assert_eq!(db.lits(a).collect::<Vec<_>>(), vec![lit(0), lit(1), lit(2)]);
        db.set_lbd(b, 2);
        db.set_activity(b, 1.5);
        assert_eq!(db.lbd(b), 2);
        assert_eq!(db.activity(b), 1.5);
        assert_eq!(db.num_problem(), 1);
        assert_eq!(db.num_learnts(), 1);
    }

    #[test]
    fn swap_preserves_contents() {
        let mut db = ClauseDb::new();
        let c = db.alloc(&[lit(0), lit(1), lit(2)], false);
        db.swap_lits(c, 0, 2);
        assert_eq!(db.lits(c).collect::<Vec<_>>(), vec![lit(2), lit(1), lit(0)]);
    }

    #[test]
    fn compaction_drops_deleted_and_remaps() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&[lit(0), lit(1)], false);
        let b = db.alloc(&[lit(2), lit(3), lit(4)], true);
        let c = db.alloc(&[lit(5), lit(6)], true);
        db.set_lbd(c, 2);
        db.mark_deleted(b);
        assert!(db.wasted_fraction() > 0.0);
        let map = db.compact();
        let new_a = map.get(a);
        let new_c = map.get(c);
        assert_eq!(new_a, a, "first clause does not move");
        assert!(new_c < c, "clause after a deleted one moves down");
        assert_eq!(db.lits(new_c).collect::<Vec<_>>(), vec![lit(5), lit(6)]);
        assert_eq!(db.lbd(new_c), 2);
        assert_eq!(db.learnts, vec![new_c]);
        assert_eq!(db.wasted_fraction(), 0.0);
    }

    #[test]
    fn compaction_of_clean_arena_is_identity() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&[lit(0), lit(1)], false);
        let b = db.alloc(&[lit(2), lit(3)], true);
        let map = db.compact();
        assert_eq!(map.get(a), a);
        assert_eq!(map.get(b), b);
    }
}
