//! The VSIDS decision heap: an indexed binary max-heap over variable
//! activities.

/// An indexed binary max-heap over variable activities.
#[derive(Debug, Default)]
pub(crate) struct VarHeap {
    heap: Vec<usize>,
    position: Vec<Option<usize>>,
}

impl VarHeap {
    pub(crate) fn new() -> VarHeap {
        VarHeap::default()
    }

    pub(crate) fn insert(&mut self, v: usize, activity: &[f64]) {
        if self.position.len() <= v {
            self.position.resize(v + 1, None);
        }
        if self.position[v].is_some() {
            return;
        }
        self.position[v] = Some(self.heap.len());
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    pub(crate) fn update(&mut self, v: usize, activity: &[f64]) {
        if let Some(pos) = self.position.get(v).copied().flatten() {
            self.sift_up(pos, activity);
        }
    }

    pub(crate) fn pop_max(&mut self, activity: &[f64]) -> Option<usize> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.position[top] = None;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last] = Some(0);
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut pos: usize, activity: &[f64]) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if activity[self.heap[pos]] <= activity[self.heap[parent]] {
                break;
            }
            self.swap(pos, parent);
            pos = parent;
        }
    }

    fn sift_down(&mut self, mut pos: usize, activity: &[f64]) {
        loop {
            let left = 2 * pos + 1;
            let right = left + 1;
            let mut best = pos;
            if left < self.heap.len() && activity[self.heap[left]] > activity[self.heap[best]] {
                best = left;
            }
            if right < self.heap.len() && activity[self.heap[right]] > activity[self.heap[best]] {
                best = right;
            }
            if best == pos {
                break;
            }
            self.swap(pos, best);
            pos = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.position[self.heap[a]] = Some(a);
        self.position[self.heap[b]] = Some(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = [0.5, 3.0, 1.0, 2.0];
        let mut heap = VarHeap::new();
        for v in 0..4 {
            heap.insert(v, &activity);
        }
        let order: Vec<usize> = std::iter::from_fn(|| heap.pop_max(&activity)).collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn reinsert_after_pop_is_allowed_and_deduplicated() {
        let activity = [1.0, 2.0];
        let mut heap = VarHeap::new();
        heap.insert(0, &activity);
        heap.insert(1, &activity);
        heap.insert(1, &activity); // duplicate: ignored
        assert_eq!(heap.pop_max(&activity), Some(1));
        heap.insert(1, &activity);
        assert_eq!(heap.pop_max(&activity), Some(1));
        assert_eq!(heap.pop_max(&activity), Some(0));
        assert_eq!(heap.pop_max(&activity), None);
    }

    #[test]
    fn update_moves_bumped_variable_up() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut heap = VarHeap::new();
        for v in 0..3 {
            heap.insert(v, &activity);
        }
        activity[0] = 10.0;
        heap.update(0, &activity);
        assert_eq!(heap.pop_max(&activity), Some(0));
    }
}
