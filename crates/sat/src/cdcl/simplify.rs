//! Inprocessing: formula simplification between restarts.
//!
//! Three bounded techniques run at decision level 0, triggered when the
//! problem database has grown noticeably (the DIP loop appends a key-cone
//! encoding per iteration) or a conflict budget has elapsed:
//!
//! * **subsumption / self-subsuming resolution** — a clause `C ⊆ D` kills
//!   `D`; if `C \ {l} ∪ {¬l} ⊆ D` then `¬l` is removed from `D`
//!   (strengthening);
//! * **bounded variable elimination (BVE)** — a variable whose positive ×
//!   negative occurrences resolve into no more clauses than were deleted
//!   is eliminated; its clauses are stored on an elimination stack so
//!   models can be reconstructed and the variable can be *restored* if a
//!   later clause or assumption mentions it;
//! * **clause vivification** — assume the negation of a clause's literals
//!   one by one; a conflict or forced literal proves a shorter clause,
//!   which replaces the original.
//!
//! Interface variables the caller [`froze`](crate::cdcl::Solver::freeze_var)
//! (the attack freezes its `x`/`k1`/`k2`/`act` vars) and the current
//! assumptions are never eliminated, so incremental solving keeps working.
//!
//! Every change is DRAT-logged when proof logging is on: resolvents and
//! strengthened/vivified clauses are reverse-unit-propagation additions
//! *while their parents are still live*, so additions are pushed before
//! the parent deletions and the built-in forward checker accepts the
//! trace (`CertifyLevel::Proof` keeps verifying with inprocessing on).

use super::clause_db::{CRef, CREF_UNDEF};
use super::{SolveLimits, Solver, VAL_FALSE, VAL_TRUE, VAL_UNDEF};
use crate::{Lit, Var};

/// A variable is only considered for elimination when both occurrence
/// lists are at most this long.
const BVE_MAX_OCCS: usize = 10;
/// Resolvents longer than this abort the elimination of their variable.
const BVE_MAX_RESOLVENT: usize = 20;
/// Clauses longer than this are not used as subsumers (they can still be
/// subsumed).
const SUBSUME_MAX_SIZE: usize = 12;
/// Occurrence lists longer than this are skipped by the subsumption scan.
const SUBSUME_MAX_OCCS: usize = 400;
/// Only clauses with a size in this range are vivification candidates.
const VIVIFY_SIZE: std::ops::RangeInclusive<usize> = 3..=12;
/// Unit propagations one inprocessing round may spend on vivification.
const VIVIFY_BUDGET: u64 = 200_000;
/// Conflicts between conflict-triggered inprocessing rounds.
const INPROCESS_CONFLICT_GAP: u64 = 20_000;
/// How many pass iterations run between deadline/interrupt polls — each
/// pass stays abortable so inprocessing never overshoots a wall-clock
/// budget by more than one bounded operation.
const LIMIT_POLL_INTERVAL: usize = 64;

/// Per-solver simplification state: which variables are frozen or
/// eliminated, the elimination stack for model reconstruction and
/// restore-on-reuse, and the triggers of the next round.
#[derive(Debug, Default)]
pub(super) struct SimpState {
    /// Variables the caller declared interface/assumption variables:
    /// never eliminated.
    pub(super) frozen: Vec<bool>,
    /// Variables currently eliminated by BVE.
    pub(super) eliminated: Vec<bool>,
    /// `(var, its deleted problem clauses)` in elimination order — the
    /// data both model reconstruction and restoration replay.
    pub(super) elim_stack: Vec<(Var, Vec<Vec<Lit>>)>,
    /// Problem-clause count after the last round (growth trigger).
    pub(super) last_problem: usize,
    /// `stats.conflicts` after the last round (conflict trigger).
    pub(super) last_conflicts: u64,
}

impl Solver {
    /// Declares `var` an interface variable: inprocessing will never
    /// eliminate it, so clauses and assumptions mentioning it stay cheap
    /// to add between solves.
    pub fn freeze_var(&mut self, var: Var) {
        self.ensure_vars(var.index() + 1);
        self.simp.frozen[var.index()] = true;
    }

    /// Whether `var` is currently eliminated by inprocessing (mentions of
    /// it in new clauses or assumptions restore it transparently).
    pub fn is_eliminated(&self, var: Var) -> bool {
        self.simp
            .eliminated
            .get(var.index())
            .copied()
            .unwrap_or(false)
    }

    /// Runs an inprocessing round if the triggers say it is worth it.
    /// Must be called at decision level 0. The limits bound the round
    /// itself: every pass polls the deadline/interrupt and aborts early
    /// (soundly — each operation is individually complete).
    pub(super) fn maybe_inprocess(&mut self, assumptions: &[Lit], limits: &SolveLimits) {
        if !self.config.inprocess || !self.ok {
            return;
        }
        if self.deadline_or_interrupt_hit(limits) {
            return;
        }
        let problem = self.db.num_problem();
        let grown = problem >= self.simp.last_problem + self.simp.last_problem / 5 + 100;
        let conflicted = self.stats.conflicts >= self.simp.last_conflicts + INPROCESS_CONFLICT_GAP;
        if grown || conflicted {
            // Simplification must never starve search: the round gets at
            // most half of whatever wall-clock remains.
            let round_limits = match limits.deadline() {
                Some(d) => {
                    let now = std::time::Instant::now();
                    let mut bounded = limits.clone();
                    bounded.deadline = Some(now + (d - now) / 2);
                    bounded
                }
                None => limits.clone(),
            };
            self.inprocess(assumptions, &round_limits);
        }
    }

    /// One full inprocessing round: clean, subsume/strengthen, eliminate,
    /// vivify, then compact if enough of the arena is dead.
    fn inprocess(&mut self, assumptions: &[Lit], limits: &SolveLimits) {
        debug_assert_eq!(self.decision_level(), 0);
        if self.propagate().is_some() {
            self.ok = false;
            self.log_proof_add(&[]);
            return;
        }
        self.stats.inprocessings += 1;
        // Deleting a clause that forced a root literal must leave no
        // dangling reason behind (conflict analysis never dereferences
        // level-0 reasons, but database compaction remaps every
        // non-sentinel one).
        self.clear_root_reasons();
        let mut temp_frozen = Vec::new();
        for &a in assumptions {
            let v = a.var().index();
            if !self.simp.frozen[v] {
                self.simp.frozen[v] = true;
                temp_frozen.push(v);
            }
        }

        self.clean_root_clauses(limits);
        if self.ok {
            self.subsume_and_strengthen(limits);
        }
        if self.ok {
            self.eliminate_vars(limits);
        }
        if self.ok {
            self.vivify_clauses(limits);
        }

        for v in temp_frozen {
            self.simp.frozen[v] = false;
        }
        self.simp.last_problem = self.db.num_problem();
        self.simp.last_conflicts = self.stats.conflicts;
        self.clear_root_reasons();
        if self.db.wasted_fraction() > 0.25 {
            self.db.prune_deleted_learnts();
            self.compact_db();
        }
    }

    /// Root-assigned literals need no reasons (analysis stops at level 0);
    /// clearing them lets inprocessing delete any clause.
    fn clear_root_reasons(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        for i in 0..self.trail.len() {
            let v = self.trail[i].var().index();
            self.reason[v] = CREF_UNDEF;
        }
    }

    /// DRAT-logs and marks a clause deleted.
    fn remove_clause(&mut self, c: CRef) {
        if self.proof.is_some() {
            let lits: Vec<Lit> = self.db.lits(c).collect();
            if let Some(trace) = &mut self.proof {
                trace.push_delete(lits);
            }
        }
        self.db.mark_deleted(c);
    }

    /// Replaces clause `c` by the (strictly stronger) `new_lits`: the new
    /// clause is DRAT-logged *before* the old one is deleted, so it is
    /// checkable while its parent is live.
    fn replace_clause(&mut self, c: CRef, new_lits: &[Lit]) {
        debug_assert!(!new_lits.is_empty());
        self.log_proof_add(new_lits);
        self.remove_clause(c);
        self.materialize_derived(new_lits);
    }

    /// Installs a derived clause that was already DRAT-logged, first
    /// re-simplifying it against the *current* root assignment — literals
    /// may have been fixed since the clause was computed, and attaching a
    /// watch to an already-propagated false literal would make the clause
    /// invisible to the search. A unit is enqueued and propagated; a
    /// root-satisfied clause is skipped entirely. Returns the new clause
    /// reference when one was allocated.
    fn materialize_derived(&mut self, lits: &[Lit]) -> Option<CRef> {
        let mut simplified: Vec<Lit> = Vec::new();
        for &l in lits {
            match self.assigns[l.code()] {
                VAL_TRUE => return None, // root-satisfied
                VAL_FALSE => {}
                _ => simplified.push(l),
            }
        }
        if simplified.len() != lits.len() && !simplified.is_empty() {
            self.log_proof_add(&simplified);
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                self.log_proof_add(&[]);
                None
            }
            1 => {
                if !self.enqueue(simplified[0], CREF_UNDEF) || self.propagate().is_some() {
                    self.ok = false;
                    self.log_proof_add(&[]);
                } else {
                    self.clear_root_reasons();
                }
                None
            }
            _ => {
                let nc = self.db.alloc(&simplified, false);
                self.attach_clause(nc);
                Some(nc)
            }
        }
    }

    /// Deletes root-satisfied clauses and strips root-false literals: the
    /// cone-reduced DIP assertions pin many interface literals at the
    /// root, and this pass folds those constants into the database.
    fn clean_root_clauses(&mut self, limits: &SolveLimits) {
        let crefs: Vec<CRef> = self.db.iter_crefs().collect();
        for (i, c) in crefs.into_iter().enumerate() {
            if !self.ok {
                return;
            }
            if i % LIMIT_POLL_INTERVAL == 0 && self.deadline_or_interrupt_hit(limits) {
                return;
            }
            if self.db.is_deleted(c) {
                continue;
            }
            let mut satisfied = false;
            let mut num_false = 0usize;
            for l in self.db.lits(c) {
                match self.assigns[l.code()] {
                    VAL_TRUE => {
                        satisfied = true;
                        break;
                    }
                    VAL_FALSE => num_false += 1,
                    _ => {}
                }
            }
            if satisfied {
                self.remove_clause(c);
            } else if num_false > 0 {
                let new_lits: Vec<Lit> = self
                    .db
                    .lits(c)
                    .filter(|l| self.assigns[l.code()] != VAL_FALSE)
                    .collect();
                debug_assert!(
                    !new_lits.is_empty(),
                    "all-false clause survived propagation"
                );
                self.replace_clause(c, &new_lits);
                self.stats.clauses_strengthened += 1;
            }
        }
    }

    /// 64-bit occurrence signature for the subset pre-check: a literal of
    /// `C` missing from `D`'s signature proves `C ⊄ D` in one AND.
    fn signature(&self, c: CRef) -> u64 {
        self.db
            .lits(c)
            .fold(0u64, |sig, l| sig | 1u64 << (l.code() % 64))
    }

    /// Whether every literal of `c` occurs in `d`.
    fn is_subset(&self, c: CRef, d: CRef) -> bool {
        self.db.lits(c).all(|cl| self.db.lits(d).any(|dl| dl == cl))
    }

    /// Whether every literal of `c` except `skip` occurs in `d` (used with
    /// `skip`'s negation known to be in `d`: self-subsuming resolution).
    fn is_subset_except(&self, c: CRef, d: CRef, skip: Lit) -> bool {
        self.db
            .lits(c)
            .filter(|&cl| cl != skip)
            .all(|cl| self.db.lits(d).any(|dl| dl == cl))
    }

    /// Forward subsumption and self-subsuming resolution over the problem
    /// clauses, bounded by occurrence-list length.
    fn subsume_and_strengthen(&mut self, limits: &SolveLimits) {
        let mut crefs: Vec<CRef> = self
            .db
            .iter_crefs()
            .filter(|&c| !self.db.is_learnt(c))
            .collect();
        crefs.sort_by_key(|&c| self.db.size(c));
        let mut occ: Vec<Vec<CRef>> = vec![Vec::new(); 2 * self.num_vars()];
        for &c in &crefs {
            for l in self.db.lits(c) {
                occ[l.code()].push(c);
            }
        }
        for (i, &c) in crefs.iter().enumerate() {
            if !self.ok {
                return;
            }
            if i % LIMIT_POLL_INTERVAL == 0 && self.deadline_or_interrupt_hit(limits) {
                return;
            }
            if self.db.is_deleted(c) || self.db.size(c) > SUBSUME_MAX_SIZE {
                continue;
            }
            let sig = self.signature(c);
            // Scan the shortest occurrence list for clauses C subsumes.
            let best = self
                .db
                .lits(c)
                .min_by_key(|l| occ[l.code()].len())
                .expect("clauses are non-empty");
            if occ[best.code()].len() <= SUBSUME_MAX_OCCS {
                for &d in &occ[best.code()] {
                    if d == c || self.db.is_deleted(d) || self.db.size(d) < self.db.size(c) {
                        continue;
                    }
                    if sig & !self.signature(d) == 0 && self.is_subset(c, d) {
                        self.remove_clause(d);
                        self.stats.clauses_subsumed += 1;
                    }
                }
            }
            // Self-subsuming resolution: C \ {l} ∪ {¬l} ⊆ D removes ¬l
            // from D (the resolvent of C and D on l subsumes D).
            let lits: Vec<Lit> = self.db.lits(c).collect();
            for &l in &lits {
                if self.db.is_deleted(c) {
                    break;
                }
                let sig_rest = sig & !(1u64 << (l.code() % 64));
                if occ[(!l).code()].len() > SUBSUME_MAX_OCCS {
                    continue;
                }
                for &d in &occ[(!l).code()] {
                    if d == c || self.db.is_deleted(d) || self.db.size(d) < self.db.size(c) {
                        continue;
                    }
                    if sig_rest & !self.signature(d) != 0 || !self.is_subset_except(c, d, l) {
                        continue;
                    }
                    let stronger: Vec<Lit> = self.db.lits(d).filter(|&dl| dl != !l).collect();
                    if stronger.is_empty() {
                        continue; // C = {l}, D = {¬l}: root conflict found elsewhere
                    }
                    self.replace_clause(d, &stronger);
                    self.stats.clauses_strengthened += 1;
                    if !self.ok {
                        return;
                    }
                }
            }
        }
    }

    /// Bounded variable elimination. A candidate must be unfrozen,
    /// unassigned, with short occurrence lists, and its pairwise
    /// resolvents must not outnumber the clauses they replace. The
    /// variable's problem clauses move to the elimination stack; learnt
    /// clauses mentioning it are simply deleted (they are implied).
    fn eliminate_vars(&mut self, limits: &SolveLimits) {
        // Occurrence lists over every live clause, maintained as
        // resolvents are added so later candidates see them.
        let mut occ: Vec<Vec<CRef>> = vec![Vec::new(); 2 * self.num_vars()];
        let crefs: Vec<CRef> = self.db.iter_crefs().collect();
        for &c in &crefs {
            for l in self.db.lits(c) {
                occ[l.code()].push(c);
            }
        }
        for v in 0..self.num_vars() {
            if !self.ok {
                return;
            }
            if v % LIMIT_POLL_INTERVAL == 0 && self.deadline_or_interrupt_hit(limits) {
                break;
            }
            if self.simp.frozen[v] || self.simp.eliminated[v] || self.assigns[2 * v] != VAL_UNDEF {
                continue;
            }
            let pos_lit = Lit::positive(Var::new(v));
            let live = |db: &super::ClauseDb, list: &[CRef]| -> Vec<CRef> {
                list.iter()
                    .copied()
                    .filter(|&c| !db.is_deleted(c))
                    .collect()
            };
            let pos = live(&self.db, &occ[pos_lit.code()]);
            let neg = live(&self.db, &occ[(!pos_lit).code()]);
            // Skip unused variables and oversized occurrence lists; only
            // problem clauses gate the decision (learnts are deleted, not
            // resolved).
            let pos_p: Vec<CRef> = pos
                .iter()
                .copied()
                .filter(|&c| !self.db.is_learnt(c))
                .collect();
            let neg_p: Vec<CRef> = neg
                .iter()
                .copied()
                .filter(|&c| !self.db.is_learnt(c))
                .collect();
            if pos_p.is_empty() && neg_p.is_empty() {
                continue;
            }
            if pos_p.len() > BVE_MAX_OCCS || neg_p.len() > BVE_MAX_OCCS {
                continue;
            }
            let Some(resolvents) = self.bounded_resolvents(&pos_p, &neg_p, pos_lit) else {
                continue;
            };
            // Commit: log and materialize every resolvent while the
            // parents are live (they make each resolvent RUP), then delete
            // the parents and every learnt mentioning v.
            for r in &resolvents {
                self.log_proof_add(r);
            }
            for r in &resolvents {
                if let Some(nc) = self.materialize_derived(r) {
                    for l in self.db.lits(nc).collect::<Vec<_>>() {
                        occ[l.code()].push(nc);
                    }
                }
                if !self.ok {
                    return;
                }
            }
            if self.assigns[2 * v] != VAL_UNDEF {
                // A unit resolvent's propagation fixed v through a still
                // live parent: abort the elimination (the resolvents stay,
                // they are implied; the next clean pass folds the parents).
                continue;
            }
            let stored: Vec<Vec<Lit>> = pos_p
                .iter()
                .chain(&neg_p)
                .map(|&c| self.db.lits(c).collect())
                .collect();
            for &c in pos_p.iter().chain(&neg_p) {
                self.remove_clause(c);
            }
            for &c in pos.iter().chain(&neg) {
                if self.db.is_learnt(c) && !self.db.is_deleted(c) {
                    self.remove_clause(c);
                    self.stats.deleted_learnts += 1;
                }
            }
            self.simp.eliminated[v] = true;
            self.simp.elim_stack.push((Var::new(v), stored));
            self.stats.vars_eliminated += 1;
        }
        self.db.prune_deleted_learnts();
    }

    /// The non-tautological pairwise resolvents of `pos` × `neg` on `v`,
    /// or `None` when they exceed the replaced clause count, a resolvent
    /// is too long, or a resolvent is empty (handled by the caller's
    /// propagation finding the root conflict on the units instead — an
    /// empty resolvent means both parents are units, which propagation
    /// has already resolved).
    fn bounded_resolvents(
        &self,
        pos: &[CRef],
        neg: &[CRef],
        pos_lit: Lit,
    ) -> Option<Vec<Vec<Lit>>> {
        let limit = pos.len() + neg.len();
        let mut resolvents: Vec<Vec<Lit>> = Vec::new();
        for &cp in pos {
            for &cn in neg {
                let mut r: Vec<Lit> = self.db.lits(cp).filter(|&l| l != pos_lit).collect();
                let before = r.len();
                for l in self.db.lits(cn).filter(|&l| l != !pos_lit) {
                    if r[..before].contains(&!l) {
                        r.clear();
                        break; // tautology: drop this resolvent
                    }
                    if !r[..before].contains(&l) {
                        r.push(l);
                    }
                }
                if r.is_empty() && before == 0 {
                    return None; // both parents units: a root conflict, not ours to handle
                }
                if r.is_empty() {
                    continue; // tautology
                }
                if r.len() > BVE_MAX_RESOLVENT {
                    return None;
                }
                resolvents.push(r);
                if resolvents.len() > limit {
                    return None;
                }
            }
        }
        Some(resolvents)
    }

    /// Clause vivification: for each candidate clause, assume the
    /// negations of its literals left to right at a throwaway decision
    /// level; a conflict or a forced literal proves a shorter clause.
    fn vivify_clauses(&mut self, limits: &SolveLimits) {
        let mut budget = VIVIFY_BUDGET;
        let crefs: Vec<CRef> = self
            .db
            .iter_crefs()
            .filter(|&c| !self.db.is_learnt(c) && VIVIFY_SIZE.contains(&self.db.size(c)))
            .collect();
        for c in crefs {
            if budget == 0 || !self.ok {
                break;
            }
            // Vivification propagates per candidate: poll every clause so
            // a tight wall-clock budget cuts the pass short.
            if self.deadline_or_interrupt_hit(limits) {
                break;
            }
            if self.db.is_deleted(c) {
                continue;
            }
            let lits: Vec<Lit> = self.db.lits(c).collect();
            if lits.iter().any(|l| self.assigns[l.code()] != VAL_UNDEF) {
                continue; // a root-assigned literal: next clean pass's job
            }
            debug_assert_eq!(self.decision_level(), 0);
            self.trail_lim.push(self.trail.len());
            let mut kept: Vec<Lit> = Vec::new();
            for &l in &lits {
                match self.assigns[l.code()] {
                    VAL_TRUE => {
                        // ¬kept propagated l: (kept ∨ l) is implied.
                        kept.push(l);
                        break;
                    }
                    VAL_FALSE => continue, // ¬l is implied by ¬kept: drop l
                    _ => {}
                }
                kept.push(l);
                let enq = self.enqueue(!l, CREF_UNDEF);
                debug_assert!(enq, "undef literal must enqueue");
                let before = self.stats.propagations;
                let conflict = self.propagate().is_some();
                budget = budget.saturating_sub(self.stats.propagations - before);
                if conflict {
                    // ¬kept alone is contradictory: kept is implied.
                    break;
                }
            }
            self.cancel_until(0);
            if kept.len() < lits.len() {
                self.replace_clause(c, &kept);
                self.stats.vivification_shrinks += 1;
            }
        }
    }

    /// Extends the model with values for eliminated variables, walking the
    /// elimination stack newest-first so clauses stored for an early
    /// elimination see the reconstructed values of later ones.
    pub(super) fn extend_model_with_eliminated(&mut self) {
        for idx in (0..self.simp.elim_stack.len()).rev() {
            let (var, _) = self.simp.elim_stack[idx];
            let mut forced: Option<bool> = None;
            for clause in &self.simp.elim_stack[idx].1 {
                let mut satisfied_by_others = false;
                let mut own_polarity = false;
                for &l in clause {
                    if l.var() == var {
                        own_polarity = l.is_positive();
                        continue;
                    }
                    let value = self.model.get(l.var().index()).copied().unwrap_or(false);
                    if value == l.is_positive() {
                        satisfied_by_others = true;
                        break;
                    }
                }
                if !satisfied_by_others {
                    debug_assert_ne!(
                        forced,
                        Some(!own_polarity),
                        "eliminated variable forced both ways: a resolvent is falsified"
                    );
                    forced = Some(own_polarity);
                }
            }
            if let Some(value) = forced {
                self.model[var.index()] = value;
            }
        }
    }

    /// Whether any literal mentions an eliminated variable (the trigger
    /// for [`Solver::restore_all_eliminated`]).
    pub(super) fn mentions_eliminated(&self, lits: &[Lit]) -> bool {
        !self.simp.elim_stack.is_empty()
            && lits.iter().any(|l| {
                self.simp
                    .eliminated
                    .get(l.var().index())
                    .copied()
                    .unwrap_or(false)
            })
    }

    /// Un-eliminates every variable by re-adding the stored problem
    /// clauses. Rare (a new clause or assumption touched an eliminated
    /// variable — interface variables are frozen precisely to avoid
    /// this); restoring the whole stack sidesteps the ordering hazards of
    /// partial restores, since clauses stored for an early elimination
    /// may mention variables eliminated later.
    pub(super) fn restore_all_eliminated(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        let stack = std::mem::take(&mut self.simp.elim_stack);
        for (var, _) in &stack {
            self.simp.eliminated[var.index()] = false;
        }
        for (_, clauses) in stack {
            for clause in clauses {
                self.reattach_stored(&clause);
                if !self.ok {
                    return;
                }
            }
        }
    }

    /// Re-adds one stored clause. It is logged as an original DRAT step —
    /// it genuinely re-enters the live set, and the forward checker
    /// accepts originals wherever they appear — then simplified against
    /// the current root assignment exactly like [`Solver::add_clause`].
    fn reattach_stored(&mut self, clause: &[Lit]) {
        if let Some(trace) = &mut self.proof {
            trace.push_original(clause.to_vec());
        }
        let mut simplified: Vec<Lit> = Vec::new();
        for &l in clause {
            match self.assigns[l.code()] {
                VAL_TRUE => return, // root-satisfied
                VAL_FALSE => {}
                _ => simplified.push(l),
            }
        }
        if simplified.len() != clause.len() && !simplified.is_empty() {
            self.log_proof_add(&simplified);
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                self.log_proof_add(&[]);
            }
            1 => {
                if !self.enqueue(simplified[0], CREF_UNDEF) || self.propagate().is_some() {
                    self.ok = false;
                    self.log_proof_add(&[]);
                }
            }
            _ => {
                let c = self.db.alloc(&simplified, false);
                self.attach_clause(c);
            }
        }
    }
}
