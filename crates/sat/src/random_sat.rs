//! Random fixed-length k-SAT generation (the workload of Fig 1).
//!
//! Mitchell, Selman & Levesque's classic experiment — reproduced as Fig 1
//! of the Full-Lock paper — draws clauses of exactly `k` distinct variables
//! with random polarities and measures DPLL effort as the clause/variable
//! ratio sweeps through the phase transition (hard band ≈ 3–6, peak ≈ 4.3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Cnf, Lit, SatError, Var};

/// Configuration for [`generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomSatConfig {
    /// Number of variables (≥ `clause_len`).
    pub vars: usize,
    /// Number of clauses.
    pub clauses: usize,
    /// Literals per clause (`k` of k-SAT; classically 3).
    pub clause_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomSatConfig {
    fn default() -> Self {
        RandomSatConfig {
            vars: 50,
            clauses: 215,
            clause_len: 3,
            seed: 0,
        }
    }
}

impl RandomSatConfig {
    /// Convenience constructor from a clause/variable ratio: clause count is
    /// `round(vars * ratio)`.
    pub fn from_ratio(vars: usize, ratio: f64, clause_len: usize, seed: u64) -> RandomSatConfig {
        RandomSatConfig {
            vars,
            clauses: (vars as f64 * ratio).round() as usize,
            clause_len,
            seed,
        }
    }
}

/// Generates a random k-SAT formula with distinct variables per clause.
///
/// # Errors
///
/// Returns [`SatError::BadConfig`] when `clause_len` is 0 or exceeds
/// `vars`.
///
/// # Example
///
/// ```
/// use fulllock_sat::random_sat::{generate, RandomSatConfig};
///
/// # fn main() -> Result<(), fulllock_sat::SatError> {
/// let cnf = generate(RandomSatConfig::from_ratio(50, 4.3, 3, 1))?;
/// assert_eq!(cnf.num_vars(), 50);
/// assert_eq!(cnf.num_clauses(), 215);
/// # Ok(())
/// # }
/// ```
pub fn generate(config: RandomSatConfig) -> Result<Cnf, SatError> {
    let RandomSatConfig {
        vars,
        clauses,
        clause_len,
        seed,
    } = config;
    if clause_len == 0 {
        return Err(SatError::BadConfig("clause_len must be >= 1".into()));
    }
    if clause_len > vars {
        return Err(SatError::BadConfig(format!(
            "clause_len ({clause_len}) exceeds vars ({vars})"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cnf = Cnf::new();
    cnf.grow_to(vars);
    let mut chosen: Vec<usize> = Vec::with_capacity(clause_len);
    for _ in 0..clauses {
        chosen.clear();
        while chosen.len() < clause_len {
            let v = rng.gen_range(0..vars);
            if !chosen.contains(&v) {
                chosen.push(v);
            }
        }
        let lits: Vec<Lit> = chosen
            .iter()
            .map(|&v| Lit::with_polarity(Var::new(v), rng.gen_bool(0.5)))
            .collect();
        cnf.add_clause(lits);
    }
    Ok(cnf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_config() {
        let cnf = generate(RandomSatConfig {
            vars: 30,
            clauses: 120,
            clause_len: 3,
            seed: 9,
        })
        .unwrap();
        assert_eq!(cnf.num_vars(), 30);
        assert_eq!(cnf.num_clauses(), 120);
        for clause in cnf.clauses() {
            assert_eq!(clause.len(), 3);
            // Distinct variables within a clause.
            let mut vars: Vec<_> = clause.iter().map(|l| l.var()).collect();
            vars.sort();
            vars.dedup();
            assert_eq!(vars.len(), 3);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = RandomSatConfig::default();
        assert_eq!(generate(cfg).unwrap(), generate(cfg).unwrap());
        let other = generate(RandomSatConfig { seed: 1, ..cfg }).unwrap();
        assert_ne!(generate(cfg).unwrap(), other);
    }

    #[test]
    fn from_ratio_rounds() {
        let cfg = RandomSatConfig::from_ratio(100, 4.3, 3, 0);
        assert_eq!(cfg.clauses, 430);
    }

    #[test]
    fn impossible_configs_error() {
        assert!(generate(RandomSatConfig {
            vars: 2,
            clauses: 1,
            clause_len: 3,
            seed: 0
        })
        .is_err());
        assert!(generate(RandomSatConfig {
            vars: 2,
            clauses: 1,
            clause_len: 0,
            seed: 0
        })
        .is_err());
    }
}
