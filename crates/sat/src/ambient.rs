//! One typed surface for the ambient `FULLLOCK_*` environment knobs.
//!
//! A handful of environment variables steer how this workspace solves:
//! worker threads, answer certification, CDCL inprocessing, fault
//! injection, the wall-clock budget, and the oracle-resilience knobs
//! (vote count, retry budget, rate limit). Historically each layer re-read its own
//! variable at its own call site with its own parsing rules; a serving
//! daemon multiplexing many jobs cannot afford that — it must capture the
//! environment *once* at startup into an explicit config struct and hand
//! workers that struct (or forward it to child processes via
//! [`AmbientConfig::to_env`]), so every job of a server run sees one
//! coherent configuration no matter what the environment mutates to
//! later.
//!
//! [`AmbientConfig::parse`] is strict where it matters: garbage values
//! are typed [`AmbientError`]s (a typo must not silently run a campaign
//! with defaults), unknown `FULLLOCK_*` variables produce did-you-mean
//! warnings, and a `FULLLOCK_FAILPOINTS` spec is validated against the
//! real [`FaultPlan`] grammar at capture time
//! instead of failing deep inside a worker.

use std::fmt;
use std::time::Duration;

use crate::backend::BackendSpec;
use crate::cdcl::INPROCESS_ENV;
use crate::certify::{CertifyLevel, CERTIFY_ENV};
use crate::faults::FaultPlan;

/// `FULLLOCK_FAILPOINTS`: the fault-injection plan
/// ([`crate::faults::ENV_VAR`], re-exported here so every ambient knob has
/// one naming convention).
pub use crate::faults::ENV_VAR as FAILPOINTS_ENV;

/// `FULLLOCK_THREADS`: SAT worker threads per attack.
pub const THREADS_ENV: &str = "FULLLOCK_THREADS";
/// `FULLLOCK_TIMEOUT_SECS`: per-attack wall-clock budget in seconds.
pub const TIMEOUT_ENV: &str = "FULLLOCK_TIMEOUT_SECS";
/// `FULLLOCK_ORACLE_VOTES`: majority-vote repetitions per oracle query.
pub const ORACLE_VOTES_ENV: &str = "FULLLOCK_ORACLE_VOTES";
/// `FULLLOCK_ORACLE_RETRIES`: retry budget per oracle query.
pub const ORACLE_RETRIES_ENV: &str = "FULLLOCK_ORACLE_RETRIES";
/// `FULLLOCK_ORACLE_QPS`: oracle rate limit in queries per second.
pub const ORACLE_QPS_ENV: &str = "FULLLOCK_ORACLE_QPS";

/// Every `FULLLOCK_*` variable with a meaning somewhere in the workspace
/// — the spell-check reference for unknown-variable warnings. The tail
/// entries belong to the experiment harness and the campaign wrapper
/// script; they pass through this layer untouched.
pub const KNOWN_FULLLOCK_VARS: [&str; 12] = [
    TIMEOUT_ENV,
    THREADS_ENV,
    CERTIFY_ENV,
    INPROCESS_ENV,
    FAILPOINTS_ENV,
    ORACLE_VOTES_ENV,
    ORACLE_RETRIES_ENV,
    ORACLE_QPS_ENV,
    "FULLLOCK_FULL",
    "FULLLOCK_JOBS",
    "FULLLOCK_RESUME",
    "FULLLOCK_CAMPAIGN_DIR",
];

/// A malformed `FULLLOCK_*` environment variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AmbientError {
    /// The offending variable name.
    pub var: String,
    /// Its raw value.
    pub value: String,
    /// Why it was rejected.
    pub reason: String,
}

impl fmt::Display for AmbientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={:?}: {}", self.var, self.value, self.reason)
    }
}

impl std::error::Error for AmbientError {}

/// A captured, validated snapshot of the ambient `FULLLOCK_*` knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct AmbientConfig {
    /// [`THREADS_ENV`]: SAT worker threads per attack (default 1, must be
    /// ≥ 1; 1 selects the sequential solver, more a racing portfolio).
    pub threads: usize,
    /// [`CERTIFY_ENV`]: how much verification solver answers receive.
    pub certify: CertifyLevel,
    /// [`INPROCESS_ENV`]: whether CDCL inprocessing runs (default on).
    pub inprocess: bool,
    /// [`FAILPOINTS_ENV`]: the raw fault-injection spec, kept verbatim
    /// (grammar-validated) so it can be forwarded to children; `None`
    /// when unset or empty.
    pub failpoints: Option<String>,
    /// [`TIMEOUT_ENV`]: wall-clock budget; `None` when unset (callers
    /// apply their own default).
    pub timeout: Option<Duration>,
    /// [`ORACLE_VOTES_ENV`]: majority-vote repetitions per oracle query
    /// (must be ≥ 1 and odd); `None` when unset.
    pub oracle_votes: Option<u32>,
    /// [`ORACLE_RETRIES_ENV`]: transient-error retry budget per oracle
    /// query; `None` when unset.
    pub oracle_retries: Option<u32>,
    /// [`ORACLE_QPS_ENV`]: oracle rate limit in queries per second (must
    /// be positive and finite); `None` when unset (unlimited).
    pub oracle_qps: Option<f64>,
}

impl Default for AmbientConfig {
    fn default() -> AmbientConfig {
        AmbientConfig {
            threads: 1,
            certify: CertifyLevel::Off,
            inprocess: true,
            failpoints: None,
            timeout: None,
            oracle_votes: None,
            oracle_retries: None,
            oracle_qps: None,
        }
    }
}

impl AmbientConfig {
    /// Parses the knobs from an explicit variable set (pure — tests feed
    /// synthetic environments). Returns the config plus did-you-mean
    /// warnings for unknown `FULLLOCK_*` variables.
    ///
    /// # Errors
    ///
    /// Returns an [`AmbientError`] describing the first malformed value.
    pub fn parse<I>(vars: I) -> Result<(AmbientConfig, Vec<String>), AmbientError>
    where
        I: IntoIterator<Item = (String, String)>,
    {
        let mut config = AmbientConfig::default();
        let mut warnings = Vec::new();
        for (name, value) in vars {
            let err = |reason: String| AmbientError {
                var: name.clone(),
                value: value.clone(),
                reason,
            };
            match name.as_str() {
                TIMEOUT_ENV => {
                    let secs: f64 = value
                        .trim()
                        .parse()
                        .map_err(|_| err("expected a number of seconds".to_string()))?;
                    if !secs.is_finite() || secs <= 0.0 {
                        return Err(err(format!(
                            "timeout must be a positive finite number, got {secs}"
                        )));
                    }
                    config.timeout = Some(Duration::from_secs_f64(secs));
                }
                THREADS_ENV => {
                    let threads: usize = value
                        .trim()
                        .parse()
                        .map_err(|_| err("expected a thread count".to_string()))?;
                    if threads == 0 {
                        return Err(err("thread count must be at least 1".to_string()));
                    }
                    config.threads = threads;
                }
                CERTIFY_ENV => {
                    config.certify = value.parse::<CertifyLevel>().map_err(err)?;
                }
                INPROCESS_ENV => {
                    config.inprocess = match value.trim().to_ascii_lowercase().as_str() {
                        "off" | "0" | "false" | "no" => false,
                        "" | "on" | "1" | "true" | "yes" => true,
                        other => {
                            return Err(err(format!(
                                "expected on/off/1/0/true/false, got {other:?}"
                            )))
                        }
                    };
                }
                ORACLE_VOTES_ENV => {
                    let votes: u32 = value
                        .trim()
                        .parse()
                        .map_err(|_| err("expected a vote count".to_string()))?;
                    if votes == 0 || votes.is_multiple_of(2) {
                        return Err(err(format!(
                            "vote count must be odd and at least 1, got {votes}"
                        )));
                    }
                    config.oracle_votes = Some(votes);
                }
                ORACLE_RETRIES_ENV => {
                    config.oracle_retries = Some(
                        value
                            .trim()
                            .parse()
                            .map_err(|_| err("expected a retry count".to_string()))?,
                    );
                }
                ORACLE_QPS_ENV => {
                    let qps: f64 = value
                        .trim()
                        .parse()
                        .map_err(|_| err("expected queries per second".to_string()))?;
                    if !qps.is_finite() || qps <= 0.0 {
                        return Err(err(format!(
                            "rate limit must be a positive finite number, got {qps}"
                        )));
                    }
                    config.oracle_qps = Some(qps);
                }
                FAILPOINTS_ENV => {
                    let spec = value.trim();
                    if spec.is_empty() {
                        config.failpoints = None;
                    } else {
                        spec.parse::<FaultPlan>()
                            .map_err(|e| err(format!("invalid failpoint spec: {e}")))?;
                        config.failpoints = Some(spec.to_string());
                    }
                }
                other
                    if other.starts_with("FULLLOCK_") && !KNOWN_FULLLOCK_VARS.contains(&other) =>
                {
                    let hint = KNOWN_FULLLOCK_VARS
                        .iter()
                        .map(|known| (edit_distance(other, known), *known))
                        .min()
                        .filter(|(d, _)| *d <= 3)
                        .map(|(_, known)| format!(" (did you mean {known}?)"))
                        .unwrap_or_default();
                    warnings.push(format!("unknown variable {other} ignored{hint}"));
                }
                _ => {}
            }
        }
        Ok((config, warnings))
    }

    /// [`parse`](Self::parse) over the process environment.
    ///
    /// # Errors
    ///
    /// Returns an [`AmbientError`] describing the first malformed value.
    pub fn from_env() -> Result<(AmbientConfig, Vec<String>), AmbientError> {
        AmbientConfig::parse(std::env::vars())
    }

    /// The solving backend the thread knob selects.
    pub fn backend(&self) -> BackendSpec {
        if self.threads <= 1 {
            BackendSpec::Single
        } else {
            BackendSpec::portfolio(self.threads)
        }
    }

    /// Renders the snapshot back into explicit `(variable, value)` pairs
    /// for a child process's environment, so serve-mode workers inherit
    /// the *captured* configuration rather than whatever the server's
    /// environment happens to contain at spawn time. Knobs at their
    /// defaults are emitted too — an explicit default beats an ambient
    /// surprise.
    pub fn to_env(&self) -> Vec<(String, String)> {
        let mut pairs = vec![
            (THREADS_ENV.to_string(), self.threads.to_string()),
            (CERTIFY_ENV.to_string(), self.certify.as_str().to_string()),
            (
                INPROCESS_ENV.to_string(),
                if self.inprocess { "on" } else { "off" }.to_string(),
            ),
        ];
        if let Some(spec) = &self.failpoints {
            pairs.push((FAILPOINTS_ENV.to_string(), spec.clone()));
        }
        if let Some(timeout) = self.timeout {
            pairs.push((TIMEOUT_ENV.to_string(), timeout.as_secs_f64().to_string()));
        }
        if let Some(votes) = self.oracle_votes {
            pairs.push((ORACLE_VOTES_ENV.to_string(), votes.to_string()));
        }
        if let Some(retries) = self.oracle_retries {
            pairs.push((ORACLE_RETRIES_ENV.to_string(), retries.to_string()));
        }
        if let Some(qps) = self.oracle_qps {
            pairs.push((ORACLE_QPS_ENV.to_string(), qps.to_string()));
        }
        pairs
    }
}

/// Levenshtein distance (iterative two-row), for typo suggestions.
pub(crate) fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(vars: &[(&str, &str)]) -> Result<(AmbientConfig, Vec<String>), AmbientError> {
        AmbientConfig::parse(
            vars.iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn defaults_without_any_variables() {
        let (config, warnings) = parse(&[("PATH", "/bin"), ("HOME", "/root")]).expect("parses");
        assert_eq!(config, AmbientConfig::default());
        assert!(warnings.is_empty());
    }

    #[test]
    fn all_knobs_parse() {
        let (config, warnings) = parse(&[
            (TIMEOUT_ENV, "2.5"),
            (THREADS_ENV, "4"),
            (CERTIFY_ENV, "proof"),
            (INPROCESS_ENV, "off"),
            (FAILPOINTS_ENV, "portfolio.worker.panic#1=panicx1"),
            (ORACLE_VOTES_ENV, "3"),
            (ORACLE_RETRIES_ENV, "5"),
            (ORACLE_QPS_ENV, "250"),
        ])
        .expect("parses");
        assert_eq!(config.timeout, Some(Duration::from_secs_f64(2.5)));
        assert_eq!(config.threads, 4);
        assert_eq!(config.certify, CertifyLevel::Proof);
        assert!(!config.inprocess);
        assert_eq!(config.oracle_votes, Some(3));
        assert_eq!(config.oracle_retries, Some(5));
        assert_eq!(config.oracle_qps, Some(250.0));
        assert_eq!(
            config.failpoints.as_deref(),
            Some("portfolio.worker.panic#1=panicx1")
        );
        assert!(warnings.is_empty());
        assert!(matches!(config.backend(), BackendSpec::Portfolio(_)));
    }

    #[test]
    fn garbage_is_a_typed_error() {
        for (var, value) in [
            (TIMEOUT_ENV, "soon"),
            (TIMEOUT_ENV, "-3"),
            (TIMEOUT_ENV, "inf"),
            (THREADS_ENV, "0"),
            (THREADS_ENV, "many"),
            (CERTIFY_ENV, "paranoid"),
            (INPROCESS_ENV, "maybe"),
            (FAILPOINTS_ENV, "not a spec"),
            (ORACLE_VOTES_ENV, "0"),
            (ORACLE_VOTES_ENV, "2"),
            (ORACLE_VOTES_ENV, "lots"),
            (ORACLE_RETRIES_ENV, "-1"),
            (ORACLE_QPS_ENV, "0"),
            (ORACLE_QPS_ENV, "inf"),
        ] {
            let err = parse(&[(var, value)]).expect_err(&format!("{var}={value}"));
            assert_eq!(err.var, var);
        }
    }

    #[test]
    fn unknown_variables_warn_with_hint() {
        let (_, warnings) = parse(&[("FULLLOCK_TIMEOUT_SEC", "3600")]).expect("parses");
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("did you mean FULLLOCK_TIMEOUT_SECS"));
    }

    #[test]
    fn to_env_round_trips() {
        let config = AmbientConfig {
            threads: 3,
            certify: CertifyLevel::Model,
            inprocess: false,
            failpoints: Some("portfolio.budget.exhausted=trigger@5".to_string()),
            timeout: Some(Duration::from_secs(7)),
            oracle_votes: Some(5),
            oracle_retries: Some(2),
            oracle_qps: Some(12.5),
        };
        let (back, warnings) = AmbientConfig::parse(config.to_env()).expect("own output parses");
        assert_eq!(back, config);
        assert!(warnings.is_empty());
    }

    #[test]
    fn empty_failpoints_clears() {
        let (config, _) = parse(&[(FAILPOINTS_ENV, "  ")]).expect("parses");
        assert_eq!(config.failpoints, None);
    }
}
