use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered densely from 0.
///
/// # Example
///
/// ```
/// use fulllock_sat::{Lit, Var};
///
/// let v = Var::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(Lit::positive(v).var(), v);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(u32);

impl Var {
    /// Creates a variable with the given dense index.
    pub fn new(index: usize) -> Var {
        Var(u32::try_from(index).expect("more than u32::MAX variables"))
    }

    /// The dense index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation, packed as `2·var + sign`.
///
/// # Example
///
/// ```
/// use fulllock_sat::{Lit, Var};
///
/// let v = Var::new(0);
/// let p = Lit::positive(v);
/// assert_eq!(!p, Lit::negative(v));
/// assert!(p.is_positive());
/// assert_eq!((!p).var(), v);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn positive(var: Var) -> Lit {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    pub fn negative(var: Var) -> Lit {
        Lit(var.0 << 1 | 1)
    }

    /// Builds a literal from a variable and a polarity.
    pub fn with_polarity(var: Var, positive: bool) -> Lit {
        if positive {
            Lit::positive(var)
        } else {
            Lit::negative(var)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this is the positive (unnegated) literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense code `2·var + sign`, usable as an array index (e.g. for watch
    /// lists).
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`Lit::code`].
    pub fn from_code(code: usize) -> Lit {
        Lit(u32::try_from(code).expect("literal code out of range"))
    }

    /// The value this literal takes under an assignment of its variable.
    pub fn apply(self, var_value: bool) -> bool {
        var_value == self.is_positive()
    }

    /// DIMACS encoding: 1-based, negative for negated literals.
    pub fn to_dimacs(self) -> i64 {
        let v = i64::from(self.0 >> 1) + 1;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }

    /// Parses a DIMACS literal (non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `value` is 0 (the DIMACS clause terminator is not a
    /// literal).
    pub fn from_dimacs(value: i64) -> Lit {
        assert!(
            value != 0,
            "0 is the DIMACS clause terminator, not a literal"
        );
        let var = Var::new(value.unsigned_abs() as usize - 1);
        Lit::with_polarity(var, value > 0)
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "x{}", self.0 >> 1)
        } else {
            write!(f, "¬x{}", self.0 >> 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_round_trips() {
        for i in 0..10 {
            let v = Var::new(i);
            let p = Lit::positive(v);
            let n = Lit::negative(v);
            assert_eq!(p.var(), v);
            assert_eq!(n.var(), v);
            assert!(p.is_positive());
            assert!(!n.is_positive());
            assert_eq!(!p, n);
            assert_eq!(!n, p);
            assert_eq!(Lit::from_code(p.code()), p);
        }
    }

    #[test]
    fn apply_respects_polarity() {
        let v = Var::new(0);
        assert!(Lit::positive(v).apply(true));
        assert!(!Lit::positive(v).apply(false));
        assert!(!Lit::negative(v).apply(true));
        assert!(Lit::negative(v).apply(false));
    }

    #[test]
    fn dimacs_round_trips() {
        for value in [-5i64, -1, 1, 7] {
            assert_eq!(Lit::from_dimacs(value).to_dimacs(), value);
        }
    }

    #[test]
    #[should_panic(expected = "terminator")]
    fn dimacs_zero_panics() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn with_polarity() {
        let v = Var::new(2);
        assert_eq!(Lit::with_polarity(v, true), Lit::positive(v));
        assert_eq!(Lit::with_polarity(v, false), Lit::negative(v));
    }
}
