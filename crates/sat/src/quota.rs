//! Multi-tenant resource quotas built on the same lock-free atomics as
//! the portfolio [`Budget`](crate::portfolio::Budget).
//!
//! A [`Budget`](crate::portfolio::Budget) bounds one *race*: a deadline, a
//! summed conflict cap, and a cancel flag shared by the workers of a
//! single solve. A serving deployment needs the layer above that — one
//! ledger per *tenant*, accumulated across every job the tenant ever
//! submitted, consulted at admission time so a tenant who has spent their
//! allowance is refused new work instead of starving everyone else.
//!
//! [`TenantQuota`] is that ledger: an immutable [`QuotaSpec`] (the caps)
//! plus three atomic counters (jobs in flight, cumulative solver
//! conflicts, cumulative wall-clock nanoseconds). All operations are
//! lock-free and callable from any worker thread:
//!
//! * [`TenantQuota::admit`] — called before a job starts; refuses with a
//!   typed [`QuotaError`] when the concurrency cap is reached or a
//!   cumulative allowance is already spent, otherwise takes an in-flight
//!   slot;
//! * [`TenantQuota::release`] — returns the slot when the job leaves the
//!   running state;
//! * [`TenantQuota::charge`] — adds a finished job's conflicts and wall
//!   time to the ledger.
//!
//! The counters only grow (releases decrement the in-flight gauge, never
//! the cumulative spend), so an exhausted tenant stays exhausted until
//! the process restarts with a fresh ledger — the serving layer persists
//! spend across restarts if it wants stronger guarantees.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The caps of one tenant's quota. `None` means unlimited on that axis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuotaSpec {
    /// Maximum jobs simultaneously running.
    pub max_in_flight: Option<u64>,
    /// Cumulative solver-conflict allowance across all finished jobs.
    pub max_conflicts: Option<u64>,
    /// Cumulative wall-clock allowance across all finished jobs.
    pub max_wall: Option<Duration>,
}

impl QuotaSpec {
    /// No caps on any axis.
    pub fn unlimited() -> QuotaSpec {
        QuotaSpec::default()
    }
}

/// Why an admission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaError {
    /// The tenant already runs `limit` jobs; retry after one finishes.
    ConcurrencyFull {
        /// The concurrency cap.
        limit: u64,
    },
    /// The cumulative conflict allowance is spent; permanent until the
    /// ledger resets.
    ConflictsExhausted {
        /// Conflicts charged so far.
        spent: u64,
        /// The allowance.
        limit: u64,
    },
    /// The cumulative wall-clock allowance is spent; permanent until the
    /// ledger resets.
    WallTimeExhausted {
        /// Wall time charged so far.
        spent: Duration,
        /// The allowance.
        limit: Duration,
    },
}

impl QuotaError {
    /// Whether waiting can clear the refusal (`true` only for the
    /// concurrency gate — cumulative exhaustion is permanent for this
    /// ledger's lifetime).
    pub fn is_transient(&self) -> bool {
        matches!(self, QuotaError::ConcurrencyFull { .. })
    }

    /// Stable machine-readable code (`concurrency_full`,
    /// `conflicts_exhausted`, `wall_time_exhausted`) for wire protocols.
    pub fn code(&self) -> &'static str {
        match self {
            QuotaError::ConcurrencyFull { .. } => "concurrency_full",
            QuotaError::ConflictsExhausted { .. } => "conflicts_exhausted",
            QuotaError::WallTimeExhausted { .. } => "wall_time_exhausted",
        }
    }
}

impl fmt::Display for QuotaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuotaError::ConcurrencyFull { limit } => {
                write!(f, "tenant concurrency quota full ({limit} in flight)")
            }
            QuotaError::ConflictsExhausted { spent, limit } => write!(
                f,
                "tenant conflict allowance exhausted ({spent} of {limit} spent)"
            ),
            QuotaError::WallTimeExhausted { spent, limit } => write!(
                f,
                "tenant wall-time allowance exhausted ({:.1}s of {:.1}s spent)",
                spent.as_secs_f64(),
                limit.as_secs_f64()
            ),
        }
    }
}

impl std::error::Error for QuotaError {}

/// Point-in-time snapshot of a tenant's ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuotaUsage {
    /// Jobs currently holding an in-flight slot.
    pub in_flight: u64,
    /// Cumulative solver conflicts charged.
    pub conflicts: u64,
    /// Cumulative wall time charged.
    pub wall: Duration,
}

/// One tenant's quota ledger: caps plus lock-free usage counters. See the
/// module docs for the lifecycle (`admit` → run → `release` + `charge`).
#[derive(Debug)]
pub struct TenantQuota {
    spec: QuotaSpec,
    in_flight: AtomicU64,
    conflicts: AtomicU64,
    wall_ns: AtomicU64,
}

impl TenantQuota {
    /// A fresh ledger under the given caps.
    pub fn new(spec: QuotaSpec) -> TenantQuota {
        TenantQuota {
            spec,
            in_flight: AtomicU64::new(0),
            conflicts: AtomicU64::new(0),
            wall_ns: AtomicU64::new(0),
        }
    }

    /// The caps this ledger enforces.
    pub fn spec(&self) -> &QuotaSpec {
        &self.spec
    }

    /// Pre-loads cumulative spend recovered from persistent storage (a
    /// restarted server replaying its queue), so a restart cannot launder
    /// an exhausted allowance.
    pub fn preload(&self, conflicts: u64, wall: Duration) {
        self.conflicts.fetch_add(conflicts, Ordering::Relaxed);
        self.wall_ns
            .fetch_add(saturating_nanos(wall), Ordering::Relaxed);
    }

    /// The cumulative-exhaustion check alone (no slot taken): the error a
    /// *submission* should be refused with, independent of how many jobs
    /// happen to be running right now.
    ///
    /// # Errors
    ///
    /// [`QuotaError::ConflictsExhausted`] / [`QuotaError::WallTimeExhausted`]
    /// when the corresponding allowance is spent.
    pub fn check_cumulative(&self) -> Result<(), QuotaError> {
        if let Some(limit) = self.spec.max_conflicts {
            let spent = self.conflicts.load(Ordering::Relaxed);
            if spent >= limit {
                return Err(QuotaError::ConflictsExhausted { spent, limit });
            }
        }
        if let Some(limit) = self.spec.max_wall {
            let spent_ns = self.wall_ns.load(Ordering::Relaxed);
            if spent_ns >= saturating_nanos(limit) {
                return Err(QuotaError::WallTimeExhausted {
                    spent: Duration::from_nanos(spent_ns),
                    limit,
                });
            }
        }
        Ok(())
    }

    /// Takes an in-flight slot for one job, or refuses.
    ///
    /// # Errors
    ///
    /// Everything [`check_cumulative`](Self::check_cumulative) refuses,
    /// plus [`QuotaError::ConcurrencyFull`] when `max_in_flight` jobs are
    /// already running (a transient refusal — retry after a release).
    pub fn admit(&self) -> Result<(), QuotaError> {
        self.check_cumulative()?;
        if let Some(limit) = self.spec.max_in_flight {
            // Optimistic increment with rollback keeps the gate lock-free;
            // a racing over-admission is corrected before either job runs.
            let prior = self.in_flight.fetch_add(1, Ordering::Relaxed);
            if prior >= limit {
                self.in_flight.fetch_sub(1, Ordering::Relaxed);
                return Err(QuotaError::ConcurrencyFull { limit });
            }
        } else {
            self.in_flight.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Returns an admitted job's in-flight slot (call exactly once per
    /// successful [`admit`](Self::admit), whatever the job's outcome).
    pub fn release(&self) {
        // Saturating decrement: a spurious extra release must not wrap the
        // gauge to u64::MAX and wedge the tenant forever.
        let _ = self
            .in_flight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                Some(n.saturating_sub(1))
            });
    }

    /// Adds a finished job's spend to the cumulative ledger.
    pub fn charge(&self, conflicts: u64, wall: Duration) {
        self.conflicts.fetch_add(conflicts, Ordering::Relaxed);
        self.wall_ns
            .fetch_add(saturating_nanos(wall), Ordering::Relaxed);
    }

    /// Snapshot of the current usage.
    pub fn usage(&self) -> QuotaUsage {
        QuotaUsage {
            in_flight: self.in_flight.load(Ordering::Relaxed),
            conflicts: self.conflicts.load(Ordering::Relaxed),
            wall: Duration::from_nanos(self.wall_ns.load(Ordering::Relaxed)),
        }
    }
}

/// `Duration` → nanoseconds clamped into `u64` (584 years — effectively
/// "unlimited", but without a multiplication panic on absurd input).
fn saturating_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_spec_admits_forever() {
        let quota = TenantQuota::new(QuotaSpec::unlimited());
        for _ in 0..1000 {
            quota.admit().expect("unlimited");
        }
        quota.charge(u64::MAX / 2, Duration::from_secs(1 << 40));
        assert!(quota.check_cumulative().is_ok());
    }

    #[test]
    fn concurrency_gate_is_transient() {
        let quota = TenantQuota::new(QuotaSpec {
            max_in_flight: Some(2),
            ..QuotaSpec::default()
        });
        quota.admit().expect("slot 1");
        quota.admit().expect("slot 2");
        let err = quota.admit().expect_err("gate closed");
        assert_eq!(err, QuotaError::ConcurrencyFull { limit: 2 });
        assert!(err.is_transient());
        quota.release();
        quota.admit().expect("slot freed");
    }

    #[test]
    fn cumulative_conflicts_exhaust_permanently() {
        let quota = TenantQuota::new(QuotaSpec {
            max_conflicts: Some(100),
            ..QuotaSpec::default()
        });
        quota.admit().expect("fresh ledger");
        quota.charge(60, Duration::ZERO);
        assert!(quota.check_cumulative().is_ok());
        quota.charge(40, Duration::ZERO);
        let err = quota.check_cumulative().expect_err("spent");
        assert!(!err.is_transient());
        assert_eq!(err.code(), "conflicts_exhausted");
        // Releasing in-flight slots never refunds cumulative spend.
        quota.release();
        assert!(quota.admit().is_err());
    }

    #[test]
    fn wall_time_exhausts() {
        let quota = TenantQuota::new(QuotaSpec {
            max_wall: Some(Duration::from_secs(10)),
            ..QuotaSpec::default()
        });
        quota.charge(0, Duration::from_secs(11));
        assert_eq!(
            quota.check_cumulative().expect_err("spent").code(),
            "wall_time_exhausted"
        );
    }

    #[test]
    fn preload_counts_like_spend() {
        let quota = TenantQuota::new(QuotaSpec {
            max_conflicts: Some(50),
            ..QuotaSpec::default()
        });
        quota.preload(50, Duration::ZERO);
        assert!(quota.admit().is_err(), "restart must not launder spend");
    }

    #[test]
    fn release_saturates_at_zero() {
        let quota = TenantQuota::new(QuotaSpec {
            max_in_flight: Some(1),
            ..QuotaSpec::default()
        });
        quota.release();
        quota.release();
        assert_eq!(quota.usage().in_flight, 0);
        quota.admit().expect("gauge did not wrap");
    }

    #[test]
    fn usage_snapshots_track_charges() {
        let quota = TenantQuota::new(QuotaSpec::unlimited());
        quota.admit().expect("admit");
        quota.charge(7, Duration::from_millis(1500));
        let usage = quota.usage();
        assert_eq!(usage.in_flight, 1);
        assert_eq!(usage.conflicts, 7);
        assert_eq!(usage.wall, Duration::from_millis(1500));
    }
}
