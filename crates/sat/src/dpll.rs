//! Instrumented recursive DPLL (Algorithm 1 of the paper).
//!
//! This is deliberately the *textbook* Davis–Putnam–Logemann–Loveland
//! procedure — unit propagation, pure-literal elimination, then branching —
//! with counters on every recursive call, because the paper's hardness
//! argument (Fig 1) is phrased in terms of the number and depth of DPLL
//! recursive calls. Use [`crate::cdcl::Solver`] when you just want answers
//! fast.

use crate::{Cnf, Lit};

/// Effort counters for one [`solve`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DpllStats {
    /// Total invocations of the DPLL function (the paper's `M`).
    pub recursive_calls: u64,
    /// Branches that failed and were undone.
    pub backtracks: u64,
    /// Unit-propagation steps taken (line 7 of Algorithm 1).
    pub unit_propagations: u64,
    /// Pure-literal eliminations taken (line 11 of Algorithm 1).
    pub pure_literals: u64,
    /// Deepest recursion reached.
    pub max_depth: u32,
}

/// Result of a [`solve`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DpllResult {
    /// Satisfiable, with a witness assignment (one value per variable).
    Sat(Vec<bool>),
    /// Proven unsatisfiable.
    Unsat,
    /// The call budget was exhausted before an answer was found.
    Unknown,
}

impl DpllResult {
    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, DpllResult::Sat(_))
    }
}

/// Outcome of [`solve`]: the verdict plus effort statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DpllOutcome {
    /// Verdict (and model, when satisfiable).
    pub result: DpllResult,
    /// Effort counters.
    pub stats: DpllStats,
}

/// Runs DPLL on a formula with a recursive-call budget (`None` for
/// unlimited).
///
/// # Example
///
/// ```
/// use fulllock_sat::{dpll, Cnf, Lit};
///
/// let mut cnf = Cnf::new();
/// let a = cnf.new_var();
/// cnf.add_clause([Lit::positive(a)]);
/// let outcome = dpll::solve(&cnf, None);
/// assert!(outcome.result.is_sat());
/// assert!(outcome.stats.recursive_calls >= 1);
/// ```
pub fn solve(cnf: &Cnf, max_calls: Option<u64>) -> DpllOutcome {
    let mut engine = Engine {
        cnf,
        assign: vec![None; cnf.num_vars()],
        stats: DpllStats::default(),
        budget: max_calls,
        exhausted: false,
        model: None,
    };
    let sat = engine.dpll(0);
    let result = if engine.exhausted {
        DpllResult::Unknown
    } else if sat {
        DpllResult::Sat(engine.model.expect("SAT verdict always records a model"))
    } else {
        DpllResult::Unsat
    };
    DpllOutcome {
        result,
        stats: engine.stats,
    }
}

struct Engine<'a> {
    cnf: &'a Cnf,
    assign: Vec<Option<bool>>,
    stats: DpllStats,
    budget: Option<u64>,
    exhausted: bool,
    model: Option<Vec<bool>>,
}

enum ClauseState {
    Satisfied,
    Empty,
    Unit(Lit),
    Open,
}

impl Engine<'_> {
    fn dpll(&mut self, depth: u32) -> bool {
        self.stats.recursive_calls += 1;
        self.stats.max_depth = self.stats.max_depth.max(depth);
        if let Some(limit) = self.budget {
            if self.stats.recursive_calls > limit {
                self.exhausted = true;
                return false;
            }
        }

        // Lines 2-6: scan for empty clauses / full satisfaction, and pick up
        // a unit clause on the way.
        let mut all_satisfied = true;
        let mut unit: Option<Lit> = None;
        for clause in self.cnf.clauses() {
            match self.classify(clause) {
                ClauseState::Empty => return false,
                ClauseState::Satisfied => {}
                ClauseState::Unit(l) => {
                    all_satisfied = false;
                    if unit.is_none() {
                        unit = Some(l);
                    }
                }
                ClauseState::Open => all_satisfied = false,
            }
        }
        if all_satisfied {
            self.record_model();
            return true;
        }

        // Lines 7-10: unit propagation.
        if let Some(l) = unit {
            self.stats.unit_propagations += 1;
            return self.assume(l, depth, false);
        }

        // Lines 11-12: pure-literal elimination.
        if let Some(l) = self.find_pure_literal() {
            self.stats.pure_literals += 1;
            return self.assume(l, depth, false);
        }

        // Lines 13-16: branch on the first unassigned variable.
        let var = (0..self.cnf.num_vars())
            .find(|&v| self.assign[v].is_none())
            .expect("open clause implies an unassigned variable");
        let lit = Lit::positive(crate::Var::new(var));
        if self.assume(lit, depth, true) {
            return true;
        }
        if self.exhausted {
            return false;
        }
        self.assume(!lit, depth, false)
    }

    /// Assigns `lit`, recurses one level deeper, and undoes the assignment.
    /// `counts_backtrack` marks first branches whose failure is a backtrack.
    fn assume(&mut self, lit: Lit, depth: u32, counts_backtrack: bool) -> bool {
        self.assign[lit.var().index()] = Some(lit.is_positive());
        let sat = self.dpll(depth + 1);
        self.assign[lit.var().index()] = None;
        if !sat && counts_backtrack {
            self.stats.backtracks += 1;
        }
        sat
    }

    fn classify(&self, clause: &[Lit]) -> ClauseState {
        let mut unassigned: Option<Lit> = None;
        let mut unassigned_count = 0usize;
        for &l in clause {
            match self.assign[l.var().index()] {
                Some(value) => {
                    if l.apply(value) {
                        return ClauseState::Satisfied;
                    }
                }
                None => {
                    unassigned_count += 1;
                    unassigned = Some(l);
                }
            }
        }
        match unassigned_count {
            0 => ClauseState::Empty,
            1 => ClauseState::Unit(unassigned.expect("counted one unassigned literal")),
            _ => ClauseState::Open,
        }
    }

    fn find_pure_literal(&self) -> Option<Lit> {
        // Polarity census over unsatisfied clauses only.
        let n = self.cnf.num_vars();
        let mut pos = vec![false; n];
        let mut neg = vec![false; n];
        for clause in self.cnf.clauses() {
            if matches!(self.classify(clause), ClauseState::Satisfied) {
                continue;
            }
            for &l in clause {
                if self.assign[l.var().index()].is_none() {
                    if l.is_positive() {
                        pos[l.var().index()] = true;
                    } else {
                        neg[l.var().index()] = true;
                    }
                }
            }
        }
        for v in 0..n {
            if pos[v] != neg[v] {
                return Some(Lit::with_polarity(crate::Var::new(v), pos[v]));
            }
        }
        None
    }

    fn record_model(&mut self) {
        // Unassigned variables (never constrained) default to false.
        self.model = Some(self.assign.iter().map(|a| a.unwrap_or(false)).collect());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_sat::{self, RandomSatConfig};

    fn lit(i: i64) -> Lit {
        Lit::from_dimacs(i)
    }

    #[test]
    fn trivial_sat() {
        let mut cnf = Cnf::new();
        cnf.add_clause([lit(1)]);
        let out = solve(&cnf, None);
        match out.result {
            DpllResult::Sat(model) => assert!(model[0]),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn trivial_unsat() {
        let mut cnf = Cnf::new();
        cnf.add_clause([lit(1)]);
        cnf.add_clause([lit(-1)]);
        assert_eq!(solve(&cnf, None).result, DpllResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let cnf = Cnf::new();
        assert!(solve(&cnf, None).result.is_sat());
    }

    #[test]
    fn model_satisfies_formula() {
        let cnf = random_sat::generate(RandomSatConfig {
            vars: 20,
            clauses: 60, // under-constrained, certainly SAT
            clause_len: 3,
            seed: 4,
        })
        .unwrap();
        match solve(&cnf, None).result {
            DpllResult::Sat(model) => assert!(cnf.is_satisfied_by(&model)),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // Variables p(i,h): pigeon i in hole h; i in 0..3, h in 0..2.
        let mut cnf = Cnf::new();
        let var = |i: usize, h: usize| Lit::positive(crate::Var::new(i * 2 + h));
        cnf.grow_to(6);
        for i in 0..3 {
            cnf.add_clause([var(i, 0), var(i, 1)]);
        }
        for h in 0..2 {
            for i in 0..3 {
                for j in i + 1..3 {
                    cnf.add_clause([!var(i, h), !var(j, h)]);
                }
            }
        }
        let out = solve(&cnf, None);
        assert_eq!(out.result, DpllResult::Unsat);
        assert!(out.stats.recursive_calls > 1);
    }

    #[test]
    fn budget_exhaustion_returns_unknown() {
        let cnf = random_sat::generate(RandomSatConfig {
            vars: 40,
            clauses: 172,
            clause_len: 3,
            seed: 2,
        })
        .unwrap();
        let out = solve(&cnf, Some(3));
        assert_eq!(out.result, DpllResult::Unknown);
    }

    #[test]
    fn unit_propagation_is_counted() {
        let mut cnf = Cnf::new();
        cnf.add_clause([lit(1)]);
        cnf.add_clause([lit(-1), lit(2)]);
        let out = solve(&cnf, None);
        assert!(out.result.is_sat());
        assert!(out.stats.unit_propagations >= 2);
    }

    #[test]
    fn hard_band_needs_more_calls_than_easy_bands() {
        // A coarse, seed-averaged version of Fig 1's easy-hard-easy shape:
        // ratio 4.3 must out-cost ratio 2 and ratio 8 on average.
        let calls_at = |ratio: f64| -> u64 {
            (0..5)
                .map(|seed| {
                    let cnf = random_sat::generate(RandomSatConfig::from_ratio(30, ratio, 3, seed))
                        .unwrap();
                    solve(&cnf, None).stats.recursive_calls
                })
                .sum()
        };
        let easy_low = calls_at(2.0);
        let hard = calls_at(4.3);
        let easy_high = calls_at(8.0);
        assert!(hard > easy_low, "hard {hard} <= easy_low {easy_low}");
        assert!(hard > easy_high, "hard {hard} <= easy_high {easy_high}");
    }
}
