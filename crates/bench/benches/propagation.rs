//! Criterion benchmark of CDCL unit-propagation throughput on a fixed
//! locked-miter workload, with a machine-readable regression snapshot.
//!
//! The workload is the hot loop of every table/figure in the paper: a
//! Full-Lock miter (two key copies of a locked circuit sharing inputs,
//! outputs XOR-ed) solved under a fixed conflict budget. Besides the
//! criterion timing, the bench writes `BENCH_cdcl.json` at the repository
//! root recording propagations/second so future PRs can detect solver
//! regressions (`scripts/` or CI can diff the snapshot).
//!
//! Run with: `cargo bench -p fulllock-bench --bench propagation`

use std::io::Write as _;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fulllock_attacks::encode_locked;
use fulllock_bench::cln_testbed;
use fulllock_locking::ClnTopology;
use fulllock_sat::cdcl::{SolveLimits, SolveResult, Solver};
use fulllock_sat::{Cnf, Lit, Var};

/// Propagations/second measured at the seed commit (separately-allocated
/// `Vec<Lit>` clauses, activity-only reduction) on the reference container:
/// 3.25M props/sec, 1.21 s per 30k-conflict solve on this workload. The
/// acceptance bar for the arena rewrite is >= 1.5x this number.
const BASELINE_PROPS_PER_SEC: f64 = 3_250_000.0;

/// Conflict budget per solve: large enough that propagation dominates,
/// small enough that one measurement stays under a second.
const CONFLICT_BUDGET: u64 = 30_000;

/// Builds the fixed miter workload: a 16-wire identity host locked with an
/// almost non-blocking CLN (the paper's hard topology), two key copies
/// sharing data inputs, outputs forced to differ, plus a batch of asserted
/// oracle I/O pairs. The I/O pairs replicate a mid-attack solver state —
/// the first bare-miter solve is trivially SAT, but once both key copies
/// must agree with the oracle (identity routing) on many patterns, finding
/// a remaining DIP forces a deep search that exhausts the conflict budget.
fn miter_workload() -> Cnf {
    const N: usize = 16;
    const IO_PAIRS: usize = 24;
    let (_host, locked) = cln_testbed(N, ClnTopology::AlmostNonBlocking, 0xBEEF);
    let mut cnf = Cnf::new();
    let x_vars: Vec<Var> = locked.data_inputs.iter().map(|_| cnf.new_var()).collect();
    let k1_vars: Vec<Var> = locked.key_inputs.iter().map(|_| cnf.new_var()).collect();
    let k2_vars: Vec<Var> = locked.key_inputs.iter().map(|_| cnf.new_var()).collect();
    let copy1 = encode_locked(&locked, &mut cnf, &x_vars, &k1_vars);
    let copy2 = encode_locked(&locked, &mut cnf, &x_vars, &k2_vars);
    let mut miter_clause = Vec::new();
    for (&a, &b) in copy1.output_vars.iter().zip(&copy2.output_vars) {
        let d = cnf.new_var();
        fulllock_sat::tseytin::encode_gate(&mut cnf, fulllock_netlist::GateKind::Xor, d, &[a, b]);
        miter_clause.push(Lit::positive(d));
    }
    cnf.add_clause(miter_clause);

    // The host is an n-wire identity circuit, so the oracle's response to
    // any pattern is the pattern itself. Assert IO_PAIRS deterministic
    // (xorshift-generated) pairs for both key copies, as
    // `SatAttack::assert_io` would after IO_PAIRS DIP iterations.
    let mut state = 0x9E37_79B9u64;
    for _ in 0..IO_PAIRS {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let pattern: Vec<bool> = (0..N).map(|bit| state >> bit & 1 == 1).collect();
        for key_vars in [&k1_vars, &k2_vars] {
            let data_vars: Vec<Var> = (0..N).map(|_| cnf.new_var()).collect();
            let enc = encode_locked(&locked, &mut cnf, &data_vars, key_vars);
            for (slot, &v) in data_vars.iter().enumerate() {
                cnf.add_clause([Lit::with_polarity(v, pattern[slot])]);
            }
            for (o, &v) in enc.output_vars.iter().enumerate() {
                cnf.add_clause([Lit::with_polarity(v, pattern[o])]);
            }
        }
    }
    cnf
}

/// One measured solve; returns (propagations, seconds).
fn run_budgeted(cnf: &Cnf) -> (u64, f64) {
    let mut solver = Solver::from_cnf(cnf);
    let start = Instant::now();
    let result = solver.solve_limited(
        &[],
        SolveLimits {
            max_conflicts: Some(CONFLICT_BUDGET),
            deadline: None,
        },
    );
    let secs = start.elapsed().as_secs_f64();
    assert_ne!(
        result,
        SolveResult::Unsat,
        "the miter of a keyed circuit must stay satisfiable"
    );
    (solver.stats().propagations, secs)
}

fn bench_propagation(c: &mut Criterion) {
    let cnf = miter_workload();
    let mut group = c.benchmark_group("propagation_miter16");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::from_parameter(format!("budget{CONFLICT_BUDGET}")),
        &cnf,
        |b, cnf| {
            b.iter(|| run_budgeted(std::hint::black_box(cnf)));
        },
    );
    group.finish();

    // Snapshot pass: a few un-benchmarked runs to compute a stable
    // propagations/sec figure, written to BENCH_cdcl.json.
    let mut best_props_per_sec = 0.0f64;
    let mut last = (0u64, 0.0f64);
    for _ in 0..3 {
        let (props, secs) = run_budgeted(&cnf);
        best_props_per_sec = best_props_per_sec.max(props as f64 / secs);
        last = (props, secs);
    }
    let snapshot_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cdcl.json");
    let speedup = best_props_per_sec / BASELINE_PROPS_PER_SEC;
    let json = format!(
        "{{\n  \"workload\": \"cln16 almost-non-blocking miter, {} conflicts\",\n  \
         \"formula\": {{ \"vars\": {}, \"clauses\": {} }},\n  \
         \"propagations\": {},\n  \"seconds\": {:.4},\n  \
         \"props_per_sec\": {:.0},\n  \
         \"baseline_props_per_sec\": {:.0},\n  \"speedup_vs_baseline\": {:.2}\n}}\n",
        CONFLICT_BUDGET,
        cnf.num_vars(),
        cnf.num_clauses(),
        last.0,
        last.1,
        best_props_per_sec,
        BASELINE_PROPS_PER_SEC,
        speedup,
    );
    match std::fs::File::create(snapshot_path) {
        Ok(mut f) => {
            let _ = f.write_all(json.as_bytes());
            println!("propagation snapshot: {best_props_per_sec:.0} props/sec ({speedup:.2}x baseline) -> BENCH_cdcl.json");
        }
        Err(e) => eprintln!("could not write {snapshot_path}: {e}"),
    }
}

criterion_group!(benches, bench_propagation);
criterion_main!(benches);
