//! Criterion benchmark of CDCL unit-propagation throughput on a fixed
//! locked-miter workload, with a machine-readable regression snapshot.
//!
//! The workload is the hot loop of every table/figure in the paper: a
//! Full-Lock miter (two key copies of a locked circuit sharing inputs,
//! outputs XOR-ed) solved under a fixed conflict budget. Besides the
//! criterion timing, the bench writes `BENCH_cdcl.json` at the repository
//! root recording propagations/second so future PRs can detect solver
//! regressions (`scripts/` or CI can diff the snapshot).
//!
//! Run with: `cargo bench -p fulllock-bench --bench propagation`

use std::io::Write as _;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fulllock_bench::miter_workload;
use fulllock_sat::backend::BackendSpec;
use fulllock_sat::cdcl::{SolveLimits, SolveResult, Solver};
use fulllock_sat::{CertifyLevel, Cnf};

/// Propagations/second measured at the seed commit (separately-allocated
/// `Vec<Lit>` clauses, activity-only reduction) on the reference container:
/// 3.25M props/sec, 1.21 s per 30k-conflict solve on this workload. The
/// acceptance bar for the arena rewrite is >= 1.5x this number.
const BASELINE_PROPS_PER_SEC: f64 = 3_250_000.0;

/// Conflict budget per solve: large enough that propagation dominates,
/// small enough that one measurement stays under a second.
const CONFLICT_BUDGET: u64 = 30_000;

/// Acceptance bar for `Model`-level result certification: re-checking
/// every SAT model against a mirror of the original clauses must cost
/// less than this percentage of propagation throughput.
const MAX_CERTIFY_OVERHEAD_PCT: f64 = 5.0;

/// One measured solve; returns (propagations, seconds).
fn run_budgeted(cnf: &Cnf) -> (u64, f64) {
    let mut solver = Solver::from_cnf(cnf);
    let start = Instant::now();
    let result = solver.solve_limited(
        &[],
        SolveLimits::builder()
            .max_conflicts(CONFLICT_BUDGET)
            .build(),
    );
    let secs = start.elapsed().as_secs_f64();
    assert_ne!(
        result,
        SolveResult::Unsat,
        "the miter of a keyed circuit must stay satisfiable"
    );
    (solver.stats().propagations, secs)
}

/// One measured solve through a (possibly certifying) backend; returns
/// (propagations, seconds). Clause loading happens outside the timed
/// window on both sides, so the figure isolates the certification layer's
/// steady-state cost.
fn run_budgeted_certified(cnf: &Cnf, level: CertifyLevel) -> (u64, f64) {
    let mut solver = BackendSpec::Single.create_certified(level);
    solver.ensure_vars(cnf.num_vars());
    for clause in cnf.clauses() {
        solver.add_clause(clause);
    }
    let start = Instant::now();
    let result = solver.solve_limited(
        &[],
        SolveLimits::builder()
            .max_conflicts(CONFLICT_BUDGET)
            .build(),
    );
    let secs = start.elapsed().as_secs_f64();
    assert_ne!(
        result,
        SolveResult::Unsat,
        "the miter of a keyed circuit must stay satisfiable"
    );
    (solver.stats().propagations, secs)
}

fn bench_propagation(c: &mut Criterion) {
    let cnf = miter_workload(16, 24, 0xBEEF);
    let mut group = c.benchmark_group("propagation_miter16");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::from_parameter(format!("budget{CONFLICT_BUDGET}")),
        &cnf,
        |b, cnf| {
            b.iter(|| run_budgeted(std::hint::black_box(cnf)));
        },
    );
    group.finish();

    // Snapshot pass: a few un-benchmarked runs to compute a stable
    // propagations/sec figure, written to BENCH_cdcl.json.
    let mut best_props_per_sec = 0.0f64;
    let mut last = (0u64, 0.0f64);
    for _ in 0..3 {
        let (props, secs) = run_budgeted(&cnf);
        best_props_per_sec = best_props_per_sec.max(props as f64 / secs);
        last = (props, secs);
    }
    // Certification overhead pass: the same workload through the
    // certifying backend at Off and Model levels. Model-level checking
    // must stay essentially free (its cost is a clause mirror and one
    // model walk per SAT answer, not per propagation).
    let mut certify_off = 0.0f64;
    let mut certify_model = 0.0f64;
    for _ in 0..3 {
        let (props, secs) = run_budgeted_certified(&cnf, CertifyLevel::Off);
        certify_off = certify_off.max(props as f64 / secs);
        let (props, secs) = run_budgeted_certified(&cnf, CertifyLevel::Model);
        certify_model = certify_model.max(props as f64 / secs);
    }
    let certify_overhead_pct = (1.0 - certify_model / certify_off) * 100.0;
    assert!(
        certify_overhead_pct < MAX_CERTIFY_OVERHEAD_PCT,
        "Model-level certification costs {certify_overhead_pct:.1}% of propagation \
         throughput (bar: {MAX_CERTIFY_OVERHEAD_PCT}%): {certify_model:.0} vs {certify_off:.0} props/sec"
    );

    let snapshot_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cdcl.json");
    let speedup = best_props_per_sec / BASELINE_PROPS_PER_SEC;
    let json = format!(
        "{{\n  \"workload\": \"cln16 almost-non-blocking miter, {} conflicts\",\n  \
         \"formula\": {{ \"vars\": {}, \"clauses\": {} }},\n  \
         \"propagations\": {},\n  \"seconds\": {:.4},\n  \
         \"props_per_sec\": {:.0},\n  \
         \"baseline_props_per_sec\": {:.0},\n  \"speedup_vs_baseline\": {:.2},\n  \
         \"certify_off_props_per_sec\": {:.0},\n  \
         \"certify_model_props_per_sec\": {:.0},\n  \
         \"certify_overhead_pct\": {:.2}\n}}\n",
        CONFLICT_BUDGET,
        cnf.num_vars(),
        cnf.num_clauses(),
        last.0,
        last.1,
        best_props_per_sec,
        BASELINE_PROPS_PER_SEC,
        speedup,
        certify_off,
        certify_model,
        certify_overhead_pct,
    );
    match std::fs::File::create(snapshot_path) {
        Ok(mut f) => {
            let _ = f.write_all(json.as_bytes());
            println!("propagation snapshot: {best_props_per_sec:.0} props/sec ({speedup:.2}x baseline) -> BENCH_cdcl.json");
        }
        Err(e) => eprintln!("could not write {snapshot_path}: {e}"),
    }
}

criterion_group!(benches, bench_propagation);
criterion_main!(benches);
