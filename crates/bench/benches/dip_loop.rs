//! End-to-end DIP-loop benchmark: the SAT attack on the cln32 workload —
//! a random multi-thousand-gate host locked with a 32-wire almost
//! non-blocking CLN (the paper's hard routing topology embedded in real
//! logic) — with the legacy encoding pipeline versus the current one.
//!
//! "Legacy" replays the seed-commit attack loop: two full circuit copies
//! appended per observed I/O pair, per-gate Table 1 clauses, and no
//! solver inprocessing. "Current" is the default configuration:
//! cone-reduced I/O assertions, structure-aware CLN clause forms, and
//! CDCL inprocessing between restarts. The host logic is what separates
//! the two: under a known DIP everything outside the key-dependent fanin
//! cone constant-folds away, so the legacy pipeline re-encodes ~2×`GATES`
//! gates per iteration while the current one asserts only the key cones.
//! (On the *bare-wire* `cln_testbed`, where every gate is key-dependent
//! by construction, the pipelines are deliberately near-identical — that
//! testbed isolates the routing network, not the encoding.)
//!
//! Besides the criterion timing, the bench writes `BENCH_dip_loop.json`
//! at the repository root with both absolute numbers so future PRs can
//! detect attack-loop regressions.
//!
//! Run with: `cargo bench -p fulllock-bench --bench dip_loop`

use std::io::Write as _;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fulllock_attacks::{EncodeStyle, SatAttack, SatAttackConfig, SimOracle};
use fulllock_bench::cln_locked_host;
use fulllock_locking::ClnTopology;
use fulllock_sat::cdcl::SolverConfig;
use fulllock_sat::BackendSpec;

/// CLN width of the workload (the paper's Table 2 column the attack
/// still finishes in CI time).
const CLN_SIZE: usize = 32;

/// Host-circuit size: large enough that full-copy re-encoding dominates
/// the legacy pipeline, small enough for a CI smoke run.
const HOST_GATES: usize = 6000;

/// DIP iterations per measured run: enough that the per-iteration
/// formula growth dominates, small enough for a CI smoke run. Neither
/// pipeline converges within this budget on the workload, so both run
/// exactly this many iterations and the per-iteration figures compare
/// identical amounts of attack progress.
const DIP_BUDGET: u64 = 24;

/// Required end-to-end advantage of the current pipeline over the legacy
/// one on this workload.
const MIN_SPEEDUP: f64 = 2.0;

/// The seed-commit attack loop: full-copy I/O assertions, generic
/// per-gate clauses, no inprocessing.
fn legacy_config() -> SatAttackConfig {
    SatAttackConfig {
        max_iterations: Some(DIP_BUDGET),
        backend: BackendSpec::Configured(SolverConfig {
            inprocess: false,
            ..SolverConfig::default()
        }),
        cone_reduce: false,
        encode_style: EncodeStyle::Generic,
        ..SatAttackConfig::default()
    }
}

/// The current default pipeline, same iteration budget.
fn current_config() -> SatAttackConfig {
    SatAttackConfig {
        max_iterations: Some(DIP_BUDGET),
        ..SatAttackConfig::default()
    }
}

/// One measured attack run; returns (iterations, seconds, clauses).
fn run_attack(
    locked: &fulllock_locking::LockedCircuit,
    oracle: &SimOracle,
    config: SatAttackConfig,
) -> (u64, f64, usize) {
    let mut engine = SatAttack::new(locked, oracle, config).expect("interfaces match");
    let start = Instant::now();
    let report = engine.run().expect("complete models");
    let secs = start.elapsed().as_secs_f64();
    (report.iterations, secs, report.formula.1)
}

fn bench_dip_loop(c: &mut Criterion) {
    let (host, locked) =
        cln_locked_host(HOST_GATES, CLN_SIZE, ClnTopology::AlmostNonBlocking, 0xD1B);
    let oracle = SimOracle::new(&host).expect("random host is acyclic");

    let mut group = c.benchmark_group("dip_loop_cln32");
    group.sample_size(10);
    for (name, config) in [("legacy", legacy_config()), ("current", current_config())] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| run_attack(&locked, &oracle, std::hint::black_box(*config)));
        });
    }
    group.finish();

    // Snapshot pass: un-benchmarked runs for a stable end-to-end figure,
    // written to BENCH_dip_loop.json. Per-iteration normalization keeps
    // the figure meaningful if one pipeline converges inside the budget.
    let mut legacy_best = f64::INFINITY;
    let mut current_best = f64::INFINITY;
    let mut legacy_last = (0u64, 0.0f64, 0usize);
    let mut current_last = (0u64, 0.0f64, 0usize);
    for _ in 0..3 {
        let run = run_attack(&locked, &oracle, legacy_config());
        legacy_best = legacy_best.min(run.1 / run.0.max(1) as f64);
        legacy_last = run;
        let run = run_attack(&locked, &oracle, current_config());
        current_best = current_best.min(run.1 / run.0.max(1) as f64);
        current_last = run;
    }
    let speedup = legacy_best / current_best;
    assert!(
        speedup >= MIN_SPEEDUP,
        "DIP loop speedup {speedup:.2}x is below the {MIN_SPEEDUP}x bar \
         (legacy {legacy_best:.4}s/iter vs current {current_best:.4}s/iter)"
    );

    let snapshot_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dip_loop.json");
    let json = format!(
        "{{\n  \"workload\": \"{}-gate random host locked with a cln{} almost non-blocking CLN, \
         {} DIP budget\",\n  \
         \"legacy\": {{ \"iterations\": {}, \"seconds\": {:.4}, \"final_clauses\": {}, \
         \"secs_per_iteration\": {:.5} }},\n  \
         \"current\": {{ \"iterations\": {}, \"seconds\": {:.4}, \"final_clauses\": {}, \
         \"secs_per_iteration\": {:.5} }},\n  \
         \"speedup\": {:.2},\n  \"min_speedup\": {:.1}\n}}\n",
        HOST_GATES,
        CLN_SIZE,
        DIP_BUDGET,
        legacy_last.0,
        legacy_last.1,
        legacy_last.2,
        legacy_best,
        current_last.0,
        current_last.1,
        current_last.2,
        current_best,
        speedup,
        MIN_SPEEDUP,
    );
    match std::fs::File::create(snapshot_path) {
        Ok(mut f) => {
            let _ = f.write_all(json.as_bytes());
            println!("dip loop snapshot: {speedup:.2}x vs legacy pipeline -> BENCH_dip_loop.json");
        }
        Err(e) => eprintln!("could not write {snapshot_path}: {e}"),
    }
}

criterion_group!(benches, bench_dip_loop);
criterion_main!(benches);
