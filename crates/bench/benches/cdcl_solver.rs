//! Criterion micro-benchmark of the CDCL solver on phase-transition
//! random 3-SAT (the solver engine behind every attack).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fulllock_sat::cdcl::Solver;
use fulllock_sat::random_sat::{generate, RandomSatConfig};

fn bench_cdcl(c: &mut Criterion) {
    let mut group = c.benchmark_group("cdcl_3sat_ratio4.3");
    for vars in [50usize, 100, 150] {
        group.bench_with_input(BenchmarkId::from_parameter(vars), &vars, |b, &vars| {
            let cnf = generate(RandomSatConfig::from_ratio(vars, 4.3, 3, 3)).expect("valid config");
            b.iter(|| {
                let mut solver = Solver::from_cnf(std::hint::black_box(&cnf));
                solver.solve(&[])
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cdcl);
criterion_main!(benches);
