//! Criterion benchmark of the locking transformation itself (PLR
//! insertion cost on the larger suite circuits) and of oracle simulation
//! (the attack's inner query loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fulllock_locking::{FullLock, FullLockConfig, LockingScheme};
use fulllock_netlist::{benchmarks, Simulator};

fn bench_lock(c: &mut Criterion) {
    let mut group = c.benchmark_group("fulllock_insertion");
    group.sample_size(10);
    for name in ["c880", "c5315"] {
        let nl = benchmarks::load(name).expect("suite benchmark");
        group.bench_with_input(BenchmarkId::from_parameter(name), &nl, |b, nl| {
            let scheme = FullLock::new(FullLockConfig::single_plr(16));
            b.iter(|| {
                scheme
                    .lock(std::hint::black_box(nl))
                    .expect("lockable host")
            });
        });
    }
    group.finish();
}

fn bench_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_simulation");
    for name in ["c880", "c7552"] {
        let nl = benchmarks::load(name).expect("suite benchmark");
        group.bench_with_input(BenchmarkId::from_parameter(name), &nl, |b, nl| {
            let sim = Simulator::new(nl).expect("acyclic benchmark");
            let pattern = vec![true; nl.inputs().len()];
            b.iter(|| {
                sim.run(std::hint::black_box(&pattern))
                    .expect("sized pattern")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lock, bench_oracle);
criterion_main!(benches);
