//! Criterion benchmark behind Table 2: full SAT attack on standalone CLNs
//! (small sizes only — the larger ones are the TO rows of the table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fulllock_attacks::{Attack, SatAttackConfig, SimOracle};
use fulllock_bench::cln_testbed;
use fulllock_locking::ClnTopology;

fn bench_cln_attack(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_attack_cln");
    group.sample_size(10);
    for (topology, n) in [
        (ClnTopology::Shuffle, 4usize),
        (ClnTopology::Shuffle, 8),
        (ClnTopology::AlmostNonBlocking, 4),
        (ClnTopology::AlmostNonBlocking, 8),
    ] {
        let label = format!("{}_{n}", topology.name());
        group.bench_with_input(BenchmarkId::from_parameter(label), &n, |b, &n| {
            let (host, locked) = cln_testbed(n, topology, 1);
            b.iter(|| {
                let oracle = SimOracle::new(&host).expect("acyclic host");
                SatAttackConfig::default()
                    .run(std::hint::black_box(&locked), &oracle)
                    .expect("matching interfaces")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cln_attack);
criterion_main!(benches);
