//! Criterion micro-benchmark behind Fig 1: DPLL solve time across the
//! easy/hard/easy bands of random 3-SAT.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fulllock_sat::dpll;
use fulllock_sat::random_sat::{generate, RandomSatConfig};

fn bench_dpll_ratio(c: &mut Criterion) {
    let mut group = c.benchmark_group("dpll_3sat_30vars");
    for ratio in [2.0f64, 3.0, 4.3, 6.0, 8.0] {
        group.bench_with_input(BenchmarkId::from_parameter(ratio), &ratio, |b, &ratio| {
            let cnf = generate(RandomSatConfig::from_ratio(30, ratio, 3, 7)).expect("valid config");
            b.iter(|| dpll::solve(std::hint::black_box(&cnf), None));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dpll_ratio);
criterion_main!(benches);
