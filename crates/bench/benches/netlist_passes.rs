//! Criterion benchmarks of the netlist passes that support the
//! experiments: the logic optimizer and SAT-based equivalence checking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fulllock_netlist::{benchmarks, opt};
use fulllock_sat::equiv;

fn bench_optimizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("logic_optimizer");
    for name in ["c880", "c5315"] {
        let nl = benchmarks::load(name).expect("suite benchmark");
        group.bench_with_input(BenchmarkId::from_parameter(name), &nl, |b, nl| {
            b.iter(|| opt::optimize(std::hint::black_box(nl)).expect("acyclic"));
        });
    }
    group.finish();
}

fn bench_equivalence(c: &mut Criterion) {
    let mut group = c.benchmark_group("equivalence_check");
    group.sample_size(10);
    for name in ["c432", "c1908"] {
        let nl = benchmarks::load(name).expect("suite benchmark");
        let optimized = opt::optimize(&nl).expect("acyclic").netlist;
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(nl, optimized),
            |b, (a, o)| {
                b.iter(|| {
                    let verdict =
                        equiv::check(std::hint::black_box(a), o, None).expect("checkable");
                    assert!(verdict.is_equivalent());
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_optimizer, bench_equivalence);
criterion_main!(benches);
