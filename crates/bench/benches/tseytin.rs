//! Criterion micro-benchmark of the Tseytin encoder over the benchmark
//! suite (the per-iteration encoding cost of the SAT attack).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fulllock_netlist::benchmarks;
use fulllock_sat::tseytin;

fn bench_tseytin(c: &mut Criterion) {
    let mut group = c.benchmark_group("tseytin_encode");
    for name in ["c432", "c1908", "c7552"] {
        let nl = benchmarks::load(name).expect("suite benchmark");
        group.bench_with_input(BenchmarkId::from_parameter(name), &nl, |b, nl| {
            b.iter(|| tseytin::encode(std::hint::black_box(nl)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tseytin);
criterion_main!(benches);
