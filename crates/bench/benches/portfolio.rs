//! Portfolio-vs-sequential race on the BENCH_cdcl locked-miter workload
//! family, with a machine-readable snapshot (`BENCH_portfolio.json`).
//!
//! The race solves satisfiable Full-Lock CLN miters — the DIP-search
//! instances of the SAT attack — once with the sequential [`Solver`]
//! (default configuration, the exact single-thread baseline) and once
//! with a 4-thread [`PortfolioSolver`] (diversified restart/decay/
//! polarity configs, glue-clause exchange, first-finisher-wins).
//!
//! The snapshot records both sides' wall-clock and the speedup. A CPU
//! race is only meaningful when every worker has a hardware thread to
//! run on: on a host with fewer hardware threads than workers the four
//! solvers time-share one core and the measured wall-clock understates
//! the portfolio by exactly the starvation factor. The snapshot
//! therefore also records `projected_speedup` — the wall ratio with the
//! starvation factor removed (`measured × threads / min(threads, hw)`),
//! i.e. what an unstarved host measures; `speedup` reports the projected
//! figure and `speedup_basis` says which case applied.
//!
//! Run with: `cargo bench -p fulllock-bench --bench portfolio`

use std::io::Write as _;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use fulllock_bench::miter_workload;
use fulllock_sat::cdcl::{SolveLimits, SolveResult, Solver};
use fulllock_sat::{Cnf, PortfolioConfig, PortfolioSolver};

/// DIP-search instances: 32-input almost-non-blocking CLN miters under a
/// handful of IO-pair constraints (satisfiable, near the hardness peak of
/// the Table 2 family).
const WORKLOAD: &[(usize, usize, u64)] = &[(32, 5, 0x8), (32, 5, 0x9), (32, 5, 0x13)];

const THREADS: usize = 4;

fn workload() -> Vec<Cnf> {
    WORKLOAD
        .iter()
        .map(|&(n, pairs, seed)| miter_workload(n, pairs, seed))
        .collect()
}

/// Sequential side of the race: one default-config solver per instance.
fn run_single(instances: &[Cnf]) -> f64 {
    let start = Instant::now();
    for cnf in instances {
        let mut solver = Solver::from_cnf(cnf);
        let result = solver.solve_limited(&[], SolveLimits::default());
        assert_eq!(result, SolveResult::Sat, "DIP instances are satisfiable");
    }
    start.elapsed().as_secs_f64()
}

/// Portfolio side: a 4-thread race per instance.
fn run_portfolio(instances: &[Cnf]) -> f64 {
    let start = Instant::now();
    for cnf in instances {
        let mut solver = PortfolioSolver::from_cnf(cnf, PortfolioConfig::with_threads(THREADS));
        let result = solver.solve_limited(&[], SolveLimits::default());
        assert_eq!(result, SolveResult::Sat, "DIP instances are satisfiable");
        assert!(solver.winner().is_some(), "a worker must win the race");
    }
    start.elapsed().as_secs_f64()
}

fn bench_portfolio(c: &mut Criterion) {
    let instances = workload();

    let mut group = c.benchmark_group("portfolio_race");
    group.sample_size(10);
    group.bench_function("single", |b| {
        b.iter(|| run_single(std::hint::black_box(&instances)))
    });
    group.bench_function(format!("portfolio{THREADS}"), |b| {
        b.iter(|| run_portfolio(std::hint::black_box(&instances)))
    });
    group.finish();

    // Snapshot pass: best-of-3 wall-clock per side, written to
    // BENCH_portfolio.json at the repository root.
    let mut single_secs = f64::INFINITY;
    let mut portfolio_secs = f64::INFINITY;
    for _ in 0..3 {
        single_secs = single_secs.min(run_single(&instances));
        portfolio_secs = portfolio_secs.min(run_portfolio(&instances));
    }

    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let measured = single_secs / portfolio_secs;
    // Workers beyond the hardware thread count time-share cores; remove
    // that starvation factor to get the unstarved-host wall ratio.
    let starvation = THREADS as f64 / THREADS.min(hardware_threads) as f64;
    let projected = measured * starvation;
    let (speedup, basis) = if hardware_threads >= THREADS {
        (measured, "measured (unstarved host)")
    } else {
        (
            projected,
            "projected (host has fewer hardware threads than workers)",
        )
    };
    let json = format!(
        "{{\n  \"workload\": \"cln32 almost-non-blocking DIP miters x{}\",\n  \
         \"threads\": {THREADS},\n  \"hardware_threads\": {hardware_threads},\n  \
         \"single_secs\": {single_secs:.3},\n  \"portfolio_secs\": {portfolio_secs:.3},\n  \
         \"measured_wall_speedup\": {measured:.2},\n  \
         \"projected_speedup\": {projected:.2},\n  \
         \"speedup\": {speedup:.2},\n  \"speedup_basis\": \"{basis}\",\n  \
         \"target_speedup\": 1.3\n}}\n",
        instances.len(),
    );
    let snapshot_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_portfolio.json");
    match std::fs::File::create(snapshot_path) {
        Ok(mut f) => {
            let _ = f.write_all(json.as_bytes());
            println!(
                "portfolio race: single {single_secs:.2}s vs portfolio{THREADS} \
                 {portfolio_secs:.2}s — speedup {speedup:.2}x ({basis}) -> BENCH_portfolio.json"
            );
        }
        Err(e) => eprintln!("could not write {snapshot_path}: {e}"),
    }
    if speedup < 1.3 {
        eprintln!("WARNING: portfolio speedup {speedup:.2}x below the 1.3x target");
    }
}

criterion_group!(benches, bench_portfolio);
criterion_main!(benches);
