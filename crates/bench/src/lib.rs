//! Shared harness for the paper-reproduction experiment binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/` (see
//! `EXPERIMENTS.md` at the repository root for the index). This library
//! holds what they share: wall-clock scaling, plain-text table rendering,
//! and the standalone-CLN testbed of Table 2.
//!
//! # Scaling
//!
//! The paper's testbed ran attacks with a 2×10⁶-second timeout. The
//! binaries default to a seconds-scale budget so the whole suite runs on a
//! laptop; set `FULLLOCK_TIMEOUT_SECS` to raise it and `FULLLOCK_FULL=1`
//! to extend the sweeps toward the paper's sizes. `TO` rows mean the same
//! thing they mean in the paper — the attack did not finish within the
//! budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::Duration;

use fulllock_attacks::encode_locked;
use fulllock_locking::{
    ClnTopology, FullLock, FullLockConfig, LockedCircuit, LockingScheme, PlrSpec, WireSelection,
};
use fulllock_netlist::{GateKind, Netlist};
use fulllock_sat::{Cnf, Lit, Var};

/// Experiment scaling knobs, read from the environment.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Per-attack wall-clock budget (the paper's 2×10⁶ s, scaled down).
    pub timeout: Duration,
    /// Whether to run the extended (closer-to-paper) sweeps.
    pub full: bool,
    /// SAT worker threads per attack (1 = sequential solver, >1 = racing
    /// portfolio).
    pub threads: usize,
}

impl Scale {
    /// Reads `FULLLOCK_TIMEOUT_SECS` (default 10), `FULLLOCK_FULL`, and
    /// `FULLLOCK_THREADS` (default 1).
    pub fn from_env() -> Scale {
        let secs = std::env::var("FULLLOCK_TIMEOUT_SECS")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(10.0);
        let full = std::env::var("FULLLOCK_FULL").is_ok_and(|v| v != "0" && !v.is_empty());
        let threads = std::env::var("FULLLOCK_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(1)
            .max(1);
        Scale {
            timeout: Duration::from_secs_f64(secs.max(0.1)),
            full,
            threads,
        }
    }

    /// The solving backend the thread knob selects: the sequential solver
    /// for 1 thread, a racing portfolio otherwise.
    pub fn backend(&self) -> fulllock_sat::BackendSpec {
        if self.threads <= 1 {
            fulllock_sat::BackendSpec::Single
        } else {
            fulllock_sat::BackendSpec::portfolio(self.threads)
        }
    }
}

/// Formats a duration like the paper's tables: seconds with sensible
/// precision, or `TO` when `None`.
pub fn fmt_attack_time(elapsed: Option<Duration>) -> String {
    match elapsed {
        None => "TO".to_string(),
        Some(d) => {
            let s = d.as_secs_f64();
            if s < 0.1 {
                format!("{s:.3}")
            } else if s < 100.0 {
                format!("{s:.2}")
            } else {
                format!("{s:.0}")
            }
        }
    }
}

/// A plain-text table renderer for experiment output.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self, title: &str) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n=== {title} ===");
        let line = |out: &mut String, cells: &[String]| {
            let mut parts = Vec::with_capacity(cells.len());
            for (w, cell) in widths.iter().zip(cells) {
                parts.push(format!("{cell:<w$}"));
            }
            let _ = writeln!(out, "| {} |", parts.join(" | "));
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self, title: &str) {
        print!("{}", self.render(title));
    }
}

/// Builds the standalone CLN testbed of Table 2: an `n`-wire identity
/// circuit (input → buffer → output per wire) locked with a single CLN of
/// the given topology (no LUTs, no twisting — the table isolates the
/// routing network). Returns `(oracle netlist, locked circuit)`.
///
/// # Panics
///
/// Panics if `n` is not a power of two ≥ 4 (the CLN size rule).
pub fn cln_testbed(n: usize, topology: ClnTopology, seed: u64) -> (Netlist, LockedCircuit) {
    let mut host = Netlist::new(format!("wires{n}"));
    let inputs: Vec<_> = (0..n).map(|i| host.add_input(format!("x{i}"))).collect();
    for (i, &x) in inputs.iter().enumerate() {
        let b = host
            .add_named_gate(GateKind::Buf, &[x], format!("w{i}"))
            .expect("buffer arity is 1");
        host.mark_output(b);
    }
    let config = FullLockConfig {
        plrs: vec![PlrSpec {
            cln_size: n,
            topology,
            with_luts: false,
            with_inverters: true,
        }],
        selection: WireSelection::Acyclic,
        twist_probability: 0.0,
        seed,
    };
    let locked = FullLock::new(config)
        .lock(&host)
        .expect("an n-wire host always accommodates an n-input CLN");
    (host, locked)
}

/// Builds the fixed locked-miter workload of the solver benchmarks
/// (`BENCH_cdcl.json`, `BENCH_portfolio.json`): an `n`-wire identity host
/// locked with an almost non-blocking CLN (the paper's hard topology), two
/// key copies sharing data inputs, outputs forced to differ, plus
/// `io_pairs` asserted oracle I/O pairs. The I/O pairs replicate a
/// mid-attack solver state — the first bare-miter solve is trivially SAT,
/// but once both key copies must agree with the oracle (identity routing)
/// on many patterns, finding a remaining DIP forces a deep search.
///
/// # Panics
///
/// Panics if `n` is not a power of two ≥ 4 (the CLN size rule).
pub fn miter_workload(n: usize, io_pairs: usize, seed: u64) -> Cnf {
    let (_host, locked) = cln_testbed(n, ClnTopology::AlmostNonBlocking, seed);
    let mut cnf = Cnf::new();
    let x_vars: Vec<Var> = locked.data_inputs.iter().map(|_| cnf.new_var()).collect();
    let k1_vars: Vec<Var> = locked.key_inputs.iter().map(|_| cnf.new_var()).collect();
    let k2_vars: Vec<Var> = locked.key_inputs.iter().map(|_| cnf.new_var()).collect();
    let copy1 = encode_locked(&locked, &mut cnf, &x_vars, &k1_vars);
    let copy2 = encode_locked(&locked, &mut cnf, &x_vars, &k2_vars);
    let mut miter_clause = Vec::new();
    for (&a, &b) in copy1.output_vars.iter().zip(&copy2.output_vars) {
        let d = cnf.new_var();
        fulllock_sat::tseytin::encode_gate(&mut cnf, GateKind::Xor, d, &[a, b]);
        miter_clause.push(Lit::positive(d));
    }
    cnf.add_clause(miter_clause);

    // The host is an n-wire identity circuit, so the oracle's response to
    // any pattern is the pattern itself. Assert deterministic
    // (xorshift-generated) pairs for both key copies, as
    // `SatAttack::assert_io` would after `io_pairs` DIP iterations.
    let mut state = 0x9E37_79B9u64 ^ seed;
    for _ in 0..io_pairs {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let pattern: Vec<bool> = (0..n).map(|bit| state >> bit & 1 == 1).collect();
        for key_vars in [&k1_vars, &k2_vars] {
            let data_vars: Vec<Var> = (0..n).map(|_| cnf.new_var()).collect();
            let enc = encode_locked(&locked, &mut cnf, &data_vars, key_vars);
            for (slot, &v) in data_vars.iter().enumerate() {
                cnf.add_clause([Lit::with_polarity(v, pattern[slot])]);
            }
            for (o, &v) in enc.output_vars.iter().enumerate() {
                cnf.add_clause([Lit::with_polarity(v, pattern[o])]);
            }
        }
    }
    cnf
}

#[cfg(test)]
mod tests {
    use super::*;
    use fulllock_attacks::{Attack, SatAttackConfig, SimOracle};

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["a", "long header"]);
        t.row(["1", "2"]);
        t.row(["wide cell", "x"]);
        let s = t.render("demo");
        assert!(s.contains("=== demo ==="));
        assert!(s.contains("| a         | long header |"));
    }

    #[test]
    fn fmt_attack_time_formats() {
        assert_eq!(fmt_attack_time(None), "TO");
        assert_eq!(fmt_attack_time(Some(Duration::from_millis(50))), "0.050");
        assert_eq!(fmt_attack_time(Some(Duration::from_secs(5))), "5.00");
        assert_eq!(fmt_attack_time(Some(Duration::from_secs(500))), "500");
    }

    #[test]
    fn cln_testbed_is_attackable_and_correct() {
        let (host, locked) = cln_testbed(4, ClnTopology::Shuffle, 0);
        // Correct key = identity-restoring routing.
        let x = [true, false, true, true];
        assert_eq!(locked.eval(&x, &locked.correct_key).unwrap(), x.to_vec());
        let oracle = SimOracle::new(&host).unwrap();
        let report = SatAttackConfig::default().run(&locked, &oracle).unwrap();
        assert!(report.outcome.is_broken(), "4-input CLN must fall quickly");
    }

    #[test]
    fn miter_workload_builds_a_hard_formula() {
        let cnf = miter_workload(8, 4, 1);
        assert!(cnf.num_vars() > 100);
        assert!(cnf.num_clauses() > cnf.num_vars());
    }

    #[test]
    fn scale_reads_defaults() {
        let scale = Scale::from_env();
        assert!(scale.timeout >= Duration::from_millis(100));
    }
}
