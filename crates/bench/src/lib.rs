//! Shared harness for the paper-reproduction experiment binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/` (see
//! `EXPERIMENTS.md` at the repository root for the index). This library
//! holds what they share: wall-clock scaling, plain-text table rendering,
//! and the standalone-CLN testbed of Table 2.
//!
//! # Scaling
//!
//! The paper's testbed ran attacks with a 2×10⁶-second timeout. The
//! binaries default to a seconds-scale budget so the whole suite runs on a
//! laptop; set `FULLLOCK_TIMEOUT_SECS` to raise it and `FULLLOCK_FULL=1`
//! to extend the sweeps toward the paper's sizes. `TO` rows mean the same
//! thing they mean in the paper — the attack did not finish within the
//! budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::Duration;

use fulllock_attacks::encode_locked;
use fulllock_harness::json::Json;
use fulllock_locking::{
    ClnTopology, FullLock, FullLockConfig, LockedCircuit, LockingScheme, PlrSpec, WireSelection,
};
use fulllock_netlist::{GateKind, Netlist};
use fulllock_sat::{AmbientConfig, Cnf, Lit, Var};

/// Experiment scaling knobs, read from the environment.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Per-attack wall-clock budget (the paper's 2×10⁶ s, scaled down).
    pub timeout: Duration,
    /// Whether to run the extended (closer-to-paper) sweeps.
    pub full: bool,
    /// SAT worker threads per attack (1 = sequential solver, >1 = racing
    /// portfolio).
    pub threads: usize,
}

impl Scale {
    /// Reads the `FULLLOCK_*` scale knobs from the environment via
    /// [`ScaleConfig`]. Malformed values are a hard error (printed to
    /// stderr, exit 2) rather than a silent fall-back to defaults, and
    /// unknown `FULLLOCK_*` variables produce a warning — so a typo like
    /// `FULLLOCK_TIMEOUT_SEC=3600` can no longer quietly run a sweep
    /// with the 10-second default.
    pub fn from_env() -> Scale {
        match ScaleConfig::from_env() {
            Ok((config, warnings)) => {
                for warning in warnings {
                    eprintln!("warning: {warning}");
                }
                config.into_scale()
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    /// The solving backend the thread knob selects: the sequential solver
    /// for 1 thread, a racing portfolio otherwise.
    pub fn backend(&self) -> fulllock_sat::BackendSpec {
        if self.threads <= 1 {
            fulllock_sat::BackendSpec::Single
        } else {
            fulllock_sat::BackendSpec::portfolio(self.threads)
        }
    }
}

/// A malformed `FULLLOCK_*` environment variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleError {
    /// The offending variable name.
    pub var: String,
    /// Its raw value.
    pub value: String,
    /// Why it was rejected.
    pub reason: String,
}

impl std::fmt::Display for ScaleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}={:?}: {}", self.var, self.value, self.reason)
    }
}

impl std::error::Error for ScaleError {}

/// Typed, validated view of the `FULLLOCK_*` scale knobs.
///
/// Unlike the old ad-hoc parsing, garbage is rejected with a clear
/// error instead of silently falling back to a default, and variables
/// that look like typos of a known knob (`FULLLOCK_TIMEOUT_SEC`,
/// `FULLLOCK_THREAD`, …) are flagged.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleConfig {
    /// `FULLLOCK_TIMEOUT_SECS`: per-attack budget in seconds (default
    /// 10; must be a positive finite number, clamped to ≥ 0.1).
    pub timeout_secs: f64,
    /// `FULLLOCK_FULL`: extended sweeps (default off; accepts
    /// `1`/`true`/`yes` and `0`/`false`/`no`/empty).
    pub full: bool,
    /// `FULLLOCK_THREADS`: SAT worker threads per attack (default 1;
    /// must be ≥ 1).
    pub threads: usize,
}

/// Every `FULLLOCK_*` variable with a meaning somewhere in the
/// workspace — re-exported from the ambient-configuration layer in
/// `fulllock-sat`, which owns the canonical list (and the typo
/// spell-check built on it).
pub use fulllock_sat::ambient::KNOWN_FULLLOCK_VARS;

impl ScaleConfig {
    /// Parses the knobs from an explicit variable set (pure — the unit
    /// tests feed synthetic environments). Returns the config plus
    /// warnings for unknown `FULLLOCK_*` variables.
    ///
    /// Everything except `FULLLOCK_FULL` (the one bench-only knob)
    /// delegates to [`AmbientConfig::parse`], so the experiment binaries
    /// and the attack CLI validate the shared variables identically —
    /// one grammar, one set of error messages, one typo spell-check.
    ///
    /// # Errors
    ///
    /// Returns a [`ScaleError`] describing the first malformed value.
    pub fn parse<I>(vars: I) -> Result<(ScaleConfig, Vec<String>), ScaleError>
    where
        I: IntoIterator<Item = (String, String)>,
    {
        let vars: Vec<(String, String)> = vars.into_iter().collect();
        let mut full = false;
        for (name, value) in &vars {
            if name == "FULLLOCK_FULL" {
                full = match value.trim() {
                    "" | "0" | "false" | "no" => false,
                    "1" | "true" | "yes" => true,
                    other => {
                        return Err(ScaleError {
                            var: name.clone(),
                            value: value.clone(),
                            reason: format!("expected 0/1/true/false/yes/no, got {other:?}"),
                        })
                    }
                };
            }
        }
        let (ambient, warnings) = AmbientConfig::parse(vars).map_err(|e| ScaleError {
            var: e.var,
            value: e.value,
            reason: e.reason,
        })?;
        let config = ScaleConfig {
            timeout_secs: ambient.timeout.map(|t| t.as_secs_f64()).unwrap_or(10.0),
            full,
            threads: ambient.threads,
        };
        Ok((config, warnings))
    }

    /// [`parse`](Self::parse) over the process environment.
    ///
    /// # Errors
    ///
    /// Returns a [`ScaleError`] describing the first malformed value.
    pub fn from_env() -> Result<(ScaleConfig, Vec<String>), ScaleError> {
        ScaleConfig::parse(std::env::vars())
    }

    /// Converts into the [`Scale`] the experiment binaries consume.
    pub fn into_scale(self) -> Scale {
        Scale {
            timeout: Duration::from_secs_f64(self.timeout_secs.max(0.1)),
            full: self.full,
            threads: self.threads,
        }
    }
}

/// The registry of experiment binaries regenerating the paper's tables
/// and figures — the single source of truth the built-in campaign plan
/// (`fulllock campaign --plan builtin:paper`) and the drift guard in
/// `tests/bins_smoke.rs` both consume.
pub mod registry {
    pub use fulllock_harness::plan::PAPER_BINS;
}

/// Formats a duration like the paper's tables: seconds with sensible
/// precision, or `TO` when `None`.
pub fn fmt_attack_time(elapsed: Option<Duration>) -> String {
    match elapsed {
        None => "TO".to_string(),
        Some(d) => {
            let s = d.as_secs_f64();
            if s < 0.1 {
                format!("{s:.3}")
            } else if s < 100.0 {
                format!("{s:.2}")
            } else {
                format!("{s:.0}")
            }
        }
    }
}

/// A plain-text table renderer for experiment output.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self, title: &str) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n=== {title} ===");
        let line = |out: &mut String, cells: &[String]| {
            let mut parts = Vec::with_capacity(cells.len());
            for (w, cell) in widths.iter().zip(cells) {
                parts.push(format!("{cell:<w$}"));
            }
            let _ = writeln!(out, "| {} |", parts.join(" | "));
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self, title: &str) {
        print!("{}", self.render(title));
    }

    /// Renders the rows as JSON lines: one object per row mapping each
    /// header to its cell, with a `"table"` key carrying the title. This
    /// is the machine-readable format campaign tooling ingests.
    pub fn render_json_lines(&self, title: &str) -> String {
        let mut out = String::new();
        for row in &self.rows {
            let mut members = vec![("table".to_string(), Json::Str(title.to_string()))];
            for (header, cell) in self.headers.iter().zip(row) {
                members.push((header.clone(), Json::Str(cell.clone())));
            }
            out.push_str(&Json::Object(members).to_text());
            out.push('\n');
        }
        out
    }

    /// Prints the table in the format the invocation asked for: JSON
    /// lines when `--json` is among the process arguments (see
    /// [`json_requested`]), the aligned plain-text table otherwise.
    pub fn emit(&self, title: &str) {
        if json_requested() {
            print!("{}", self.render_json_lines(title));
        } else {
            self.print(title);
        }
    }
}

/// Whether the current process was invoked with a `--json` argument
/// (the experiment binaries' machine-readable row output switch).
pub fn json_requested() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Builds the standalone CLN testbed of Table 2: an `n`-wire identity
/// circuit (input → buffer → output per wire) locked with a single CLN of
/// the given topology (no LUTs, no twisting — the table isolates the
/// routing network). Returns `(oracle netlist, locked circuit)`.
///
/// # Panics
///
/// Panics if `n` is not a power of two ≥ 4 (the CLN size rule).
pub fn cln_testbed(n: usize, topology: ClnTopology, seed: u64) -> (Netlist, LockedCircuit) {
    let mut host = Netlist::new(format!("wires{n}"));
    let inputs: Vec<_> = (0..n).map(|i| host.add_input(format!("x{i}"))).collect();
    for (i, &x) in inputs.iter().enumerate() {
        let b = host
            .add_named_gate(GateKind::Buf, &[x], format!("w{i}"))
            .expect("buffer arity is 1");
        host.mark_output(b);
    }
    let config = FullLockConfig {
        plrs: vec![PlrSpec {
            cln_size: n,
            topology,
            with_luts: false,
            with_inverters: true,
        }],
        selection: WireSelection::Acyclic,
        twist_probability: 0.0,
        seed,
    };
    let locked = FullLock::new(config)
        .lock(&host)
        .expect("an n-wire host always accommodates an n-input CLN");
    (host, locked)
}

/// Builds the DIP-loop benchmark workload: a random `gates`-gate host
/// (64 inputs, 32 outputs, fanin ≤ 3) locked with a single `cln_size`-wire
/// CLN of the given topology. Unlike [`cln_testbed`], the host carries
/// real logic around the routing network, so the key-dependent fanin cone
/// of each output is a small fraction of the circuit — the workload that
/// separates full-copy re-encoding from cone-reduced I/O assertions.
/// Returns `(oracle netlist, locked circuit)`.
///
/// # Panics
///
/// Panics if `cln_size` is not a power of two ≥ 4 (the CLN size rule).
pub fn cln_locked_host(
    gates: usize,
    cln_size: usize,
    topology: ClnTopology,
    seed: u64,
) -> (Netlist, LockedCircuit) {
    let host = fulllock_netlist::random::generate(fulllock_netlist::random::RandomCircuitConfig {
        inputs: 64,
        outputs: 32,
        gates,
        max_fanin: 3,
        seed,
    })
    .expect("fixed interface with gates >= outputs is a valid config");
    let config = FullLockConfig {
        plrs: vec![PlrSpec {
            cln_size,
            topology,
            with_luts: false,
            with_inverters: true,
        }],
        selection: WireSelection::Acyclic,
        twist_probability: 0.0,
        seed,
    };
    let locked = FullLock::new(config)
        .lock(&host)
        .expect("a multi-thousand-gate host accommodates the CLN");
    (host, locked)
}

/// Builds the fixed locked-miter workload of the solver benchmarks
/// (`BENCH_cdcl.json`, `BENCH_portfolio.json`): an `n`-wire identity host
/// locked with an almost non-blocking CLN (the paper's hard topology), two
/// key copies sharing data inputs, outputs forced to differ, plus
/// `io_pairs` asserted oracle I/O pairs. The I/O pairs replicate a
/// mid-attack solver state — the first bare-miter solve is trivially SAT,
/// but once both key copies must agree with the oracle (identity routing)
/// on many patterns, finding a remaining DIP forces a deep search.
///
/// # Panics
///
/// Panics if `n` is not a power of two ≥ 4 (the CLN size rule).
pub fn miter_workload(n: usize, io_pairs: usize, seed: u64) -> Cnf {
    let (_host, locked) = cln_testbed(n, ClnTopology::AlmostNonBlocking, seed);
    let mut cnf = Cnf::new();
    let x_vars: Vec<Var> = locked.data_inputs.iter().map(|_| cnf.new_var()).collect();
    let k1_vars: Vec<Var> = locked.key_inputs.iter().map(|_| cnf.new_var()).collect();
    let k2_vars: Vec<Var> = locked.key_inputs.iter().map(|_| cnf.new_var()).collect();
    let copy1 = encode_locked(&locked, &mut cnf, &x_vars, &k1_vars);
    let copy2 = encode_locked(&locked, &mut cnf, &x_vars, &k2_vars);
    let mut miter_clause = Vec::new();
    for (&a, &b) in copy1.output_vars.iter().zip(&copy2.output_vars) {
        let d = cnf.new_var();
        fulllock_sat::tseytin::encode_gate(&mut cnf, GateKind::Xor, d, &[a, b]);
        miter_clause.push(Lit::positive(d));
    }
    cnf.add_clause(miter_clause);

    // The host is an n-wire identity circuit, so the oracle's response to
    // any pattern is the pattern itself. Assert deterministic
    // (xorshift-generated) pairs for both key copies, as
    // `SatAttack::assert_io` would after `io_pairs` DIP iterations.
    let mut state = 0x9E37_79B9u64 ^ seed;
    for _ in 0..io_pairs {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let pattern: Vec<bool> = (0..n).map(|bit| state >> bit & 1 == 1).collect();
        for key_vars in [&k1_vars, &k2_vars] {
            let data_vars: Vec<Var> = (0..n).map(|_| cnf.new_var()).collect();
            let enc = encode_locked(&locked, &mut cnf, &data_vars, key_vars);
            for (slot, &v) in data_vars.iter().enumerate() {
                cnf.add_clause([Lit::with_polarity(v, pattern[slot])]);
            }
            for (o, &v) in enc.output_vars.iter().enumerate() {
                cnf.add_clause([Lit::with_polarity(v, pattern[o])]);
            }
        }
    }
    cnf
}

#[cfg(test)]
mod tests {
    use super::*;
    use fulllock_attacks::{Attack, SatAttackConfig, SimOracle};

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["a", "long header"]);
        t.row(["1", "2"]);
        t.row(["wide cell", "x"]);
        let s = t.render("demo");
        assert!(s.contains("=== demo ==="));
        assert!(s.contains("| a         | long header |"));
    }

    #[test]
    fn fmt_attack_time_formats() {
        assert_eq!(fmt_attack_time(None), "TO");
        assert_eq!(fmt_attack_time(Some(Duration::from_millis(50))), "0.050");
        assert_eq!(fmt_attack_time(Some(Duration::from_secs(5))), "5.00");
        assert_eq!(fmt_attack_time(Some(Duration::from_secs(500))), "500");
    }

    #[test]
    fn cln_testbed_is_attackable_and_correct() {
        let (host, locked) = cln_testbed(4, ClnTopology::Shuffle, 0);
        // Correct key = identity-restoring routing.
        let x = [true, false, true, true];
        assert_eq!(locked.eval(&x, &locked.correct_key).unwrap(), x.to_vec());
        let oracle = SimOracle::new(&host).unwrap();
        let report = SatAttackConfig::default().run(&locked, &oracle).unwrap();
        assert!(report.outcome.is_broken(), "4-input CLN must fall quickly");
    }

    #[test]
    fn miter_workload_builds_a_hard_formula() {
        let cnf = miter_workload(8, 4, 1);
        assert!(cnf.num_vars() > 100);
        assert!(cnf.num_clauses() > cnf.num_vars());
    }

    #[test]
    fn scale_reads_defaults() {
        let scale = Scale::from_env();
        assert!(scale.timeout >= Duration::from_millis(100));
    }

    fn env(vars: &[(&str, &str)]) -> Vec<(String, String)> {
        vars.iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn scale_config_parses_valid_knobs() {
        let (config, warnings) = ScaleConfig::parse(env(&[
            ("FULLLOCK_TIMEOUT_SECS", "2.5"),
            ("FULLLOCK_FULL", "1"),
            ("FULLLOCK_THREADS", "4"),
            ("PATH", "/usr/bin"),
        ]))
        .expect("valid knobs parse");
        assert_eq!(config.timeout_secs, 2.5);
        assert!(config.full);
        assert_eq!(config.threads, 4);
        assert!(warnings.is_empty(), "{warnings:?}");
        let scale = config.into_scale();
        assert_eq!(scale.timeout, Duration::from_secs_f64(2.5));
    }

    #[test]
    fn scale_config_rejects_garbage_loudly() {
        for (var, value) in [
            ("FULLLOCK_TIMEOUT_SECS", "soon"),
            ("FULLLOCK_TIMEOUT_SECS", "-3"),
            ("FULLLOCK_TIMEOUT_SECS", "inf"),
            ("FULLLOCK_THREADS", "many"),
            ("FULLLOCK_THREADS", "0"),
            ("FULLLOCK_FULL", "maybe"),
        ] {
            let err = ScaleConfig::parse(env(&[(var, value)]))
                .expect_err(&format!("{var}={value} must be rejected"));
            assert_eq!(err.var, var);
            assert_eq!(err.value, value);
        }
    }

    #[test]
    fn scale_config_warns_on_unknown_vars_with_typo_hint() {
        let (config, warnings) = ScaleConfig::parse(env(&[
            ("FULLLOCK_TIMEOUT_SEC", "3600"),
            ("FULLLOCK_TIMEOUT_SECS", "5"),
        ]))
        .expect("the well-formed knob still parses");
        // The typo did NOT silently set the timeout...
        assert_eq!(config.timeout_secs, 5.0);
        // ...and was called out with a suggestion.
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("FULLLOCK_TIMEOUT_SEC"), "{warnings:?}");
        assert!(
            warnings[0].contains("did you mean FULLLOCK_TIMEOUT_SECS"),
            "{warnings:?}"
        );
    }

    #[test]
    fn known_fulllock_vars_do_not_warn() {
        let (_, warnings) =
            ScaleConfig::parse(env(&[("FULLLOCK_FAILPOINTS", "x=panic")])).expect("parses");
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn table_renders_json_lines() {
        let mut t = Table::new(["circuit", "time"]);
        t.row(["c432", "1.25"]);
        t.row(["c880", "TO"]);
        let json = t.render_json_lines("Table 2");
        let lines: Vec<&str> = json.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"table\":\"Table 2\",\"circuit\":\"c432\",\"time\":\"1.25\"}"
        );
        assert!(lines[1].contains("\"time\":\"TO\""));
    }
}
