//! **Ablation study** — which ingredient of the PLR buys which property?
//!
//! The paper composes four mechanisms: the CLN's cascaded switch-boxes,
//! its key-configurable inverters (+ leading-gate twisting), the
//! key-programmable LUTs, and the almost non-blocking topology. This
//! harness knocks each out and measures what is lost:
//!
//! * SAT-attack time (scaled) — the §3.1 hardness claim;
//! * wrong-key output corruption — the §2 high-corruption claim;
//! * best-case removal error — the §4.2.2 removal-resistance claim.
//!
//! ```text
//! FULLLOCK_TIMEOUT_SECS=10 cargo run --release -p fulllock-bench --bin ablation_study
//! ```

use fulllock_attacks::{Attack, Removal, SatAttackConfig, SimOracle};
use fulllock_bench::{fmt_attack_time, Scale, Table};
use fulllock_locking::{corruption, ClnTopology, FullLock, FullLockConfig, PlrSpec, WireSelection};
use fulllock_netlist::benchmarks;

struct Variant {
    label: &'static str,
    topology: ClnTopology,
    with_luts: bool,
    with_inverters: bool,
    twist: f64,
}

fn main() {
    let scale = Scale::from_env();
    let original = benchmarks::load("c432").expect("suite benchmark");

    let variants = [
        Variant {
            label: "full PLR (paper design)",
            topology: ClnTopology::AlmostNonBlocking,
            with_luts: true,
            with_inverters: true,
            twist: 0.5,
        },
        Variant {
            label: "- LUTs",
            topology: ClnTopology::AlmostNonBlocking,
            with_luts: false,
            with_inverters: true,
            twist: 0.5,
        },
        Variant {
            label: "- twisting",
            topology: ClnTopology::AlmostNonBlocking,
            with_luts: true,
            with_inverters: true,
            twist: 0.0,
        },
        Variant {
            label: "- inverters (and twisting)",
            topology: ClnTopology::AlmostNonBlocking,
            with_luts: true,
            with_inverters: false,
            twist: 0.0,
        },
        Variant {
            label: "blocking topology",
            topology: ClnTopology::Shuffle,
            with_luts: true,
            with_inverters: true,
            twist: 0.5,
        },
        Variant {
            label: "bare blocking CLN",
            topology: ClnTopology::Shuffle,
            with_luts: false,
            with_inverters: false,
            twist: 0.0,
        },
    ];

    let mut table = Table::new([
        "Variant",
        "key bits",
        "SAT time (s)",
        "corruption",
        "removal error",
    ]);
    for v in variants {
        let config = FullLockConfig {
            plrs: vec![PlrSpec {
                cln_size: 16,
                topology: v.topology,
                with_luts: v.with_luts,
                with_inverters: v.with_inverters,
            }],
            selection: WireSelection::Acyclic,
            twist_probability: v.twist,
            seed: 0xAB1A,
        };
        let (locked, trace) = FullLock::new(config)
            .lock_with_trace(&original)
            .expect("benchmark hosts a 16-input PLR");

        let oracle = SimOracle::new(&original).expect("originals are acyclic");
        let report = SatAttackConfig {
            timeout: Some(scale.timeout),
            backend: scale.backend(),
            ..Default::default()
        }
        .run(&locked, &oracle)
        .expect("matching interfaces");
        let sat_cell = if report.outcome.is_broken() {
            fmt_attack_time(Some(report.elapsed))
        } else {
            "TO".to_string()
        };

        let corr =
            corruption::measure(&locked, &original, 8, 32, 5).expect("corruption measurement");
        let removal = Removal {
            trace,
            samples: 300,
            seed: 6,
        };
        let removal_oracle = SimOracle::new(&original).expect("originals are acyclic");
        let removal_report = removal
            .run(&locked, &removal_oracle)
            .expect("acyclic removal study");
        let removal_error = match removal_report.outcome {
            fulllock_attacks::AttackOutcome::Bypassed { error_rate, .. } => error_rate,
            ref other => panic!("removal reports Bypassed, got {other:?}"),
        };

        table.row([
            v.label.to_string(),
            locked.key_len().to_string(),
            sat_cell,
            format!("{:.2}", corr.pattern_error_rate()),
            format!("{:.2}", removal_error),
        ]);
    }
    table.emit(&format!(
        "Ablation: one 16x16 PLR on c432 — timeout {}s",
        scale.timeout.as_secs_f64()
    ));
    println!("\nreading: LUTs & topology drive SAT time; inverters+twisting drive");
    println!("removal resistance; corruption stays high as long as the CLN routes.");
}
