//! **Fig 1 reproduction** — median DPLL recursive calls for random 3-SAT
//! as the clause/variable ratio sweeps 2 → 8.
//!
//! Expected shape: easy-hard-easy with the peak near ratio 4.3 (the
//! phase-transition band 3–6 the paper builds its SAT-hardness argument
//! on).
//!
//! ```text
//! cargo run --release -p fulllock-bench --bin fig1_dpll_hardness
//! ```

use fulllock_bench::{Scale, Table};
use fulllock_sat::dpll;
use fulllock_sat::random_sat::{generate, RandomSatConfig};

fn main() {
    let scale = Scale::from_env();
    let vars = if scale.full { 60 } else { 40 };
    let trials = if scale.full { 21 } else { 11 };

    let mut table = Table::new([
        "clauses/vars",
        "median DPLL calls",
        "median backtracks",
        "SAT fraction",
    ]);
    let mut peak_ratio = 0.0f64;
    let mut peak_calls = 0u64;
    let mut ratio = 2.0;
    while ratio <= 8.01 {
        let mut calls = Vec::with_capacity(trials);
        let mut backtracks = Vec::with_capacity(trials);
        let mut sat = 0usize;
        for seed in 0..trials as u64 {
            let cnf = generate(RandomSatConfig::from_ratio(vars, ratio, 3, seed))
                .expect("valid 3-SAT configuration");
            let outcome = dpll::solve(&cnf, None);
            calls.push(outcome.stats.recursive_calls);
            backtracks.push(outcome.stats.backtracks);
            if outcome.result.is_sat() {
                sat += 1;
            }
        }
        calls.sort_unstable();
        backtracks.sort_unstable();
        let median_calls = calls[calls.len() / 2];
        if median_calls > peak_calls {
            peak_calls = median_calls;
            peak_ratio = ratio;
        }
        table.row([
            format!("{ratio:.2}"),
            median_calls.to_string(),
            backtracks[backtracks.len() / 2].to_string(),
            format!("{:.2}", sat as f64 / trials as f64),
        ]);
        ratio += 0.5;
    }
    table.emit(&format!(
        "Fig 1: median DPLL recursive calls, random 3-SAT, {vars} variables, {trials} seeds"
    ));
    println!(
        "\npeak at ratio {peak_ratio:.2} ({peak_calls} calls) — paper: hard band 3..6, peak ~4.3"
    );
}
