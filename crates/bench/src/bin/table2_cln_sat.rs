//! **Table 2 reproduction** — SAT attack iterations and execution time on
//! standalone CLNs: shuffle-based blocking vs almost non-blocking, over a
//! size sweep.
//!
//! The paper's sweep runs N = 4…512 with a 2×10⁶ s timeout; the default
//! here runs N = 4…32 (64 with `FULLLOCK_FULL=1`) with a seconds-scale
//! timeout. The *shape* is the reproduction target: execution time grows
//! exponentially in N for both topologies, the almost non-blocking CLN is
//! orders of magnitude harder at equal N, and it hits `TO` at a much
//! smaller N than the blocking CLN.
//!
//! ```text
//! FULLLOCK_TIMEOUT_SECS=30 cargo run --release -p fulllock-bench --bin table2_cln_sat
//! ```

use fulllock_attacks::{Attack, AttackOutcome, SatAttackConfig, SimOracle};
use fulllock_bench::{cln_testbed, fmt_attack_time, Scale, Table};
use fulllock_locking::ClnTopology;

fn main() {
    let scale = Scale::from_env();
    let max_n = if scale.full { 128 } else { 32 };
    let sizes: Vec<usize> = (2..=7u32)
        .map(|k| 1usize << k)
        .filter(|&n| n <= max_n)
        .collect();

    for topology in [ClnTopology::Shuffle, ClnTopology::AlmostNonBlocking] {
        let mut table = Table::new([
            "CLN size (N)",
            "key bits",
            "SAT iterations",
            "SAT time (s)",
            "props/sec",
            "mean LBD",
        ]);
        for &n in &sizes {
            let (host, locked) = cln_testbed(n, topology, 1);
            let oracle = SimOracle::new(&host).expect("identity host is acyclic");
            let report = SatAttackConfig {
                timeout: Some(scale.timeout),
                backend: scale.backend(),
                ..Default::default()
            }
            .run(&locked, &oracle)
            .expect("interfaces match by construction");
            let (iters, time) = match report.outcome {
                AttackOutcome::KeyRecovered { verified, .. } => {
                    assert!(verified, "recovered key failed verification at N={n}");
                    (report.iterations.to_string(), Some(report.elapsed))
                }
                _ => (format!("{} (TO)", report.iterations), None),
            };
            let solver = report.solver;
            table.row([
                n.to_string(),
                locked.key_len().to_string(),
                iters,
                fmt_attack_time(time),
                format!("{:.2}M", solver.props_per_cpu_sec() / 1e6),
                format!("{:.1}", solver.mean_lbd()),
            ]);
        }
        let title = match topology {
            ClnTopology::Shuffle => "Table 2 (top): shuffle-based blocking CLN",
            _ => "Table 2 (bottom): almost non-blocking CLN (LOG_{N,log2(N)-2,1})",
        };
        table.emit(&format!(
            "{title} — timeout {}s (paper: 2e6 s)",
            scale.timeout.as_secs_f64()
        ));
    }
    println!("\npaper shape: time grows exponentially with N for both topologies;");
    println!("the almost non-blocking CLN is >=1 order of magnitude harder at equal N");
    println!("and times out at N=64 while blocking survives until N=512.");
}
