//! **Fig 6 reproduction** — a worked PLR-insertion example on a small
//! circuit, showing (a) the original gates, (b) acyclic insertion with
//! negated ("twisted") leading gates, and (c) cyclic insertion closing
//! combinational loops.
//!
//! ```text
//! cargo run --release -p fulllock-bench --bin fig6_insertion_example
//! ```

use fulllock_locking::{ClnTopology, FullLock, FullLockConfig, PlrSpec, WireSelection};
use fulllock_netlist::random::{generate, RandomCircuitConfig};
use fulllock_netlist::{topo, Netlist};

fn summarize(label: &str, nl: &Netlist) {
    let stats = nl.stats();
    println!("\n--- {label} ---");
    println!(
        "{} inputs, {} outputs, {} gates, cyclic: {}",
        stats.inputs,
        stats.outputs,
        stats.gates,
        topo::is_cyclic(nl)
    );
    for (kind, count) in nl.gate_histogram() {
        print!("{}:{count}  ", kind.name());
    }
    println!();
}

fn main() {
    // A Fig 6(a)-sized host: ~17 gates.
    let original = generate(RandomCircuitConfig {
        inputs: 6,
        outputs: 3,
        gates: 17,
        max_fanin: 2,
        seed: 60,
    })
    .expect("valid config");
    summarize("(a) original circuit", &original);

    for (label, selection) in [
        ("(b) acyclic PLR insertion", WireSelection::Acyclic),
        ("(c) cyclic PLR insertion", WireSelection::Cyclic),
    ] {
        let config = FullLockConfig {
            plrs: vec![PlrSpec {
                cln_size: 4,
                topology: ClnTopology::AlmostNonBlocking,
                with_luts: true,
                with_inverters: true,
            }],
            selection,
            twist_probability: 1.0,
            seed: 61,
        };
        match FullLock::new(config).lock_with_trace(&original) {
            Ok((locked, trace)) => {
                summarize(label, &locked.netlist);
                let plr = &trace.plrs[0];
                println!("selected wires (leading gates):");
                for (i, &s) in plr.sources.iter().enumerate() {
                    let kind = locked
                        .netlist
                        .node(s)
                        .gate_kind()
                        .map(|k| k.name())
                        .unwrap_or("?");
                    println!(
                        "  {} -> CLN input {i} -> output {}{}",
                        format_args!("{} ({kind})", locked.netlist.signal_name(s)),
                        plr.permutation[i],
                        if plr.negated[i] {
                            "   [negated: compensated by CLN inverter key]"
                        } else {
                            ""
                        }
                    );
                }
                println!("key bits: {}", locked.key_len());
            }
            Err(e) => println!("\n--- {label} --- skipped: {e}"),
        }
    }
    println!("\npaper: Fig 6(b) replaces mutually-independent gates (no cycle);");
    println!("Fig 6(c) picks freely and closes loops, which CycSAT must then handle.");
}
