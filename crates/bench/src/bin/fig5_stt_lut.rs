//! **Fig 5 reproduction** — power/delay/area of STT-LUTs vs standard
//! cells: LUT2–LUT5 cost about as much as CMOS gates; beyond 5 inputs the
//! 2^k MTJ array takes off. This is the observation that lets Full-Lock
//! replace fan-in ≤ 5 gates (the ISCAS-85/MCNC maximum) with LUTs
//! essentially for free.
//!
//! ```text
//! cargo run --release -p fulllock-bench --bin fig5_stt_lut
//! ```

use fulllock_bench::Table;
use fulllock_netlist::GateKind;
use fulllock_tech::Technology;

fn main() {
    let tech = Technology::generic_32nm();

    let mut cells = Table::new(["Standard cell", "Area (um^2)", "Power (nW)", "Delay (ns)"]);
    for (kind, fanin) in [
        (GateKind::Not, 1),
        (GateKind::Nand, 2),
        (GateKind::And, 2),
        (GateKind::Xor, 2),
        (GateKind::Nand, 4),
        (GateKind::Mux, 3),
    ] {
        let c = tech.gate_cost(kind, fanin);
        cells.row([
            format!("{}{fanin}", kind.name()),
            format!("{:.3}", c.area_um2),
            format!("{:.2}", c.power_nw),
            format!("{:.3}", c.delay_ns),
        ]);
    }
    cells.emit("Fig 5 (left): 32nm-class standard cells");

    let nand2 = tech.gate_cost(GateKind::Nand, 2);
    let mut luts = Table::new([
        "STT-LUT",
        "Area (um^2)",
        "Power (nW)",
        "Delay (ns)",
        "Area vs NAND2",
    ]);
    for k in 2..=8usize {
        let c = tech.stt_lut_cost(k);
        luts.row([
            format!("LUT{k}"),
            format!("{:.3}", c.area_um2),
            format!("{:.2}", c.power_nw),
            format!("{:.3}", c.delay_ns),
            format!("{:.1}x", c.area_um2 / nand2.area_um2),
        ]);
    }
    luts.emit("Fig 5 (right): STT-LUT cost model");
    println!("\npaper shape: LUT sizes 2-5 have negligible overhead vs CMOS basic gates");
    println!("(and constant GHz-class delay); cost explodes from LUT6 on, so Full-Lock");
    println!("caps LUTs at the benchmark suite's maximum fan-in of 5.");
}
