//! **Figs 2–4 reproduction** — structure of the switch-box networks: SwB
//! counts, stage counts, key widths, and reachable-permutation coverage
//! for the blocking (Fig 3) and almost non-blocking (Fig 4) CLNs.
//!
//! ```text
//! cargo run --release -p fulllock-bench --bin topology_report
//! ```

use fulllock_bench::Table;
use fulllock_locking::{ClnStructure, ClnTopology};

fn factorial(n: usize) -> f64 {
    (1..=n).map(|i| i as f64).product()
}

fn main() {
    let topologies = [
        ClnTopology::Shuffle,
        ClnTopology::Banyan,
        ClnTopology::AlmostNonBlocking,
        ClnTopology::Benes,
    ];

    let mut table = Table::new([
        "Topology",
        "N",
        "Stages",
        "SwBs",
        "Key bits",
        "Reachable perms",
        "of N!",
    ]);
    for n in [4usize, 8] {
        for topology in topologies {
            let s = ClnStructure::new(topology, n).expect("valid CLN size");
            let perms = s.reachable_permutations().len();
            // Key bits: per stage, N mux selects + N inverter bits.
            let key_bits = s.stages() * 2 * n;
            table.row([
                topology.name().to_string(),
                n.to_string(),
                s.stages().to_string(),
                s.num_switches().to_string(),
                key_bits.to_string(),
                perms.to_string(),
                format!("{:.1}%", 100.0 * perms as f64 / factorial(n)),
            ]);
        }
    }
    table.emit("Figs 2-4: CLN topology structure and permutation coverage");

    let mut sizes = Table::new(["N", "blocking SwBs (N/2·logN)", "LOG_{N,log2(N)-2,1} SwBs"]);
    for k in 2..=6u32 {
        let n = 1usize << k;
        let blocking = ClnStructure::new(ClnTopology::Shuffle, n).expect("valid size");
        let almost = ClnStructure::new(ClnTopology::AlmostNonBlocking, n).expect("valid size");
        sizes.row([
            n.to_string(),
            blocking.num_switches().to_string(),
            almost.num_switches().to_string(),
        ]);
    }
    sizes.emit("SwB counts vs N (paper: blocking = N/2·logN; almost non-blocking ≈ 2x)");

    // §3.1's strictly-non-blocking sizing argument: LOG_{64,3,6} vs a
    // blocking CLN of the same N.
    let blocking64 = ClnStructure::log_nmp_switch_count(64, 0, 1).expect("valid size");
    let almost64 = ClnStructure::log_nmp_switch_count(64, 4, 1).expect("valid size");
    let strict64 = ClnStructure::log_nmp_switch_count(64, 3, 6).expect("valid size");
    let mut nmp = Table::new(["Network (N=64)", "SwBs", "vs blocking"]);
    nmp.row([
        "blocking (banyan)".to_string(),
        blocking64.to_string(),
        "1.0x".into(),
    ]);
    nmp.row([
        "LOG_{64,4,1} (almost non-blocking)".to_string(),
        almost64.to_string(),
        format!("{:.1}x", almost64 as f64 / blocking64 as f64),
    ]);
    nmp.row([
        "LOG_{64,3,6} (strictly non-blocking)".to_string(),
        strict64.to_string(),
        format!("{:.1}x", strict64 as f64 / blocking64 as f64),
    ]);
    nmp.emit("LOG_{N,M,P} sizing (paper: strict non-blocking needs >5x a blocking CLN)");

    println!("\npaper: the almost non-blocking CLN costs ~2x a blocking CLN of equal N");
    println!("but realizes far more permutations (Fig 4 vs Fig 3); the strictly");
    println!("non-blocking LOG_{{64,3,6}} would cost >5x, which is why Full-Lock");
    println!("settles for LOG_{{N,log2(N)-2,1}}.");
}
