//! **Table 5 reproduction** — the smallest SAT-resilient Full-Lock
//! configuration per benchmark, compared against Cross-Lock's crossbar
//! count for the same resilience.
//!
//! For each circuit the harness climbs a ladder of Full-Lock
//! configurations (and, independently, of Cross-Lock crossbar counts)
//! until the SAT/CycSAT attack times out within the scaled budget, and
//! reports the first resilient rung. The paper's shape: Full-Lock reaches
//! resilience with *fewer and smaller* blocks than Cross-Lock — e.g.
//! apex4 needs 2×32×32+1×8×8 PLRs vs 11 32×36 crossbars.
//!
//! ```text
//! FULLLOCK_TIMEOUT_SECS=10 cargo run --release -p fulllock-bench --bin table5_plr_sizing
//! ```

use std::time::Duration;

use fulllock_attacks::{Attack, SatAttackConfig, SimOracle};
use fulllock_bench::{Scale, Table};
use fulllock_locking::{
    CrossLock, FullLock, FullLockConfig, LockingScheme, PlrSpec, WireSelection,
};
use fulllock_netlist::{benchmarks, Netlist};

/// Attacks `locked`; returns true if it survived (TO) within `timeout`.
fn survives(
    original: &Netlist,
    locked: &fulllock_locking::LockedCircuit,
    backend: fulllock_sat::BackendSpec,
    timeout: Duration,
) -> bool {
    let oracle = SimOracle::new(original).expect("originals are acyclic");
    let report = SatAttackConfig {
        timeout: Some(timeout),
        backend,
        ..Default::default()
    }
    .run(locked, &oracle)
    .expect("matching interfaces");
    !report.outcome.is_broken()
}

fn fulllock_ladder() -> Vec<(String, Vec<usize>)> {
    vec![
        ("1x8x8".into(), vec![8]),
        ("2x8x8".into(), vec![8, 8]),
        ("1x16x16".into(), vec![16]),
        ("1x16x16+1x8x8".into(), vec![16, 8]),
        ("2x16x16".into(), vec![16, 16]),
        ("2x16x16+1x8x8".into(), vec![16, 16, 8]),
        ("1x32x32".into(), vec![32]),
        ("1x32x32+1x16x16".into(), vec![32, 16]),
        ("2x32x32".into(), vec![32, 32]),
    ]
}

fn main() {
    let scale = Scale::from_env();
    let circuits: Vec<&str> = if scale.full {
        benchmarks::suite()
            .iter()
            .map(|b| b.name)
            .filter(|&n| n != "c17")
            .collect()
    } else {
        vec!["c432", "c499", "c880", "c1355", "apex2", "i4"]
    };

    let mut table = Table::new([
        "Circuit",
        "# Gates",
        "# I/Os",
        "Full-Lock (smallest resilient)",
        "Cross-Lock (smallest resilient)",
    ]);
    for name in circuits {
        let info = benchmarks::info(name).expect("suite benchmark");
        let original = benchmarks::load(name).expect("suite benchmark");

        // Full-Lock ladder.
        let mut fl_result = "> ladder".to_string();
        for (label, sizes) in fulllock_ladder() {
            let config = FullLockConfig {
                plrs: sizes.iter().map(|&s| PlrSpec::new(s)).collect(),
                selection: WireSelection::Acyclic,
                twist_probability: 0.5,
                seed: 0x7AB5,
            };
            let locked = match FullLock::new(config).lock(&original) {
                Ok(l) => l,
                Err(_) => continue, // host too small for this rung
            };
            if survives(&original, &locked, scale.backend(), scale.timeout) {
                fl_result = label;
                break;
            }
        }

        // Cross-Lock ladder: 16×16 crossbars (scaled from the paper's
        // 32×36), increasing count.
        let mut cl_result = "> 8 bars".to_string();
        for count in 1..=8usize {
            let locked = match CrossLock::with_count(16, count, 0xC0B5).lock(&original) {
                Ok(l) => l,
                Err(_) => break, // not enough independent wires left
            };
            if survives(&original, &locked, scale.backend(), scale.timeout) {
                cl_result = format!("{count}x16x16");
                break;
            }
        }

        table.row([
            name.to_string(),
            info.gates.to_string(),
            format!("{}/{}", info.inputs, info.outputs),
            fl_result,
            cl_result,
        ]);
    }
    table.emit(&format!(
        "Table 5: smallest SAT-resilient configuration — timeout {}s (paper: 2e6 s; paper blocks: 8/16/32 PLRs vs 32x36 crossbars)",
        scale.timeout.as_secs_f64()
    ));
    println!("\npaper shape: Full-Lock reaches SAT resilience with fewer/smaller");
    println!("blocks than Cross-Lock on every circuit.");
}
