//! **Table 1 reproduction** — Tseytin transformation of the basic gate
//! library: CNF clauses, clause counts, and the clause/variable ratios the
//! paper's §3.1 argument rests on (MUX: 4 clauses / 4 vars = 1.0;
//! XOR/XNOR: 4 clauses / 3 vars = 4/3).
//!
//! ```text
//! cargo run --release -p fulllock-bench --bin table1_tseytin
//! ```

use fulllock_bench::Table;
use fulllock_netlist::{GateKind, Netlist};
use fulllock_sat::tseytin;

fn main() {
    let mut table = Table::new(["Gate", "Fan-in", "Clauses", "Vars", "Clauses/Var", "CNF"]);
    for kind in GateKind::all() {
        if kind.constant_value().is_some() {
            continue; // tie cells are an optimizer artifact, not Table 1 gates
        }
        let arity = match kind {
            GateKind::Buf | GateKind::Not => 1,
            GateKind::Mux => 3,
            _ => 2,
        };
        let mut nl = Netlist::new("g");
        let ins: Vec<_> = (0..arity).map(|i| nl.add_input(format!("i{i}"))).collect();
        let g = nl.add_gate(kind, &ins).expect("library arity");
        nl.mark_output(g);
        let enc = tseytin::encode(&nl);
        let clause_text: Vec<String> = enc
            .cnf
            .clauses()
            .iter()
            .map(|c| {
                let lits: Vec<String> = c.iter().map(|l| format!("{l}")).collect();
                format!("({})", lits.join("∨"))
            })
            .collect();
        table.row([
            kind.name().to_string(),
            arity.to_string(),
            enc.cnf.num_clauses().to_string(),
            enc.cnf.num_vars().to_string(),
            format!("{:.3}", enc.cnf.clause_to_variable_ratio()),
            clause_text.join(" ∧ "),
        ]);
    }
    table.emit("Table 1: Tseytin transformation of basic logic gates");
    println!("\npaper: only XOR/XNOR and MUX reach 4 clauses; MUX chains (no unit");
    println!("propagation foothold) are what pushes PLR CNF into the hard band.");
}
