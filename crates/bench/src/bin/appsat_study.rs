//! **§4.2 reproduction** — approximate-attack (AppSAT) behaviour.
//!
//! AppSAT settles for a key whose sampled error rate is under a threshold.
//! On point-function schemes (SARLock, Anti-SAT) almost every key is
//! almost correct, so AppSAT "breaks" them in a handful of iterations. On
//! Full-Lock the output corruption of wrong keys is high, so AppSAT
//! neither settles nor converges — the approximate key it is left with is
//! badly wrong.
//!
//! ```text
//! cargo run --release -p fulllock-bench --bin appsat_study
//! ```

use fulllock_attacks::{AppSatConfig, Attack, AttackDetails, SatAttackConfig, SimOracle};
use fulllock_bench::{Scale, Table};
use fulllock_locking::{corruption, AntiSat, FullLock, FullLockConfig, LockingScheme, SarLock};
use fulllock_netlist::benchmarks;

fn main() {
    let scale = Scale::from_env();
    let bench = if scale.full { "c880" } else { "c432" };
    let original = benchmarks::load(bench).expect("suite benchmark");

    let schemes: Vec<Box<dyn LockingScheme>> = vec![
        Box::new(SarLock::new(16, 2)),
        Box::new(AntiSat::new(16, 2)),
        Box::new(FullLock::new(FullLockConfig::single_plr(16))),
    ];

    let mut table = Table::new([
        "Scheme",
        "wrong-key corruption",
        "AppSAT iterations",
        "AppSAT settled",
        "approx-key error",
    ]);
    for scheme in schemes {
        let locked = scheme.lock(&original).expect("benchmark hosts each scheme");
        let corr =
            corruption::measure(&locked, &original, 8, 32, 3).expect("corruption measurement");
        let oracle = SimOracle::new(&original).expect("originals are acyclic");
        let report = AppSatConfig {
            base: SatAttackConfig {
                timeout: Some(scale.timeout),
                backend: scale.backend(),
                ..Default::default()
            },
            ..Default::default()
        }
        .run(&locked, &oracle)
        .expect("matching interfaces");
        let AttackDetails::AppSat(details) = &report.details else {
            panic!("appsat reports AppSat details");
        };
        table.row([
            scheme.name(),
            format!("{:.3}", corr.pattern_error_rate()),
            report.iterations.to_string(),
            if details.settled { "yes" } else { "no" }.to_string(),
            format!("{:.3}", details.measured_error),
        ]);
    }
    table.emit(&format!(
        "AppSAT vs corruption ({bench}) — settle threshold 1% error"
    ));
    println!("\npaper claim (§2, §4.2): Full-Lock's high corruption makes approximate");
    println!("attacks pointless — an approximate key is as broken as a random one —");
    println!("while SARLock/Anti-SAT fall to AppSAT immediately.");
}
