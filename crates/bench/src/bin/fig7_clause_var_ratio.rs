//! **Fig 7 reproduction** — average clause/variable ratio of the SAT
//! attack formula during deobfuscation, per locking scheme.
//!
//! The paper measures ~3.77 for Full-Lock (inside the hard 3–6 band,
//! close to the 4.3 peak), with Cross-Lock the only scheme nearby and
//! every point-function / XOR scheme far lower. Two metrics are reported:
//!
//! * **measured** — mean ratio of the growing attack formula over a fixed
//!   DIP-iteration budget (depends on how far the attack got: key
//!   variables amortize across circuit copies);
//! * **asymptotic** — the per-copy ratio with key variables fully
//!   amortized (what the measured ratio converges to as iterations grow).
//!
//! Schemes are instantiated at their Table-5-scale (SAT-resilient)
//! configurations, which is where the paper's comparison lives.
//!
//! ```text
//! cargo run --release -p fulllock-bench --bin fig7_clause_var_ratio
//! ```

use std::time::Duration;

use fulllock_attacks::{encode_locked, Attack, AttackDetails, SatAttackConfig, SimOracle};
use fulllock_bench::{Scale, Table};
use fulllock_locking::{
    AntiSat, CrossLock, FullLock, FullLockConfig, LockedCircuit, LockingScheme, LutLock, PlrSpec,
    Rll, SarLock, WireSelection,
};
use fulllock_netlist::benchmarks;
use fulllock_sat::Cnf;

/// Per-copy clause/variable ratio with the key variables amortized away
/// (the `iterations → ∞` limit of the attack-formula ratio).
fn asymptotic_ratio(locked: &LockedCircuit) -> f64 {
    let mut cnf = Cnf::new();
    let data: Vec<_> = locked.data_inputs.iter().map(|_| cnf.new_var()).collect();
    let keys: Vec<_> = locked.key_inputs.iter().map(|_| cnf.new_var()).collect();
    encode_locked(locked, &mut cnf, &data, &keys);
    cnf.num_clauses() as f64 / (cnf.num_vars() - keys.len()) as f64
}

fn main() {
    let scale = Scale::from_env();
    let bench = if scale.full { "c880" } else { "c432" };
    let original = benchmarks::load(bench).expect("suite benchmark");

    let fulllock_t5 = FullLockConfig {
        plrs: vec![PlrSpec::new(16), PlrSpec::new(16), PlrSpec::new(8)],
        selection: WireSelection::Acyclic,
        twist_probability: 0.5,
        seed: 1,
    };
    let schemes: Vec<Box<dyn LockingScheme>> = vec![
        Box::new(Rll::new(32, 1)),
        Box::new(SarLock::new(16, 1)),
        Box::new(AntiSat::new(16, 1)),
        Box::new(LutLock::new(16, 1)),
        Box::new(CrossLock::with_count(16, 2, 1)),
        Box::new(FullLock::new(fulllock_t5)),
    ];
    let iteration_budget = 16u64;

    let mut table = Table::new([
        "Scheme",
        "key bits",
        "measured c/v",
        "asymptotic c/v",
        "iterations",
    ]);
    let mut measured: Vec<(String, f64)> = Vec::new();
    for scheme in schemes {
        let locked = match scheme.lock(&original) {
            Ok(l) => l,
            Err(e) => {
                table.row([
                    scheme.name(),
                    format!("n/a ({e})"),
                    String::new(),
                    String::new(),
                    String::new(),
                ]);
                continue;
            }
        };
        let oracle = SimOracle::new(&original).expect("originals are acyclic");
        let report = SatAttackConfig {
            timeout: Some(Duration::from_secs_f64(
                scale.timeout.as_secs_f64().max(20.0),
            )),
            max_iterations: Some(iteration_budget),
            backend: scale.backend(),
            ..Default::default()
        }
        .run(&locked, &oracle)
        .expect("matching interfaces");
        let AttackDetails::Sat(details) = &report.details else {
            panic!("sat attack reports Sat details");
        };
        let asym = asymptotic_ratio(&locked);
        measured.push((scheme.name(), asym));
        table.row([
            scheme.name(),
            locked.key_len().to_string(),
            format!("{:.2}", details.mean_clause_var_ratio),
            format!("{:.2}", asym),
            report.iterations.to_string(),
        ]);
    }
    table.emit(&format!(
        "Fig 7: clause/variable ratio during deobfuscation ({bench}, {iteration_budget}-iteration budget)"
    ));
    if let Some((fl_name, fl_ratio)) = measured.last() {
        println!("\n{fl_name} asymptotic ratio {fl_ratio:.2} — paper: Full-Lock 3.77 with");
        println!("Cross-Lock the only nearby scheme; the two MUX-mesh schemes sit in the");
        println!("hard band while XOR/point-function schemes stay near the host's ~3.");
    }
}
