//! **Table 4 reproduction** — CycSAT execution time on Full-Lock with
//! different numbers and sizes of PLRs, over the ISCAS-85/MCNC suite.
//!
//! The paper inserts 1–4 PLRs of 16×16 and 1–3 of 32×32 with random
//! (cyclic-capable) insertion and attacks with CycSAT under a 2×10⁶ s
//! timeout. The scaled default inserts 1–3 PLRs of 8×8 and 1–2 of 16×16 on
//! a representative circuit subset; `FULLLOCK_FULL=1` runs all circuits
//! and adds the 16×16×3 column. The target shape: time grows steeply with
//! both PLR count and CLN size, hitting `TO` well before the paper's
//! largest configurations.
//!
//! ```text
//! FULLLOCK_TIMEOUT_SECS=20 cargo run --release -p fulllock-bench --bin table4_fulllock_cycsat
//! ```

use std::time::Duration;

use fulllock_attacks::{Attack, SatAttackConfig, SimOracle};
use fulllock_bench::{fmt_attack_time, Scale, Table};
use fulllock_locking::{FullLock, FullLockConfig, LockingScheme, PlrSpec, WireSelection};
use fulllock_netlist::benchmarks;
use fulllock_sat::cdcl::SolverStats;

fn run_config(
    name: &str,
    sizes: &[usize],
    scale: &Scale,
    timeout: Duration,
) -> (String, Option<Duration>, SolverStats) {
    let original = benchmarks::load(name).expect("suite benchmark");
    let config = FullLockConfig {
        plrs: sizes.iter().map(|&s| PlrSpec::new(s)).collect(),
        selection: WireSelection::Cyclic,
        twist_probability: 0.5,
        seed: 0xFA11,
    };
    let locked = match FullLock::new(config).lock(&original) {
        Ok(l) => l,
        Err(e) => return (format!("n/a ({e})"), None, SolverStats::default()),
    };
    let oracle = SimOracle::new(&original).expect("originals are acyclic");
    let report = SatAttackConfig {
        timeout: Some(timeout),
        backend: scale.backend(),
        ..Default::default()
    }
    .run(&locked, &oracle)
    .expect("matching interfaces");
    if report.outcome.is_broken() {
        (
            fmt_attack_time(Some(report.elapsed)),
            Some(report.elapsed),
            report.solver,
        )
    } else {
        ("TO".to_string(), None, report.solver)
    }
}

fn main() {
    let scale = Scale::from_env();
    let circuits: Vec<&str> = if scale.full {
        benchmarks::suite()
            .iter()
            .map(|b| b.name)
            .filter(|&n| n != "c17")
            .collect()
    } else {
        vec!["c432", "c499", "c880", "apex2", "i4"]
    };
    // Columns: (label, PLR size list) — scaled from the paper's
    // 16×16 ×{1..4} and 32×32 ×{1..3}.
    let mut configs: Vec<(String, Vec<usize>)> = vec![
        ("4x4 x1".into(), vec![4]),
        ("4x4 x2".into(), vec![4, 4]),
        ("8x8 x1".into(), vec![8]),
        ("8x8 x2".into(), vec![8, 8]),
        ("16x16 x1".into(), vec![16]),
        ("16x16 x2".into(), vec![16, 16]),
    ];
    if scale.full {
        configs.push(("16x16 x3".into(), vec![16, 16, 16]));
    }

    let mut headers: Vec<String> = vec!["Circuit".into()];
    headers.extend(configs.iter().map(|(l, _)| l.clone()));
    let mut table = Table::new(headers);
    let mut totals = SolverStats::default();
    for name in circuits {
        let mut cells: Vec<String> = vec![name.to_string()];
        let mut previous_to = false;
        for (_, sizes) in &configs {
            if previous_to {
                // Larger configurations of an already-TO circuit are also
                // TO (monotone in PLR count/size); skip the redundant run.
                cells.push("TO".into());
                continue;
            }
            let (cell, elapsed, solver) = run_config(name, sizes, &scale, scale.timeout);
            totals.merge(&solver);
            previous_to = elapsed.is_none() && cell == "TO";
            cells.push(cell);
        }
        table.row(cells);
    }
    table.emit(&format!(
        "Table 4: CycSAT time (s) on Full-Lock, random (cyclic) insertion — timeout {}s (paper: 2e6 s)",
        scale.timeout.as_secs_f64()
    ));
    println!(
        "\nsolver totals: {} conflicts, {} propagations at {:.2}M props/sec, mean learnt LBD {:.1}",
        totals.conflicts,
        totals.propagations,
        totals.props_per_cpu_sec() / 1e6,
        totals.mean_lbd(),
    );
    println!("\npaper shape: every circuit falls under a single small PLR, slows by");
    println!("orders of magnitude with each added/enlarged PLR, and times out for");
    println!("all circuits at 3 PLRs of the large size.");
}
