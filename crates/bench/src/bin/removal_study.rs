//! **§4.2.2 reproduction** — removal-attack resistance.
//!
//! Models the attacker's *best case*: the CLN is excised and every routed
//! wire is reconnected with the **correct** permutation. Three Full-Lock
//! configurations show the paper's argument:
//!
//! 1. CLN only, no twisting — pure interconnect locking: removal succeeds
//!    (error 0), the weakness Cross-Lock mitigates with insertion
//!    restrictions;
//! 2. CLN with twisting — the negated leading gates are uncompensated
//!    once the CLN (and its key-configurable inverters) is gone: removal
//!    fails;
//! 3. full PLR (twisting + LUTs) — removal fails for two independent
//!    reasons.
//!
//! ```text
//! cargo run --release -p fulllock-bench --bin removal_study
//! ```

use fulllock_attacks::removal::key_logic_cone;
use fulllock_attacks::{Attack, AttackDetails, Removal, SimOracle};
use fulllock_bench::{Scale, Table};
use fulllock_locking::{ClnTopology, FullLock, FullLockConfig, PlrSpec, WireSelection};
use fulllock_netlist::benchmarks;

fn main() {
    let scale = Scale::from_env();
    let bench = if scale.full { "c880" } else { "c432" };
    let original = benchmarks::load(bench).expect("suite benchmark");

    let variants: [(&str, f64, bool); 3] = [
        ("CLN only, no twisting", 0.0, false),
        ("CLN + twisting", 1.0, false),
        ("full PLR (twist + LUTs)", 0.5, true),
    ];

    let mut table = Table::new([
        "Configuration",
        "key-cone gates",
        "bypass error rate",
        "removal verdict",
    ]);
    for (label, twist, luts) in variants {
        let config = FullLockConfig {
            plrs: vec![PlrSpec {
                cln_size: 16,
                topology: ClnTopology::AlmostNonBlocking,
                with_luts: luts,
                with_inverters: true,
            }],
            selection: WireSelection::Acyclic,
            twist_probability: twist,
            seed: 0x4E40,
        };
        let (locked, trace) = FullLock::new(config)
            .lock_with_trace(&original)
            .expect("benchmark hosts a 16-input PLR");
        let cone = key_logic_cone(&locked).len();
        let oracle = SimOracle::new(&original).expect("originals are acyclic");
        let report = Removal {
            trace,
            samples: 500,
            seed: 1,
        }
        .run(&locked, &oracle)
        .expect("acyclic study");
        let AttackDetails::Removal(study) = &report.details else {
            panic!("removal reports Removal details");
        };
        table.row([
            label.to_string(),
            cone.to_string(),
            format!("{:.3}", study.error_rate),
            if study.recovered {
                "BROKEN (exact recovery)".to_string()
            } else {
                "resisted".to_string()
            },
        ]);
    }
    table.emit(&format!(
        "Removal attack with perfect routing recovery ({bench}, 16x16 PLR)"
    ));
    println!("\npaper claim (§4.2.2): because the gates leading the CLN are negated and");
    println!("only the CLN's key-configurable inverters compensate, removing the CLN —");
    println!("even with the correct permutation — does not restore the function.");
}
