//! **Table 3 reproduction** — power/area/delay and SAT resiliency of
//! blocking and almost non-blocking CLNs.
//!
//! PPA comes from the calibrated generic-32nm model in `fulllock-tech`;
//! SAT resiliency re-runs the scaled Table 2 attack for the sizes that fit
//! the budget and extrapolates the paper's verdict for the rest (marked
//! `✓*` / `✗*`).
//!
//! ```text
//! cargo run --release -p fulllock-bench --bin table3_cln_ppa
//! ```

use fulllock_attacks::{Attack, SatAttackConfig, SimOracle};
use fulllock_bench::{cln_testbed, Scale, Table};
use fulllock_locking::ClnTopology;
use fulllock_tech::Technology;

struct Row {
    label: String,
    n: usize,
    topology: ClnTopology,
    /// Paper's verdict for sizes beyond the scaled budget.
    paper_resilient: bool,
}

fn main() {
    let scale = Scale::from_env();
    let tech = Technology::generic_32nm();
    let attack_limit = if scale.full { 32 } else { 16 };

    let rows = vec![
        Row {
            label: "Shuffle (N=32)".into(),
            n: 32,
            topology: ClnTopology::Shuffle,
            paper_resilient: false,
        },
        Row {
            label: "LOG_{32,3,1}".into(),
            n: 32,
            topology: ClnTopology::AlmostNonBlocking,
            paper_resilient: false,
        },
        Row {
            label: "Shuffle (N=64)".into(),
            n: 64,
            topology: ClnTopology::Shuffle,
            paper_resilient: false,
        },
        Row {
            label: "LOG_{64,4,1}".into(),
            n: 64,
            topology: ClnTopology::AlmostNonBlocking,
            paper_resilient: true,
        },
        Row {
            label: "Shuffle (N=128)".into(),
            n: 128,
            topology: ClnTopology::Shuffle,
            paper_resilient: false,
        },
        Row {
            label: "Shuffle (N=256)".into(),
            n: 256,
            topology: ClnTopology::Shuffle,
            paper_resilient: false,
        },
        Row {
            label: "Shuffle (N=512)".into(),
            n: 512,
            topology: ClnTopology::Shuffle,
            paper_resilient: true,
        },
    ];

    let mut table = Table::new([
        "CLN",
        "Area (um^2)",
        "Power (nW)",
        "Delay (ns)",
        "SAT-resilient",
    ]);
    for row in rows {
        let (host, locked) = cln_testbed(row.n, row.topology, 1);
        // PPA of the CLN logic alone: locked minus host buffers.
        let locked_ppa = tech.netlist_ppa(&locked.netlist).expect("acyclic testbed");
        let host_ppa = tech.netlist_ppa(&host).expect("acyclic host");
        let resilient = if row.n <= attack_limit {
            let oracle = SimOracle::new(&host).expect("acyclic host");
            let report = SatAttackConfig {
                timeout: Some(scale.timeout),
                backend: scale.backend(),
                ..Default::default()
            }
            .run(&locked, &oracle)
            .expect("matching interfaces");
            if report.outcome.is_broken() {
                "✗".into()
            } else {
                "✓".into()
            }
        } else {
            // Beyond the scaled budget: report the paper's verdict, marked.
            format!("{}*", if row.paper_resilient { "✓" } else { "✗" })
        };
        table.row([
            row.label,
            format!("{:.1}", locked_ppa.area_um2 - host_ppa.area_um2),
            format!("{:.1}", locked_ppa.power_nw - host_ppa.power_nw),
            format!("{:.2}", locked_ppa.delay_ns),
            resilient,
        ]);
    }
    table.emit("Table 3: PPA and SAT resiliency of CLNs (generic 32nm-class model)");
    println!("\n'*' = verdict from the paper's full-scale run (size beyond the scaled budget).");
    println!("paper shape: LOG_{{64,4,1}} is the smallest SAT-resilient CLN and costs");
    println!("roughly a third of the smallest resilient blocking CLN (Shuffle N=512).");
}
