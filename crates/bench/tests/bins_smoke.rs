//! Smoke tests: every experiment binary must run to completion (with a
//! tiny attack budget) and print its table. This keeps deliverable (d) —
//! one regenerator per paper table/figure — continuously working.

use std::process::{Command, Output};

/// Drift guard: the built-in `builtin:paper` campaign plan must name
/// exactly the experiment binaries this crate actually builds. The bash
/// wrapper's hand-maintained bin list had no such check; now a binary
/// added to `src/bin/` without a registry entry (or vice versa) fails CI.
#[test]
fn builtin_paper_plan_matches_bin_list() {
    let bin_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src/bin");
    let mut built: Vec<String> = std::fs::read_dir(&bin_dir)
        .expect("bench src/bin exists")
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .map(|p| {
            p.file_stem()
                .and_then(|s| s.to_str())
                .expect("utf-8 bin name")
                .to_string()
        })
        .collect();
    built.sort();

    let plan = fulllock_harness::plan::CampaignPlan::builtin_paper(std::path::Path::new("bins"));
    let mut planned: Vec<String> = plan.jobs.iter().map(|j| j.id.clone()).collect();
    planned.sort();
    assert_eq!(
        planned, built,
        "builtin:paper plan and crates/bench/src/bin/ have drifted \
         (update fulllock_harness::plan::PAPER_BINS)"
    );

    // And the registry re-export the bench crate advertises is that list.
    let mut registry: Vec<String> = fulllock_bench::registry::PAPER_BINS
        .iter()
        .map(|s| s.to_string())
        .collect();
    registry.sort();
    assert_eq!(registry, built);
}

fn run(bin: &str, timeout_secs: &str) -> Output {
    Command::new(bin)
        .env("FULLLOCK_TIMEOUT_SECS", timeout_secs)
        .output()
        .expect("experiment binary runs")
}

fn assert_contains(bin: &str, timeout_secs: &str, needles: &[&str]) {
    let out = run(bin, timeout_secs);
    assert!(
        out.status.success(),
        "{bin} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in needles {
        assert!(
            text.contains(needle),
            "{bin} output missing {needle:?}:\n{text}"
        );
    }
}

#[test]
fn fig1_dpll_hardness_runs() {
    assert_contains(
        env!("CARGO_BIN_EXE_fig1_dpll_hardness"),
        "1",
        &["Fig 1", "median DPLL calls", "peak at ratio"],
    );
}

#[test]
fn table1_tseytin_runs() {
    assert_contains(
        env!("CARGO_BIN_EXE_table1_tseytin"),
        "1",
        &["Table 1", "MUX", "XNOR"],
    );
}

#[test]
fn topology_report_runs() {
    assert_contains(
        env!("CARGO_BIN_EXE_topology_report"),
        "1",
        &["Figs 2-4", "benes", "almost-non-blocking"],
    );
}

#[test]
#[ignore = "minutes-long in debug builds; run with --include-ignored"]
fn table2_cln_sat_runs_scaled_down() {
    assert_contains(
        env!("CARGO_BIN_EXE_table2_cln_sat"),
        "0.5",
        &["Table 2", "blocking CLN"],
    );
}

#[test]
#[ignore = "minutes-long in debug builds; run with --include-ignored"]
fn table3_cln_ppa_runs() {
    assert_contains(
        env!("CARGO_BIN_EXE_table3_cln_ppa"),
        "0.5",
        &["Table 3", "LOG_{64,4,1}"],
    );
}

#[test]
fn fig5_stt_lut_runs() {
    assert_contains(
        env!("CARGO_BIN_EXE_fig5_stt_lut"),
        "1",
        &["Fig 5", "LUT5", "LUT8"],
    );
}

#[test]
fn fig6_insertion_example_runs() {
    assert_contains(
        env!("CARGO_BIN_EXE_fig6_insertion_example"),
        "1",
        &["original circuit", "acyclic PLR insertion"],
    );
}

#[test]
#[ignore = "minutes-long in debug builds; run with --include-ignored"]
fn fig7_clause_var_ratio_runs() {
    assert_contains(
        env!("CARGO_BIN_EXE_fig7_clause_var_ratio"),
        "0.5",
        &["Fig 7", "full-lock"],
    );
}

#[test]
#[ignore = "minutes-long in debug builds; run with --include-ignored"]
fn removal_study_runs() {
    assert_contains(
        env!("CARGO_BIN_EXE_removal_study"),
        "0.5",
        &["Removal attack", "CLN only, no twisting"],
    );
}

#[test]
#[ignore = "minutes-long in debug builds; run with --include-ignored"]
fn appsat_study_runs() {
    assert_contains(
        env!("CARGO_BIN_EXE_appsat_study"),
        "0.5",
        &["AppSAT vs corruption", "sarlock"],
    );
}

// Table 4/5 and the ablation sweep many attack configurations; even with a
// sub-second budget they take a couple of minutes in debug builds, so they
// are exercised with the smallest meaningful budget and marked ignored for
// quick local runs (CI and `--include-ignored` cover them).
#[test]
#[ignore = "minutes-long in debug builds; run with --include-ignored"]
fn table4_fulllock_cycsat_runs() {
    assert_contains(
        env!("CARGO_BIN_EXE_table4_fulllock_cycsat"),
        "0.3",
        &["Table 4", "c432"],
    );
}

#[test]
#[ignore = "minutes-long in debug builds; run with --include-ignored"]
fn table5_plr_sizing_runs() {
    assert_contains(
        env!("CARGO_BIN_EXE_table5_plr_sizing"),
        "0.3",
        &["Table 5", "Cross-Lock"],
    );
}

#[test]
#[ignore = "minutes-long in debug builds; run with --include-ignored"]
fn ablation_study_runs() {
    assert_contains(
        env!("CARGO_BIN_EXE_ablation_study"),
        "0.3",
        &["Ablation", "bare blocking CLN"],
    );
}
