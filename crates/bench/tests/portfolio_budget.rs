//! Graceful-degradation guarantee: a portfolio race on a hard Table-2
//! CLN miter must give up with `Unknown` close to its wall-clock budget
//! instead of overshooting, and must report partial solver work.

use std::time::{Duration, Instant};

use fulllock_bench::miter_workload;
use fulllock_sat::cdcl::{SolveLimits, SolveResult};
use fulllock_sat::{PortfolioConfig, PortfolioSolver};

#[test]
fn portfolio_times_out_within_twice_the_budget() {
    // The BENCH_cdcl workload: a 16-input almost-non-blocking CLN miter
    // that takes a sequential solver seconds to refute — far beyond the
    // budget below, so the race must end by deadline.
    let cnf = miter_workload(16, 24, 0xBEEF);
    let budget = Duration::from_millis(400);

    let mut solver = PortfolioSolver::from_cnf(&cnf, PortfolioConfig::with_threads(4));
    let start = Instant::now();
    let result = solver.solve_limited(&[], SolveLimits::builder().timeout(budget).build());
    let elapsed = start.elapsed();

    assert_eq!(result, SolveResult::Unknown, "budget must expire first");
    assert!(
        elapsed < 2 * budget,
        "deadline overshoot: {elapsed:?} for a {budget:?} budget"
    );
    // Partial statistics survive the timeout: the workers did real work
    // and their merged counters are visible.
    let stats = solver.stats();
    assert!(stats.decisions > 0, "no work recorded before the deadline");
    assert!(solver.winner().is_none(), "nobody may claim a verdict");
}

#[test]
fn portfolio_finishes_hard_unsat_miter_with_a_generous_budget() {
    // Same workload, real budget: all four workers race to the refutation
    // and agree on UNSAT (exercises cancellation of the losers too).
    let cnf = miter_workload(16, 12, 0x2);
    let mut solver = PortfolioSolver::from_cnf(&cnf, PortfolioConfig::with_threads(4));
    let result = solver.solve_limited(
        &[],
        SolveLimits::builder()
            .timeout(Duration::from_secs(120))
            .build(),
    );
    assert_eq!(result, SolveResult::Unsat);
    assert!(solver.winner().is_some());
}
