//! Ad-hoc probe: times the SAT attack under each encoding/inprocessing
//! combination on two cln32 workloads (bare wires vs random host).

use std::time::Instant;

use fulllock_attacks::{EncodeStyle, SatAttack, SatAttackConfig, SimOracle};
use fulllock_bench::cln_testbed;
use fulllock_locking::{
    ClnTopology, FullLock, FullLockConfig, LockingScheme, PlrSpec, WireSelection,
};
use fulllock_netlist::random::{generate, RandomCircuitConfig};
use fulllock_netlist::Netlist;
use fulllock_sat::cdcl::SolverConfig;
use fulllock_sat::BackendSpec;

fn config(cone: bool, style: EncodeStyle, inprocess: bool, budget: u64) -> SatAttackConfig {
    SatAttackConfig {
        max_iterations: Some(budget),
        backend: BackendSpec::Configured(SolverConfig {
            inprocess,
            ..SolverConfig::default()
        }),
        cone_reduce: cone,
        encode_style: style,
        ..SatAttackConfig::default()
    }
}

fn run(locked: &fulllock_locking::LockedCircuit, host: &Netlist, cfg: SatAttackConfig) {
    let oracle = SimOracle::new(host).expect("acyclic host");
    let mut engine = SatAttack::new(locked, &oracle, cfg).expect("interfaces match");
    let start = Instant::now();
    let report = engine.run().expect("complete models");
    let secs = start.elapsed().as_secs_f64();
    println!(
        "    iters={} secs={:.3} s/iter={:.4} clauses={} outcome={:?}",
        report.iterations,
        secs,
        secs / report.iterations.max(1) as f64,
        report.formula.1,
        report.outcome,
    );
}

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16);
    let gates: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3000);
    let skip_bare = std::env::args().any(|a| a == "--skip-bare");

    let combos = [
        (
            "legacy  (cone off, generic, inproc off)",
            false,
            EncodeStyle::Generic,
            false,
        ),
        (
            "cone    (cone on,  generic, inproc off)",
            true,
            EncodeStyle::Generic,
            false,
        ),
        (
            "struct  (cone on,  struct,  inproc off)",
            true,
            EncodeStyle::Structured,
            false,
        ),
        (
            "current (cone on,  struct,  inproc on )",
            true,
            EncodeStyle::Structured,
            true,
        ),
    ];

    if !skip_bare {
        println!("== bare-wire cln32 testbed ==");
        let (host, locked) = cln_testbed(32, ClnTopology::AlmostNonBlocking, 0xD1B);
        for (name, cone, style, inproc) in combos {
            println!("  {name}");
            run(&locked, &host, config(cone, style, inproc, budget));
        }
    }

    println!("== random host (64 in / 32 out / {gates} gates) + cln32 ==");
    let host = generate(RandomCircuitConfig {
        inputs: 64,
        outputs: 32,
        gates,
        max_fanin: 3,
        seed: 0xD1B,
    })
    .expect("valid config");
    let lock = FullLock::new(FullLockConfig {
        plrs: vec![PlrSpec {
            cln_size: 32,
            topology: ClnTopology::AlmostNonBlocking,
            with_luts: false,
            with_inverters: true,
        }],
        selection: WireSelection::Acyclic,
        twist_probability: 0.0,
        seed: 0xD1B,
    });
    let locked = lock.lock(&host).expect("host accommodates cln32");
    for (name, cone, style, inproc) in combos {
        println!("  {name}");
        run(&locked, &host, config(cone, style, inproc, budget));
    }
}
