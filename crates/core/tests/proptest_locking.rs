//! Property-based tests of the locking layer: every scheme must be
//! functionality-preserving under its correct key on arbitrary hosts, and
//! the CLN routing algebra must stay consistent with its netlist
//! realization.

use fulllock_locking::{
    AntiSat, ClnStructure, ClnTopology, CrossLock, FullLock, FullLockConfig, LockingScheme,
    LutLock, PlrSpec, Rll, SarLock, WireSelection,
};
use fulllock_netlist::random::{generate, RandomCircuitConfig};
use fulllock_netlist::{Netlist, Simulator};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn host(seed: u64) -> Netlist {
    generate(RandomCircuitConfig {
        inputs: 14,
        outputs: 6,
        gates: 160,
        max_fanin: 3,
        seed,
    })
    .expect("valid config")
}

fn check_roundtrip(
    original: &Netlist,
    scheme: &dyn LockingScheme,
    samples: usize,
) -> Result<(), TestCaseError> {
    let Ok(locked) = scheme.lock(original) else {
        return Ok(()); // host too small for this configuration: documented error
    };
    prop_assert_eq!(locked.key_len(), locked.correct_key.len());
    let sim = Simulator::new(original).expect("acyclic host");
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE);
    for _ in 0..samples {
        let x: Vec<bool> = (0..original.inputs().len())
            .map(|_| rng.gen_bool(0.5))
            .collect();
        prop_assert_eq!(
            locked.eval(&x, &locked.correct_key).expect("interface"),
            sim.run(&x).expect("sized")
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn rll_round_trips(host_seed in any::<u64>(), lock_seed in any::<u64>(), bits in 1usize..24) {
        check_roundtrip(&host(host_seed), &Rll::new(bits, lock_seed), 8)?;
    }

    #[test]
    fn sarlock_round_trips(host_seed in any::<u64>(), lock_seed in any::<u64>(), bits in 1usize..14) {
        check_roundtrip(&host(host_seed), &SarLock::new(bits, lock_seed), 8)?;
    }

    #[test]
    fn antisat_round_trips(host_seed in any::<u64>(), lock_seed in any::<u64>(), bits in 1usize..14) {
        check_roundtrip(&host(host_seed), &AntiSat::new(bits, lock_seed), 8)?;
    }

    #[test]
    fn lutlock_round_trips(host_seed in any::<u64>(), lock_seed in any::<u64>(), luts in 1usize..20) {
        check_roundtrip(&host(host_seed), &LutLock::new(luts, lock_seed), 8)?;
    }

    #[test]
    fn crosslock_round_trips(host_seed in any::<u64>(), lock_seed in any::<u64>(), size_pow in 2u32..4) {
        check_roundtrip(&host(host_seed), &CrossLock::new(1 << size_pow, lock_seed), 8)?;
    }

    #[test]
    fn fulllock_round_trips_across_feature_combinations(
        host_seed in any::<u64>(),
        lock_seed in any::<u64>(),
        with_luts in any::<bool>(),
        with_inverters in any::<bool>(),
        twist in 0.0f64..1.0,
        topology_pick in 0usize..4,
    ) {
        let topology = [
            ClnTopology::Shuffle,
            ClnTopology::Banyan,
            ClnTopology::AlmostNonBlocking,
            ClnTopology::Benes,
        ][topology_pick];
        let config = FullLockConfig {
            plrs: vec![PlrSpec { cln_size: 8, topology, with_luts, with_inverters }],
            selection: WireSelection::Acyclic,
            twist_probability: twist,
            seed: lock_seed,
        };
        check_roundtrip(&host(host_seed), &FullLock::new(config), 8)?;
    }

    /// Routing the structural model with random switch states always
    /// yields a permutation, and the parity tracker is consistent with
    /// flipping inverter bits along final positions.
    #[test]
    fn cln_routing_is_permutation(seed in any::<u64>(), topology_pick in 0usize..4, size_pow in 2u32..5) {
        let topology = [
            ClnTopology::Shuffle,
            ClnTopology::Banyan,
            ClnTopology::AlmostNonBlocking,
            ClnTopology::Benes,
        ][topology_pick];
        let n = 1usize << size_pow;
        let structure = ClnStructure::new(topology, n).expect("valid size");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let states = structure.random_states(&mut rng);
        let perm = structure.route(&states);
        let mut seen = vec![false; n];
        for &o in &perm {
            prop_assert!(!seen[o]);
            seen[o] = true;
        }
        // Flipping one final-layer inverter flips exactly that token's
        // parity.
        let mut inv = vec![false; structure.stages() * n];
        let token = (seed as usize) % n;
        inv[(structure.stages() - 1) * n + structure.final_position(&perm, token)] = true;
        let (perm2, parity) = structure.route_with_parity(&states, &inv);
        prop_assert_eq!(perm2, perm);
        for (t, &p) in parity.iter().enumerate() {
            prop_assert_eq!(p, t == token);
        }
    }

    /// Resynthesizing a locked circuit (optimizer pass) preserves its
    /// behaviour under the correct key.
    #[test]
    fn optimizer_preserves_locked_behaviour(host_seed in any::<u64>(), lock_seed in any::<u64>()) {
        let original = host(host_seed);
        let config = FullLockConfig {
            plrs: vec![PlrSpec::new(8)],
            selection: WireSelection::Acyclic,
            twist_probability: 0.5,
            seed: lock_seed,
        };
        let Ok(mut locked) = FullLock::new(config).lock(&original) else { return Ok(()) };
        let correct = locked.correct_key.clone();
        let before = locked.netlist.stats().gates;
        let stats = locked.optimize().expect("acyclic lock");
        prop_assert_eq!(stats.gates_before, before);
        prop_assert!(stats.gates_after <= before);
        let sim = Simulator::new(&original).expect("acyclic host");
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..8 {
            let x: Vec<bool> = (0..original.inputs().len()).map(|_| rng.gen_bool(0.5)).collect();
            prop_assert_eq!(
                locked.eval(&x, &correct).expect("interface"),
                sim.run(&x).expect("sized")
            );
        }
    }

    /// Locked circuits never lose or reorder the original data interface.
    #[test]
    fn data_interface_is_preserved(host_seed in any::<u64>()) {
        let original = host(host_seed);
        let locked = FullLock::new(FullLockConfig::single_plr(8))
            .lock(&original)
            .expect("160-gate hosts fit an 8-input PLR");
        prop_assert_eq!(locked.data_inputs.len(), original.inputs().len());
        for (slot, &d) in locked.data_inputs.iter().enumerate() {
            prop_assert_eq!(
                locked.netlist.signal_name(d),
                original.signal_name(original.inputs()[slot])
            );
        }
    }
}
