//! Wire selection for PLR insertion (§3.3 of the paper).
//!
//! Full-Lock has no *security* restriction on wire choice (unlike
//! Cross-Lock's cone-based strategies), so selection is random. The only
//! structural concern is cyclicity: routing a group of wires through one
//! CLN connects all of them combinationally, so any path between two
//! selected wires closes a loop through the CLN. [`WireSelection::Acyclic`]
//! picks mutually-unreachable wires (Fig 6(b)); [`WireSelection::Cyclic`]
//! picks freely and may create cycles on purpose (Fig 6(c)), which is the
//! mode Table 4 attacks with CycSAT.

use std::collections::HashSet;

use fulllock_netlist::{Netlist, SignalId};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::{LockError, Result};

/// How PLR wires are selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WireSelection {
    /// Mutually-unreachable gates: insertion never creates a cycle.
    #[default]
    Acyclic,
    /// Unrestricted random gates: insertion may create combinational
    /// cycles (attacked with CycSAT rather than plain SAT).
    Cyclic,
}

/// Selects `count` distinct gate output wires from the first
/// `candidate_limit` nodes (the original circuit, excluding logic added by
/// earlier PLRs), avoiding `exclude`.
///
/// # Example
///
/// ```
/// use std::collections::HashSet;
/// use fulllock_locking::select::{select_wires, WireSelection};
/// use fulllock_netlist::benchmarks;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), fulllock_locking::LockError> {
/// let nl = benchmarks::load("c432").expect("built-in benchmark");
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let wires = select_wires(&nl, 8, WireSelection::Acyclic, nl.len(), &HashSet::new(), &mut rng)?;
/// assert_eq!(wires.len(), 8);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`LockError::HostTooSmall`] if fewer than `count` candidates
/// exist, and [`LockError::SelectionFailed`] if acyclic selection cannot
/// find a mutually-unreachable set (the host is too entangled for this CLN
/// size).
pub fn select_wires(
    netlist: &Netlist,
    count: usize,
    mode: WireSelection,
    candidate_limit: usize,
    exclude: &HashSet<SignalId>,
    rng: &mut impl Rng,
) -> Result<Vec<SignalId>> {
    // Only *live* wires (reachable from a primary output) are lockable:
    // routing a dangling wire through a CLN would protect nothing, and the
    // block guarding it would itself be dead logic.
    let live = live_signals(netlist);
    let all_fanouts = netlist.fanouts();
    let mut candidates: Vec<SignalId> = netlist
        .gates()
        .filter(|s| {
            s.index() < candidate_limit
                && !exclude.contains(s)
                && live[s.index()]
                && (!all_fanouts[s.index()].is_empty() || netlist.outputs().contains(s))
        })
        .collect();
    if candidates.len() < count {
        return Err(LockError::HostTooSmall {
            needed: count,
            available: candidates.len(),
        });
    }
    candidates.shuffle(rng);
    match mode {
        WireSelection::Cyclic => Ok(candidates.into_iter().take(count).collect()),
        WireSelection::Acyclic => {
            // The greedy sweep is order-sensitive; retry with fresh
            // shuffles before declaring the host too entangled.
            let fanouts = netlist.fanouts();
            let mut best = 0usize;
            for _attempt in 0..24 {
                let mut forbidden: HashSet<SignalId> = HashSet::new();
                let mut chosen = Vec::with_capacity(count);
                for &cand in &candidates {
                    if chosen.len() == count {
                        break;
                    }
                    if forbidden.contains(&cand) {
                        continue;
                    }
                    chosen.push(cand);
                    forbidden.insert(cand);
                    // Everything reachable from `cand` (descendants) and
                    // everything reaching it (ancestors) would close a loop
                    // through the shared CLN.
                    mark_reachable(&mut forbidden, cand, |s| fanouts[s.index()].iter().copied());
                    mark_reachable(&mut forbidden, cand, |s| {
                        netlist.node(s).fanins().iter().copied()
                    });
                }
                if chosen.len() == count {
                    return Ok(chosen);
                }
                best = best.max(chosen.len());
                candidates.shuffle(rng);
            }
            Err(LockError::SelectionFailed(format!(
                "only {best} of {count} mutually-independent wires found"
            )))
        }
    }
}

/// Which signals are reachable (through fan-ins) from a primary output.
pub(crate) fn live_signals(netlist: &Netlist) -> Vec<bool> {
    let mut live = vec![false; netlist.len()];
    let mut stack: Vec<SignalId> = Vec::new();
    for &o in netlist.outputs() {
        if !live[o.index()] {
            live[o.index()] = true;
            stack.push(o);
        }
    }
    while let Some(s) = stack.pop() {
        for &f in netlist.node(s).fanins() {
            if !live[f.index()] {
                live[f.index()] = true;
                stack.push(f);
            }
        }
    }
    live
}

fn mark_reachable<I>(
    forbidden: &mut HashSet<SignalId>,
    from: SignalId,
    neighbors: impl Fn(SignalId) -> I,
) where
    I: Iterator<Item = SignalId>,
{
    let mut stack = vec![from];
    let mut visited: HashSet<SignalId> = HashSet::new();
    visited.insert(from);
    while let Some(s) = stack.pop() {
        for n in neighbors(s) {
            if visited.insert(n) {
                forbidden.insert(n);
                stack.push(n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fulllock_netlist::random::{generate, RandomCircuitConfig};
    use fulllock_netlist::GateKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn host() -> Netlist {
        generate(RandomCircuitConfig {
            inputs: 16,
            outputs: 8,
            gates: 150,
            max_fanin: 3,
            seed: 2,
        })
        .unwrap()
    }

    #[test]
    fn cyclic_selection_returns_distinct_gates() {
        let nl = host();
        let mut rng = StdRng::seed_from_u64(0);
        let picked = select_wires(
            &nl,
            8,
            WireSelection::Cyclic,
            nl.len(),
            &HashSet::new(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(picked.len(), 8);
        let set: HashSet<_> = picked.iter().collect();
        assert_eq!(set.len(), 8);
        for &s in &picked {
            assert!(!nl.node(s).is_input());
        }
    }

    #[test]
    fn acyclic_selection_is_mutually_unreachable() {
        let nl = host();
        let mut rng = StdRng::seed_from_u64(3);
        let picked = select_wires(
            &nl,
            4,
            WireSelection::Acyclic,
            nl.len(),
            &HashSet::new(),
            &mut rng,
        )
        .unwrap();
        // Verify pairwise unreachability with a fresh BFS.
        let fanouts = nl.fanouts();
        for &a in &picked {
            let mut reach: HashSet<SignalId> = HashSet::new();
            mark_reachable(&mut reach, a, |s| fanouts[s.index()].iter().copied());
            for &b in &picked {
                if a != b {
                    assert!(!reach.contains(&b), "{a} reaches {b}");
                }
            }
        }
    }

    #[test]
    fn excluded_wires_are_skipped() {
        let nl = host();
        let mut rng = StdRng::seed_from_u64(1);
        let first = select_wires(
            &nl,
            4,
            WireSelection::Cyclic,
            nl.len(),
            &HashSet::new(),
            &mut rng,
        )
        .unwrap();
        let exclude: HashSet<_> = first.iter().copied().collect();
        let second =
            select_wires(&nl, 4, WireSelection::Cyclic, nl.len(), &exclude, &mut rng).unwrap();
        for s in second {
            assert!(!exclude.contains(&s));
        }
    }

    #[test]
    fn too_small_host_errors() {
        let mut nl = Netlist::new("tiny");
        let a = nl.add_input("a");
        let g = nl.add_gate(GateKind::Not, &[a]).unwrap();
        nl.mark_output(g);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            select_wires(
                &nl,
                4,
                WireSelection::Cyclic,
                nl.len(),
                &HashSet::new(),
                &mut rng
            ),
            Err(LockError::HostTooSmall {
                needed: 4,
                available: 1
            })
        ));
    }

    #[test]
    fn chain_cannot_supply_independent_wires() {
        // A pure chain has total order: only 1 mutually-independent wire.
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_input("a");
        for _ in 0..20 {
            prev = nl.add_gate(GateKind::Not, &[prev]).unwrap();
        }
        nl.mark_output(prev);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            select_wires(
                &nl,
                2,
                WireSelection::Acyclic,
                nl.len(),
                &HashSet::new(),
                &mut rng
            ),
            Err(LockError::SelectionFailed(_))
        ));
    }

    #[test]
    fn candidate_limit_restricts_choices() {
        let nl = host();
        let mut rng = StdRng::seed_from_u64(4);
        let limit = nl.inputs().len() + 30;
        let picked = select_wires(
            &nl,
            4,
            WireSelection::Cyclic,
            limit,
            &HashSet::new(),
            &mut rng,
        )
        .unwrap();
        for s in picked {
            assert!(s.index() < limit);
        }
    }
}
