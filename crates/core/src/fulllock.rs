//! The Full-Lock scheme: PLR insertion (§3.2–3.3 of the paper).
//!
//! Locking a circuit with one PLR of size `N`:
//!
//! 1. select `N` gate output wires ([`WireSelection`]);
//! 2. *twist*: negate a random subset of the selected (leading) gates
//!    (`OR → NOR`, `XOR → XNOR`, …);
//! 3. route the `N` wires through a key-configured CLN whose correct key
//!    realizes a randomly chosen permutation *and* compensates the
//!    negations through the key-configurable inverters;
//! 4. reconnect each wire's original fan-outs to the CLN output carrying
//!    it;
//! 5. replace the fan-out gates (the gates "proceeding" the wires) with
//!    key-programmable LUTs whose correct key is the original truth table.
//!
//! The composition is a *fully Programmable Logic and Routing block*: even
//! an attacker who removes the CLN and recovers the LUT functions is left
//! with negated leading gates and an unknown permutation.

use std::collections::HashSet;

use fulllock_netlist::{Netlist, SignalId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cln::{ClnInstance, ClnStructure, ClnTopology};
use crate::lut::{LutInstance, MAX_LUT_INPUTS};
use crate::schemes::LockingScheme;
use crate::select::{select_wires, WireSelection};
use crate::{Key, LockError, LockedCircuit, Result};

/// Specification of one PLR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlrSpec {
    /// CLN size `N` (power of two ≥ 4). The paper's Table 4 uses 8×8,
    /// 16×16, and 32×32.
    pub cln_size: usize,
    /// CLN topology; the paper's Full-Lock uses the almost non-blocking
    /// `LOG_{N, log2(N)-2, 1}`.
    pub topology: ClnTopology,
    /// Whether to replace the wires' fan-out gates with key-programmable
    /// LUTs (the "logic" half of the PLR).
    pub with_luts: bool,
    /// Whether the CLN carries key-configurable inverters. Disabling them
    /// (an ablation) also disables twisting — there is nothing left to
    /// compensate a negated leading gate.
    pub with_inverters: bool,
}

impl PlrSpec {
    /// A PLR with the paper's defaults: almost non-blocking CLN +
    /// inverters + LUTs.
    pub fn new(cln_size: usize) -> PlrSpec {
        PlrSpec {
            cln_size,
            topology: ClnTopology::AlmostNonBlocking,
            with_luts: true,
            with_inverters: true,
        }
    }

    /// Same size but with a blocking shuffle CLN (Table 2's baseline).
    pub fn blocking(cln_size: usize) -> PlrSpec {
        PlrSpec {
            topology: ClnTopology::Shuffle,
            ..PlrSpec::new(cln_size)
        }
    }
}

/// Configuration of the Full-Lock scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct FullLockConfig {
    /// The PLRs to insert, in order.
    pub plrs: Vec<PlrSpec>,
    /// Wire-selection policy (acyclic or cyclic insertion).
    pub selection: WireSelection,
    /// Probability of negating each selected leading gate (twisting).
    pub twist_probability: f64,
    /// RNG seed: locking is fully deterministic in (netlist, config).
    pub seed: u64,
}

impl FullLockConfig {
    /// One PLR of the given size with paper defaults (almost non-blocking
    /// CLN, LUTs, acyclic insertion, twist probability 0.5).
    pub fn single_plr(cln_size: usize) -> FullLockConfig {
        FullLockConfig {
            plrs: vec![PlrSpec::new(cln_size)],
            selection: WireSelection::Acyclic,
            twist_probability: 0.5,
            seed: 0,
        }
    }
}

/// Insertion metadata of one PLR, for white-box experiments (removal
/// attacks, ablations). An actual attacker never has this.
#[derive(Debug, Clone)]
pub struct PlrTrace {
    /// The selected (leading) gate wires, in CLN input order.
    pub sources: Vec<SignalId>,
    /// The CLN output signals, in output order.
    pub cln_outputs: Vec<SignalId>,
    /// `permutation[i]` = CLN output position carrying input `i`.
    pub permutation: Vec<usize>,
    /// Which leading gates were negated by twisting.
    pub negated: Vec<bool>,
    /// Outputs of the LUTs that replaced the wires' fan-out gates.
    pub lut_outputs: Vec<SignalId>,
}

/// Full insertion metadata for a [`FullLock::lock_with_trace`] run.
#[derive(Debug, Clone, Default)]
pub struct FullLockTrace {
    /// One trace per inserted PLR, in insertion order.
    pub plrs: Vec<PlrTrace>,
}

/// The Full-Lock locking scheme. See the module docs above.
///
/// # Example
///
/// ```
/// use fulllock_locking::{FullLock, FullLockConfig, LockingScheme};
/// use fulllock_netlist::random::{generate, RandomCircuitConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let host = generate(RandomCircuitConfig { gates: 120, ..Default::default() })?;
/// let scheme = FullLock::new(FullLockConfig::single_plr(8));
/// let locked = scheme.lock(&host)?;
///
/// // The correct key restores the original function.
/// let sim = fulllock_netlist::Simulator::new(&host)?;
/// let x = vec![true; host.inputs().len()];
/// assert_eq!(locked.eval(&x, &locked.correct_key)?, sim.run(&x)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FullLock {
    config: FullLockConfig,
}

impl FullLock {
    /// Creates the scheme with the given configuration.
    pub fn new(config: FullLockConfig) -> FullLock {
        FullLock { config }
    }

    /// The configuration.
    pub fn config(&self) -> &FullLockConfig {
        &self.config
    }

    /// Locks `original` and also returns the insertion metadata (wire
    /// choices, routed permutation, negations) used by white-box
    /// experiments such as the removal-attack study.
    ///
    /// # Errors
    ///
    /// Same as [`LockingScheme::lock`].
    pub fn lock_with_trace(&self, original: &Netlist) -> Result<(LockedCircuit, FullLockTrace)> {
        if self.config.plrs.is_empty() {
            return Err(LockError::BadConfig("at least one PLR required".into()));
        }
        if !(0.0..=1.0).contains(&self.config.twist_probability) {
            return Err(LockError::BadConfig(
                "twist_probability must be within [0, 1]".into(),
            ));
        }
        let mut nl = original.clone();
        let nonce = crate::schemes::key_name_nonce(&nl);
        let data_inputs: Vec<SignalId> = nl.inputs().to_vec();
        let candidate_limit = nl.len();
        // Liveness in the host circuit: dead sinks must not be LUT-replaced
        // (their LUT would be dead logic and vanish at the final sweep).
        let live = crate::select::live_signals(&nl);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut key_inputs: Vec<SignalId> = Vec::new();
        let mut key_bits: Vec<bool> = Vec::new();
        let mut used_sources: HashSet<SignalId> = HashSet::new();
        let mut lut_replaced: HashSet<SignalId> = HashSet::new();
        let mut trace = FullLockTrace::default();

        for (plr_index, spec) in self.config.plrs.iter().enumerate() {
            let structure = ClnStructure::new(spec.topology, spec.cln_size)?;
            let n = structure.n();
            let sources = select_wires(
                &nl,
                n,
                self.config.selection,
                candidate_limit,
                &used_sources,
                &mut rng,
            )?;
            used_sources.extend(sources.iter().copied());

            // Twist: negate leading gates where the library has the
            // complement cell. Without inverters there is no compensation
            // channel, so twisting is disabled for that ablation.
            let mut negate = vec![false; n];
            if spec.with_inverters {
                for (i, &s) in sources.iter().enumerate() {
                    let kind = nl.node(s).gate_kind().expect("sources are gates");
                    if let Some(inverted) = kind.invert() {
                        if rng.gen_bool(self.config.twist_probability) {
                            nl.set_gate_kind(s, inverted)?;
                            negate[i] = true;
                        }
                    }
                }
            }

            // Record original fan-outs before the CLN adds its own readers.
            let fanouts = nl.fanouts();
            let mut sinks: Vec<SignalId> = Vec::new();
            for &s in &sources {
                for &g in &fanouts[s.index()] {
                    if !sinks.contains(&g) {
                        sinks.push(g);
                    }
                }
            }

            let inst = ClnInstance::instantiate_with_options(
                &mut nl,
                &structure,
                &sources,
                &format!("keyinput_n{nonce}_plr{plr_index}_cln"),
                spec.with_inverters,
            )?;

            // Choose a random valid routing configuration, then patch the
            // final inverter layer so each path's parity compensates its
            // leading gate's negation.
            let states = structure.random_states(&mut rng);
            let mut inverter_bits: Vec<bool> = (0..structure.stages() * n)
                .map(|_| spec.with_inverters && rng.gen_bool(0.5))
                .collect();
            let (perm, parity) = structure.route_with_parity(&states, &inverter_bits);
            for token in 0..n {
                if parity[token] != negate[token] {
                    let pos = structure.final_position(&perm, token);
                    let idx = (structure.stages() - 1) * n + pos;
                    inverter_bits[idx] = !inverter_bits[idx];
                }
            }
            debug_assert_eq!(
                structure.route_with_parity(&states, &inverter_bits),
                (perm.clone(), negate.clone()),
                "inverter fix-up restores polarity"
            );
            key_inputs.extend(inst.key_inputs.iter().copied());
            key_bits.extend(inst.key_bits_for(&states, &inverter_bits));

            // Splice: each wire's consumers now read the CLN output that
            // carries it.
            let cln_gates: Vec<SignalId> = inst.gates.clone();
            for (token, &s) in sources.iter().enumerate() {
                nl.redirect_fanouts(s, inst.outputs[perm[token]], &cln_gates)?;
            }

            // LUT replacement of the proceeding gates.
            let mut lut_outputs: Vec<SignalId> = Vec::new();
            if spec.with_luts {
                for (g_index, &g) in sinks.iter().enumerate() {
                    if g.index() >= candidate_limit
                        || !live[g.index()]
                        || used_sources.contains(&g)
                        || lut_replaced.contains(&g)
                    {
                        continue;
                    }
                    let node = nl.node(g);
                    let Some(kind) = node.gate_kind() else {
                        continue;
                    };
                    let arity = node.fanins().len();
                    if arity == 0 || arity > MAX_LUT_INPUTS {
                        continue;
                    }
                    let lut_inputs: Vec<SignalId> = node.fanins().to_vec();
                    let lut = LutInstance::instantiate(
                        &mut nl,
                        &lut_inputs,
                        &format!("keyinput_n{nonce}_plr{plr_index}_lut{g_index}_"),
                    )?;
                    nl.redirect_fanouts(g, lut.output, &lut.gates)?;
                    key_inputs.extend(lut.key_inputs.iter().copied());
                    key_bits.extend(lut.key_for_gate(kind));
                    lut_replaced.insert(g);
                    lut_outputs.push(lut.output);
                }
            }

            trace.plrs.push(PlrTrace {
                sources,
                cln_outputs: inst.outputs.clone(),
                permutation: perm,
                negated: negate,
                lut_outputs,
            });
        }

        let mut locked = LockedCircuit {
            netlist: nl,
            data_inputs,
            key_inputs,
            correct_key: Key::from_bits(key_bits),
        };
        locked
            .netlist
            .set_name(format!("{}_fulllock", original.name()));
        let remap = locked.sweep_with_remap();
        let remap_sig = |s: SignalId| remap[s.index()].expect("traced signals stay live");
        for plr in &mut trace.plrs {
            plr.sources = plr.sources.iter().map(|&s| remap_sig(s)).collect();
            plr.cln_outputs = plr.cln_outputs.iter().map(|&s| remap_sig(s)).collect();
            plr.lut_outputs = plr.lut_outputs.iter().map(|&s| remap_sig(s)).collect();
        }
        locked.netlist.check()?;
        Ok((locked, trace))
    }
}

impl LockingScheme for FullLock {
    fn name(&self) -> String {
        let sizes: Vec<String> = self
            .config
            .plrs
            .iter()
            .map(|p| format!("{0}x{0}", p.cln_size))
            .collect();
        format!("full-lock[{}]", sizes.join("+"))
    }

    fn lock(&self, original: &Netlist) -> Result<LockedCircuit> {
        Ok(self.lock_with_trace(original)?.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fulllock_netlist::random::{generate, RandomCircuitConfig};
    use fulllock_netlist::{topo, Simulator};

    fn host(gates: usize, seed: u64) -> Netlist {
        generate(RandomCircuitConfig {
            inputs: 16,
            outputs: 8,
            gates,
            max_fanin: 3,
            seed,
        })
        .unwrap()
    }

    fn check_equivalence(original: &Netlist, locked: &LockedCircuit, samples: usize) {
        let sim = Simulator::new(original).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..samples {
            let x: Vec<bool> = (0..original.inputs().len())
                .map(|_| rng.gen_bool(0.5))
                .collect();
            let want = sim.run(&x).unwrap();
            let got = locked.eval(&x, &locked.correct_key).unwrap();
            assert_eq!(got, want, "correct key must restore functionality");
        }
    }

    #[test]
    fn correct_key_restores_function_acyclic() {
        let original = host(150, 1);
        let locked = FullLock::new(FullLockConfig::single_plr(8))
            .lock(&original)
            .unwrap();
        assert!(!topo::is_cyclic(&locked.netlist));
        check_equivalence(&original, &locked, 50);
    }

    #[test]
    fn correct_key_restores_function_all_topologies() {
        let original = host(150, 2);
        for topology in [
            ClnTopology::Shuffle,
            ClnTopology::Banyan,
            ClnTopology::AlmostNonBlocking,
            ClnTopology::Benes,
        ] {
            let config = FullLockConfig {
                plrs: vec![PlrSpec {
                    cln_size: 8,
                    topology,
                    with_luts: true,
                    with_inverters: true,
                }],
                selection: WireSelection::Acyclic,
                twist_probability: 0.5,
                seed: 5,
            };
            let locked = FullLock::new(config).lock(&original).unwrap();
            check_equivalence(&original, &locked, 20);
        }
    }

    #[test]
    fn correct_key_restores_function_without_luts() {
        let original = host(150, 3);
        let config = FullLockConfig {
            plrs: vec![PlrSpec {
                cln_size: 8,
                topology: ClnTopology::AlmostNonBlocking,
                with_luts: false,
                with_inverters: true,
            }],
            selection: WireSelection::Acyclic,
            twist_probability: 1.0,
            seed: 7,
        };
        let locked = FullLock::new(config).lock(&original).unwrap();
        check_equivalence(&original, &locked, 50);
    }

    #[test]
    fn cyclic_insertion_settles_with_correct_key() {
        let original = host(200, 4);
        let config = FullLockConfig {
            plrs: vec![PlrSpec::new(8)],
            selection: WireSelection::Cyclic,
            twist_probability: 0.5,
            seed: 11,
        };
        let locked = FullLock::new(config).lock(&original).unwrap();
        // With the correct key, the effective logic is the original DAG:
        // ternary evaluation settles and matches.
        let sim = Simulator::new(&original).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..20 {
            let x: Vec<bool> = (0..original.inputs().len())
                .map(|_| rng.gen_bool(0.5))
                .collect();
            let want = sim.run(&x).unwrap();
            let eval = locked.eval_cyclic(&x, &locked.correct_key).unwrap();
            assert!(eval.all_outputs_known(), "correct key must settle");
            let got: Vec<bool> = eval
                .outputs
                .iter()
                .map(|t| t.to_bool().expect("settled"))
                .collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn multiple_plrs() {
        let original = host(400, 5);
        let config = FullLockConfig {
            plrs: vec![PlrSpec::new(8), PlrSpec::new(4)],
            selection: WireSelection::Acyclic,
            twist_probability: 0.5,
            seed: 13,
        };
        let locked = FullLock::new(config).lock(&original).unwrap();
        assert!(!topo::is_cyclic(&locked.netlist));
        check_equivalence(&original, &locked, 30);
    }

    #[test]
    fn inverterless_ablation_still_round_trips() {
        let original = host(150, 10);
        let config = FullLockConfig {
            plrs: vec![PlrSpec {
                cln_size: 8,
                topology: ClnTopology::AlmostNonBlocking,
                with_luts: true,
                with_inverters: false,
            }],
            selection: WireSelection::Acyclic,
            twist_probability: 1.0, // ignored: no compensation channel
            seed: 14,
        };
        let locked = FullLock::new(config).lock(&original).unwrap();
        check_equivalence(&original, &locked, 30);
        // Without inverter keys, the key is strictly shorter than the
        // default configuration's.
        let with_inv = FullLock::new(FullLockConfig {
            plrs: vec![PlrSpec::new(8)],
            selection: WireSelection::Acyclic,
            twist_probability: 1.0,
            seed: 14,
        })
        .lock(&original)
        .unwrap();
        assert!(locked.key_len() < with_inv.key_len());
    }

    #[test]
    fn wrong_keys_corrupt_outputs() {
        let original = host(150, 6);
        let locked = FullLock::new(FullLockConfig::single_plr(8))
            .lock(&original)
            .unwrap();
        let sim = Simulator::new(&original).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let mut corrupted = 0usize;
        let trials = 30;
        for _ in 0..trials {
            let x: Vec<bool> = (0..original.inputs().len())
                .map(|_| rng.gen_bool(0.5))
                .collect();
            let wrong = Key::random(locked.key_len(), &mut rng);
            if locked.eval(&x, &wrong).unwrap() != sim.run(&x).unwrap() {
                corrupted += 1;
            }
        }
        // Full-Lock is a high-corruption scheme; random keys should
        // corrupt the vast majority of patterns.
        assert!(
            corrupted > trials / 2,
            "only {corrupted}/{trials} corrupted"
        );
    }

    #[test]
    fn locking_is_deterministic() {
        let original = host(150, 7);
        let scheme = FullLock::new(FullLockConfig::single_plr(8));
        let a = scheme.lock(&original).unwrap();
        let b = scheme.lock(&original).unwrap();
        assert_eq!(a.netlist, b.netlist);
        assert_eq!(a.correct_key, b.correct_key);
    }

    #[test]
    fn key_length_matches_inputs() {
        let original = host(150, 8);
        let locked = FullLock::new(FullLockConfig::single_plr(8))
            .lock(&original)
            .unwrap();
        assert_eq!(locked.key_len(), locked.correct_key.len());
        assert!(locked.key_len() > 0);
        // Data inputs unchanged.
        assert_eq!(locked.data_inputs.len(), original.inputs().len());
    }

    #[test]
    fn empty_config_is_rejected() {
        let original = host(100, 9);
        let scheme = FullLock::new(FullLockConfig {
            plrs: vec![],
            selection: WireSelection::Acyclic,
            twist_probability: 0.5,
            seed: 0,
        });
        assert!(scheme.lock(&original).is_err());
    }

    #[test]
    fn scheme_name_lists_plr_sizes() {
        let scheme = FullLock::new(FullLockConfig {
            plrs: vec![PlrSpec::new(16), PlrSpec::new(8)],
            selection: WireSelection::Acyclic,
            twist_probability: 0.5,
            seed: 0,
        });
        assert_eq!(scheme.name(), "full-lock[16x16+8x8]");
    }
}
