//! Key-Configurable Logarithmic-based Networks (CLNs).
//!
//! A CLN is the routing half of a PLR: `S` stages of `N/2` two-by-two
//! switch-boxes, with fixed inter-stage wiring determined by the topology,
//! plus one key-configurable inverter on every wire after every stage
//! (Figs 2–4 of the paper).
//!
//! Each switch-box is built from two independent 2:1 MUXes, so beyond the
//! two *permutation* settings (straight / cross) a wrong key can also
//! *broadcast* one input to both outputs — one of the reasons wrong keys
//! corrupt outputs heavily.
//!
//! Topologies:
//!
//! * [`ClnTopology::Shuffle`] — the blocking omega network of Fig 3
//!   (`log2 N` stages, perfect-shuffle wiring);
//! * [`ClnTopology::Banyan`] — the blocking banyan/butterfly network
//!   (`log2 N` stages, butterfly wiring);
//! * [`ClnTopology::AlmostNonBlocking`] — the paper's
//!   `LOG_{N, log2(N)-2, 1}` network of Fig 4: a banyan followed by
//!   `log2(N)-2` extra mirrored stages (`2·log2(N)-2` total), realizing
//!   *almost all* permutations at ≈2× the cost of a blocking CLN;
//! * [`ClnTopology::Benes`] — the classic rearrangeably non-blocking
//!   Beneš network (`2·log2(N)-1` stages), included as the fully
//!   non-blocking reference point.

use std::collections::BTreeSet;

use fulllock_netlist::{GateKind, Netlist, SignalId};
use rand::Rng;

use crate::{LockError, Result};

/// Interconnect topology of a CLN. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClnTopology {
    /// Blocking omega (perfect-shuffle) network, `log2 N` stages.
    Shuffle,
    /// Blocking banyan/butterfly network, `log2 N` stages.
    Banyan,
    /// `LOG_{N, log2(N)-2, 1}`: banyan plus `log2(N)-2` mirrored extra
    /// stages (`2·log2(N)-2` total), the paper's almost non-blocking CLN.
    AlmostNonBlocking,
    /// Beneš network, `2·log2(N)-1` stages, rearrangeably non-blocking.
    Benes,
}

impl ClnTopology {
    /// Short lower-case name (used in reports).
    pub fn name(self) -> &'static str {
        match self {
            ClnTopology::Shuffle => "shuffle",
            ClnTopology::Banyan => "banyan",
            ClnTopology::AlmostNonBlocking => "almost-non-blocking",
            ClnTopology::Benes => "benes",
        }
    }

    /// Whether the topology can realize every permutation (for the sizes
    /// used here): only the Beneš network is fully non-blocking.
    pub fn is_non_blocking(self) -> bool {
        matches!(self, ClnTopology::Benes)
    }
}

/// One switch-box's *permutation* setting (the correct key always uses a
/// permutation; wrong keys may also broadcast).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwbState {
    /// Outputs = inputs.
    Straight,
    /// Outputs = swapped inputs.
    Cross,
}

/// The structural (netlist-independent) description of a CLN.
///
/// # Example
///
/// Routing tokens through a configured network:
///
/// ```
/// use fulllock_locking::{ClnStructure, ClnTopology, SwbState};
///
/// # fn main() -> Result<(), fulllock_locking::LockError> {
/// let cln = ClnStructure::new(ClnTopology::Banyan, 4)?;
/// // All-straight switches route the identity permutation.
/// let straight = vec![SwbState::Straight; cln.num_switches()];
/// assert_eq!(cln.route(&straight), vec![0, 1, 2, 3]);
/// // Crossing the first switch swaps the first pair of tokens somewhere.
/// let mut one_cross = straight.clone();
/// one_cross[0] = SwbState::Cross;
/// assert_ne!(cln.route(&one_cross), vec![0, 1, 2, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClnStructure {
    n: usize,
    k: u32,
    topology: ClnTopology,
    /// `pre_wiring[s][p]` = previous-level line feeding stage-`s` switch
    /// input position `p` (switch `t` owns positions `2t`, `2t+1`).
    pre_wiring: Vec<Vec<usize>>,
    /// `output_wiring[o]` = final-level position feeding CLN output `o`.
    output_wiring: Vec<usize>,
}

impl ClnStructure {
    /// Builds the structure of an `n`-input CLN.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::BadConfig`] unless `n` is a power of two ≥ 4.
    pub fn new(topology: ClnTopology, n: usize) -> Result<ClnStructure> {
        if n < 4 || !n.is_power_of_two() {
            return Err(LockError::BadConfig(format!(
                "CLN size must be a power of two >= 4, got {n}"
            )));
        }
        let k = n.trailing_zeros();
        let (pre_wiring, output_wiring) = match topology {
            ClnTopology::Shuffle => {
                // Perfect shuffle before every stage: data at line j moves
                // to position rotate-left(j), so position p reads line
                // rotate-right(p). All-straight switches realize identity
                // (shuffle^k = id).
                let rot_right = |p: usize| (p >> 1) | ((p & 1) << (k - 1));
                let stage: Vec<usize> = (0..n).map(rot_right).collect();
                (vec![stage; k as usize], (0..n).collect())
            }
            ClnTopology::Banyan | ClnTopology::AlmostNonBlocking | ClnTopology::Benes => {
                // Butterfly-family networks, expressed by the bit each
                // stage switches on: banyan = MSB..LSB; Beneš appends the
                // mirror LSB+1..MSB; almost-non-blocking stops the mirror
                // at MSB-1 (log2(N)-2 extra stages).
                let mut bits: Vec<u32> = (0..k).rev().collect();
                match topology {
                    ClnTopology::Banyan => {}
                    ClnTopology::AlmostNonBlocking => bits.extend(1..k - 1),
                    ClnTopology::Benes => bits.extend(1..k),
                    ClnTopology::Shuffle => unreachable!(),
                }
                wiring_from_bit_sequence(n, &bits)
            }
        };
        Ok(ClnStructure {
            n,
            k,
            topology,
            pre_wiring,
            output_wiring,
        })
    }

    /// Number of inputs/outputs.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The topology.
    pub fn topology(&self) -> ClnTopology {
        self.topology
    }

    /// Number of switch stages.
    pub fn stages(&self) -> usize {
        self.pre_wiring.len()
    }

    /// Switch-boxes per stage (`N/2`).
    pub fn switches_per_stage(&self) -> usize {
        self.n / 2
    }

    /// Total switch-box count (`stages · N/2`).
    pub fn num_switches(&self) -> usize {
        self.stages() * self.switches_per_stage()
    }

    /// Routes token `i` injected at input `i` through a full permutation
    /// configuration; returns `perm` with `perm[i]` = output carrying
    /// input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `states.len() != self.num_switches()` (stage-major,
    /// switch-minor order).
    pub fn route(&self, states: &[SwbState]) -> Vec<usize> {
        assert_eq!(states.len(), self.num_switches(), "one state per switch");
        let mut level: Vec<usize> = (0..self.n).collect(); // token at each line
        for (s, wiring) in self.pre_wiring.iter().enumerate() {
            let staged: Vec<usize> = (0..self.n).map(|p| level[wiring[p]]).collect();
            for t in 0..self.switches_per_stage() {
                let (a, b) = (staged[2 * t], staged[2 * t + 1]);
                match states[s * self.switches_per_stage() + t] {
                    SwbState::Straight => {
                        level[2 * t] = a;
                        level[2 * t + 1] = b;
                    }
                    SwbState::Cross => {
                        level[2 * t] = b;
                        level[2 * t + 1] = a;
                    }
                }
            }
        }
        let mut perm = vec![0usize; self.n];
        for o in 0..self.n {
            perm[level[self.output_wiring[o]]] = o;
        }
        perm
    }

    /// Like [`ClnStructure::route`], but also tracks, per input token, the
    /// parity of the inverter key bits along its path.
    ///
    /// `inverter_bits` is stage-major, line-minor (`stages() · n` bits): bit
    /// `s·n + p` is the inverter on line `p` after stage `s`.
    ///
    /// # Panics
    ///
    /// Panics on mis-sized `states` or `inverter_bits`.
    pub fn route_with_parity(
        &self,
        states: &[SwbState],
        inverter_bits: &[bool],
    ) -> (Vec<usize>, Vec<bool>) {
        assert_eq!(
            inverter_bits.len(),
            self.stages() * self.n,
            "one inverter bit per line per stage"
        );
        assert_eq!(states.len(), self.num_switches(), "one state per switch");
        let mut level: Vec<(usize, bool)> = (0..self.n).map(|i| (i, false)).collect();
        for (s, wiring) in self.pre_wiring.iter().enumerate() {
            let staged: Vec<(usize, bool)> = (0..self.n).map(|p| level[wiring[p]]).collect();
            for t in 0..self.switches_per_stage() {
                let (a, b) = (staged[2 * t], staged[2 * t + 1]);
                match states[s * self.switches_per_stage() + t] {
                    SwbState::Straight => {
                        level[2 * t] = a;
                        level[2 * t + 1] = b;
                    }
                    SwbState::Cross => {
                        level[2 * t] = b;
                        level[2 * t + 1] = a;
                    }
                }
            }
            for p in 0..self.n {
                level[p].1 ^= inverter_bits[s * self.n + p];
            }
        }
        let mut perm = vec![0usize; self.n];
        let mut parity = vec![false; self.n];
        for o in 0..self.n {
            let (token, par) = level[self.output_wiring[o]];
            perm[token] = o;
            parity[token] = par;
        }
        (perm, parity)
    }

    /// The final-level line position that feeds the output carrying input
    /// `token` under `perm` (useful to target that token's last inverter).
    pub fn final_position(&self, perm: &[usize], token: usize) -> usize {
        self.output_wiring[perm[token]]
    }

    /// Enumerates every permutation realizable by permutation-only switch
    /// settings. Exponential in switch count — intended for `n ≤ 8`
    /// (tests, and the blocking-vs-non-blocking analysis of §3.1).
    ///
    /// # Panics
    ///
    /// Panics if `n > 8` (the enumeration would exceed 2³² settings).
    pub fn reachable_permutations(&self) -> BTreeSet<Vec<usize>> {
        assert!(self.n <= 8, "permutation enumeration is for n <= 8");
        let switches = self.num_switches();
        let mut set = BTreeSet::new();
        let mut states = vec![SwbState::Straight; switches];
        for mask in 0u64..1 << switches {
            for (i, st) in states.iter_mut().enumerate() {
                *st = if mask >> i & 1 == 1 {
                    SwbState::Cross
                } else {
                    SwbState::Straight
                };
            }
            set.insert(self.route(&states));
        }
        set
    }

    /// Draws a uniformly random permutation-only switch configuration.
    pub fn random_states(&self, rng: &mut impl Rng) -> Vec<SwbState> {
        (0..self.num_switches())
            .map(|_| {
                if rng.gen_bool(0.5) {
                    SwbState::Cross
                } else {
                    SwbState::Straight
                }
            })
            .collect()
    }

    /// Switch-box count of a general `LOG_{N, M, P}` network (Shyy & Lea):
    /// `P` vertically cascaded planes of a banyan with `M` extra stages.
    /// This is the sizing formula behind the paper's §3.1 observation that
    /// the smallest *strictly* non-blocking configuration (`LOG_{64,3,6}`)
    /// carries **more than 5×** the area of a blocking CLN, which is why
    /// Full-Lock settles for the almost non-blocking
    /// `LOG_{N, log2(N)-2, 1}` instead.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::BadConfig`] unless `n` is a power of two ≥ 4
    /// and `p ≥ 1`.
    ///
    /// # Example
    ///
    /// ```
    /// use fulllock_locking::ClnStructure;
    ///
    /// # fn main() -> Result<(), fulllock_locking::LockError> {
    /// let blocking = ClnStructure::log_nmp_switch_count(64, 0, 1)?; // banyan
    /// let strict = ClnStructure::log_nmp_switch_count(64, 3, 6)?;   // strictly non-blocking
    /// assert!(strict > 5 * blocking); // the paper's ">5x area" comparison
    /// # Ok(())
    /// # }
    /// ```
    pub fn log_nmp_switch_count(n: usize, m: usize, p: usize) -> Result<usize> {
        if n < 4 || !n.is_power_of_two() {
            return Err(LockError::BadConfig(format!(
                "LOG network size must be a power of two >= 4, got {n}"
            )));
        }
        if p == 0 {
            return Err(LockError::BadConfig("P must be >= 1".into()));
        }
        let stages = n.trailing_zeros() as usize + m;
        Ok(p * stages * (n / 2))
    }
}

/// Builds wiring for a butterfly-family network from the sequence of bits
/// its stages switch on (see the derivation in the module source).
///
/// In-place stage `s` pairs lines differing in bit `b_s`; conjugating by
/// `W_b` (the permutation swapping index bits 0 and `b`) turns each stage
/// into adjacent-pair switches with wiring `W_{b_{s-1}} ∘ W_{b_s}` before
/// stage `s` (just `W_{b_0}` before stage 0) and `W_{b_last}` after the
/// last stage.
fn wiring_from_bit_sequence(n: usize, bits: &[u32]) -> (Vec<Vec<usize>>, Vec<usize>) {
    let swap_bits = |x: usize, b: u32| -> usize {
        let lo = x & 1;
        let hi = (x >> b) & 1;
        if lo == hi {
            x
        } else {
            x ^ 1 ^ (1 << b)
        }
    };
    let mut pre_wiring = Vec::with_capacity(bits.len());
    for (s, &b) in bits.iter().enumerate() {
        let stage: Vec<usize> = (0..n)
            .map(|p| {
                let after = swap_bits(p, b);
                if s == 0 {
                    after
                } else {
                    swap_bits(after, bits[s - 1])
                }
            })
            .collect();
        pre_wiring.push(stage);
    }
    let last = *bits.last().expect("at least one stage");
    let output_wiring: Vec<usize> = (0..n).map(|o| swap_bits(o, last)).collect();
    (pre_wiring, output_wiring)
}

/// A CLN instantiated inside a netlist: MUX switch gates, XOR inverter
/// gates, and freshly created key inputs.
#[derive(Debug, Clone)]
pub struct ClnInstance {
    structure: ClnStructure,
    with_inverters: bool,
    /// CLN output signals, in output order.
    pub outputs: Vec<SignalId>,
    /// Key inputs in layout order: per stage, `N/2 × 2` MUX selects then
    /// (when inverters are enabled) `N` inverter enables.
    pub key_inputs: Vec<SignalId>,
    /// Every gate signal created for this CLN (used to except the CLN from
    /// fan-out redirection when splicing).
    pub gates: Vec<SignalId>,
}

impl ClnInstance {
    /// Instantiates `structure` into `netlist`, reading `inputs` (one per
    /// CLN input). New key inputs are named `{prefix}{i}`.
    ///
    /// Equivalent to [`ClnInstance::instantiate_with_options`] with
    /// key-configurable inverters enabled (the paper's design; disabling
    /// them is the ablation knob that removes twisting compensation and
    /// with it the removal resistance).
    ///
    /// # Errors
    ///
    /// Returns [`LockError::BadConfig`] if `inputs.len() != structure.n()`.
    pub fn instantiate(
        netlist: &mut Netlist,
        structure: &ClnStructure,
        inputs: &[SignalId],
        prefix: &str,
    ) -> Result<ClnInstance> {
        ClnInstance::instantiate_with_options(netlist, structure, inputs, prefix, true)
    }

    /// Instantiates `structure` with an explicit choice of whether each
    /// wire gets a key-configurable inverter after every stage.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::BadConfig`] if `inputs.len() != structure.n()`.
    pub fn instantiate_with_options(
        netlist: &mut Netlist,
        structure: &ClnStructure,
        inputs: &[SignalId],
        prefix: &str,
        with_inverters: bool,
    ) -> Result<ClnInstance> {
        if inputs.len() != structure.n() {
            return Err(LockError::BadConfig(format!(
                "CLN of size {} fed by {} inputs",
                structure.n(),
                inputs.len()
            )));
        }
        let n = structure.n();
        let mut key_inputs = Vec::new();
        let mut gates = Vec::new();
        let mut key_index = 0usize;
        let mut new_key = |netlist: &mut Netlist, key_inputs: &mut Vec<SignalId>| {
            let k = netlist.add_input(format!("{prefix}{key_index}"));
            key_index += 1;
            key_inputs.push(k);
            k
        };

        let mut level: Vec<SignalId> = inputs.to_vec();
        for wiring in &structure.pre_wiring {
            let staged: Vec<SignalId> = (0..n).map(|p| level[wiring[p]]).collect();
            let mut next = Vec::with_capacity(n);
            for t in 0..n / 2 {
                let (a, b) = (staged[2 * t], staged[2 * t + 1]);
                // MUX fan-ins are [S, A, B]: select 0 = straight.
                let sel_even = new_key(netlist, &mut key_inputs);
                let even = netlist.add_gate(GateKind::Mux, &[sel_even, a, b])?;
                gates.push(even);
                let sel_odd = new_key(netlist, &mut key_inputs);
                let odd = netlist.add_gate(GateKind::Mux, &[sel_odd, b, a])?;
                gates.push(odd);
                next.push(even);
                next.push(odd);
            }
            // Key-configurable inverter on every wire (the twist channel).
            if with_inverters {
                let mut inverted = Vec::with_capacity(n);
                for &wire in &next {
                    let inv_key = new_key(netlist, &mut key_inputs);
                    let g = netlist.add_gate(GateKind::Xor, &[wire, inv_key])?;
                    gates.push(g);
                    inverted.push(g);
                }
                level = inverted;
            } else {
                level = next;
            }
        }
        let outputs: Vec<SignalId> = (0..n).map(|o| level[structure.output_wiring[o]]).collect();
        Ok(ClnInstance {
            structure: structure.clone(),
            with_inverters,
            outputs,
            key_inputs,
            gates,
        })
    }

    /// The structural description this instance realizes.
    pub fn structure(&self) -> &ClnStructure {
        &self.structure
    }

    /// Number of key bits.
    pub fn key_len(&self) -> usize {
        self.key_inputs.len()
    }

    /// Whether the instance carries key-configurable inverters.
    pub fn has_inverters(&self) -> bool {
        self.with_inverters
    }

    /// Serializes a (states, inverter-bits) configuration into key bits in
    /// this instance's key-input order.
    ///
    /// `inverter_bits` is stage-major line-minor, as in
    /// [`ClnStructure::route_with_parity`].
    ///
    /// # Panics
    ///
    /// Panics on mis-sized inputs, and if any inverter bit is set on an
    /// instance built without inverters.
    pub fn key_bits_for(&self, states: &[SwbState], inverter_bits: &[bool]) -> Vec<bool> {
        let n = self.structure.n();
        let stages = self.structure.stages();
        assert_eq!(states.len(), self.structure.num_switches());
        assert_eq!(inverter_bits.len(), stages * n);
        assert!(
            self.with_inverters || inverter_bits.iter().all(|&b| !b),
            "inverter bits set on an inverter-less CLN"
        );
        let mut bits = Vec::with_capacity(self.key_len());
        for s in 0..stages {
            for t in 0..n / 2 {
                let cross = states[s * (n / 2) + t] == SwbState::Cross;
                bits.push(cross); // sel_even: 1 selects B (the swapped line)
                bits.push(cross); // sel_odd
            }
            if self.with_inverters {
                for p in 0..n {
                    bits.push(inverter_bits[s * n + p]);
                }
            }
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fulllock_netlist::Simulator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn all_topologies() -> [ClnTopology; 4] {
        [
            ClnTopology::Shuffle,
            ClnTopology::Banyan,
            ClnTopology::AlmostNonBlocking,
            ClnTopology::Benes,
        ]
    }

    #[test]
    fn rejects_bad_sizes() {
        for bad in [0usize, 1, 2, 3, 6, 12] {
            assert!(
                ClnStructure::new(ClnTopology::Shuffle, bad).is_err(),
                "n = {bad}"
            );
        }
    }

    #[test]
    fn stage_counts_match_paper() {
        // Blocking: log2 N stages; almost non-blocking: 2·log2(N)-2;
        // Beneš: 2·log2(N)-1.
        let n = 16;
        assert_eq!(
            ClnStructure::new(ClnTopology::Shuffle, n).unwrap().stages(),
            4
        );
        assert_eq!(
            ClnStructure::new(ClnTopology::Banyan, n).unwrap().stages(),
            4
        );
        assert_eq!(
            ClnStructure::new(ClnTopology::AlmostNonBlocking, n)
                .unwrap()
                .stages(),
            6
        );
        assert_eq!(
            ClnStructure::new(ClnTopology::Benes, n).unwrap().stages(),
            7
        );
    }

    #[test]
    fn switch_count_matches_paper_formula() {
        // N/2 · logN switches for blocking CLNs (§3.1).
        for n in [4usize, 8, 16, 32] {
            let s = ClnStructure::new(ClnTopology::Shuffle, n).unwrap();
            assert_eq!(s.num_switches(), n / 2 * n.trailing_zeros() as usize);
        }
    }

    #[test]
    fn all_straight_routes_identity() {
        for topology in all_topologies() {
            for n in [4usize, 8, 16] {
                let s = ClnStructure::new(topology, n).unwrap();
                let states = vec![SwbState::Straight; s.num_switches()];
                assert_eq!(
                    s.route(&states),
                    (0..n).collect::<Vec<_>>(),
                    "{} n={n}",
                    topology.name()
                );
            }
        }
    }

    #[test]
    fn route_always_yields_permutations() {
        let mut rng = StdRng::seed_from_u64(1);
        for topology in all_topologies() {
            let s = ClnStructure::new(topology, 16).unwrap();
            for _ in 0..20 {
                let states = s.random_states(&mut rng);
                let perm = s.route(&states);
                let mut seen = [false; 16];
                for &o in &perm {
                    assert!(!seen[o], "duplicate output in {}", topology.name());
                    seen[o] = true;
                }
            }
        }
    }

    #[test]
    fn benes_reaches_all_permutations_blocking_does_not() {
        let blocking = ClnStructure::new(ClnTopology::Shuffle, 4).unwrap();
        let banyan = ClnStructure::new(ClnTopology::Banyan, 4).unwrap();
        let benes = ClnStructure::new(ClnTopology::Benes, 4).unwrap();
        // 4! = 24 permutations.
        assert_eq!(benes.reachable_permutations().len(), 24);
        assert!(blocking.reachable_permutations().len() < 24);
        assert!(banyan.reachable_permutations().len() < 24);
    }

    #[test]
    fn almost_non_blocking_reaches_more_than_blocking() {
        let blocking = ClnStructure::new(ClnTopology::Banyan, 8).unwrap();
        let almost = ClnStructure::new(ClnTopology::AlmostNonBlocking, 8).unwrap();
        let nb = blocking.reachable_permutations().len();
        let na = almost.reachable_permutations().len();
        // The extra log2(N)-2 stages more than double the reachable
        // permutation count (4096 → 9216 at N=8); the Beneš test below
        // covers the fully non-blocking end of the spectrum.
        assert!(
            na > 2 * nb,
            "almost-non-blocking ({na}) should more than double blocking ({nb})"
        );
    }

    #[test]
    fn parity_tracks_inverters() {
        let s = ClnStructure::new(ClnTopology::Banyan, 4).unwrap();
        let states = vec![SwbState::Straight; s.num_switches()];
        let mut inv = vec![false; s.stages() * 4];
        // Flip the final-stage inverter on the line feeding output 2.
        let perm: Vec<usize> = (0..4).collect();
        let final_pos = s.final_position(&perm, 2);
        inv[(s.stages() - 1) * 4 + final_pos] = true;
        let (perm2, parity) = s.route_with_parity(&states, &inv);
        assert_eq!(perm2, perm);
        assert_eq!(parity, vec![false, false, true, false]);
    }

    /// Instantiate a CLN over fresh inputs and check, for random keys
    /// derived from (states, inverter) configurations, that the netlist
    /// computes exactly the routed permutation with the tracked parities.
    #[test]
    fn netlist_instance_matches_structural_routing() {
        let mut rng = StdRng::seed_from_u64(7);
        for topology in all_topologies() {
            let n = 8usize;
            let structure = ClnStructure::new(topology, n).unwrap();
            let mut nl = Netlist::new("cln");
            let inputs: Vec<_> = (0..n).map(|i| nl.add_input(format!("in{i}"))).collect();
            let inst = ClnInstance::instantiate(&mut nl, &structure, &inputs, "key").unwrap();
            for &o in &inst.outputs {
                nl.mark_output(o);
            }
            let sim = Simulator::new(&nl).unwrap();

            for _ in 0..5 {
                let states = structure.random_states(&mut rng);
                let inv: Vec<bool> = (0..structure.stages() * n)
                    .map(|_| rng.gen_bool(0.5))
                    .collect();
                let (perm, parity) = structure.route_with_parity(&states, &inv);
                let key_bits = inst.key_bits_for(&states, &inv);

                // Drive each input with a distinct pattern over 8 trials to
                // identify the routing: use one-hot patterns.
                for hot in 0..n {
                    let mut full = Vec::new();
                    for i in 0..n {
                        full.push(i == hot);
                    }
                    full.extend(&key_bits);
                    // Primary inputs were created inputs-first, keys after.
                    let got = sim.run(&full).unwrap();
                    for token in 0..n {
                        let expect = (token == hot) ^ parity[token];
                        assert_eq!(
                            got[perm[token]],
                            expect,
                            "{} token {token} hot {hot}",
                            topology.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn key_layout_length() {
        let structure = ClnStructure::new(ClnTopology::Shuffle, 8).unwrap();
        let mut nl = Netlist::new("cln");
        let inputs: Vec<_> = (0..8).map(|i| nl.add_input(format!("in{i}"))).collect();
        let inst = ClnInstance::instantiate(&mut nl, &structure, &inputs, "key").unwrap();
        // Per stage: 8 mux selects (4 switches × 2) + 8 inverter bits.
        assert_eq!(inst.key_len(), structure.stages() * (8 + 8));
        assert_eq!(inst.outputs.len(), 8);
    }

    #[test]
    fn mismatched_input_count_errors() {
        let structure = ClnStructure::new(ClnTopology::Shuffle, 8).unwrap();
        let mut nl = Netlist::new("cln");
        let a = nl.add_input("a");
        assert!(ClnInstance::instantiate(&mut nl, &structure, &[a], "key").is_err());
    }
}
