//! Key-programmable LUTs (the logic half of a PLR).
//!
//! An `R`-input LUT is a `2^R`-leaf MUX tree whose leaves are key inputs:
//! the key *is* the truth table. Full-Lock replaces the gates around a CLN
//! with LUTs (§3.2), which (a) adds `R` more levels to the DPLL recursion
//! under the CLN and (b) defeats removal attacks, since excising the CLN
//! leaves the LUT functions unknown.

use fulllock_netlist::{GateKind, Netlist, SignalId};

use crate::{LockError, Result};

/// Largest LUT the paper uses (max fan-in observed across ISCAS-85/MCNC).
pub const MAX_LUT_INPUTS: usize = 5;

/// A LUT instantiated inside a netlist.
#[derive(Debug, Clone)]
pub struct LutInstance {
    /// The LUT's output signal (root of the MUX tree).
    pub output: SignalId,
    /// Key inputs in truth-table order: bit `i` is the output for the input
    /// combination whose bit `j` equals input `j`'s value.
    pub key_inputs: Vec<SignalId>,
    /// Every MUX gate created for the tree.
    pub gates: Vec<SignalId>,
}

impl LutInstance {
    /// Builds a key-programmable LUT over `inputs` inside `netlist`,
    /// creating `2^inputs.len()` key inputs named `{prefix}{i}`.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::BadConfig`] if `inputs` is empty or wider than
    /// [`MAX_LUT_INPUTS`].
    pub fn instantiate(
        netlist: &mut Netlist,
        inputs: &[SignalId],
        prefix: &str,
    ) -> Result<LutInstance> {
        if inputs.is_empty() || inputs.len() > MAX_LUT_INPUTS {
            return Err(LockError::BadConfig(format!(
                "LUT must have 1..={MAX_LUT_INPUTS} inputs, got {}",
                inputs.len()
            )));
        }
        let entries = 1usize << inputs.len();
        let key_inputs: Vec<SignalId> = (0..entries)
            .map(|i| netlist.add_input(format!("{prefix}{i}")))
            .collect();
        let mut gates = Vec::new();
        let output = build_tree(netlist, inputs, &key_inputs, &mut gates)?;
        Ok(LutInstance {
            output,
            key_inputs,
            gates,
        })
    }

    /// The truth-table key implementing `kind` over the LUT's inputs (in
    /// the same order they were passed to [`LutInstance::instantiate`]).
    ///
    /// # Panics
    ///
    /// Panics if `kind` does not accept the LUT's input count.
    pub fn key_for_gate(&self, kind: GateKind) -> Vec<bool> {
        let arity = self.key_inputs.len().trailing_zeros() as usize;
        (0..self.key_inputs.len())
            .map(|row| {
                let bits: Vec<bool> = (0..arity).map(|j| row >> j & 1 == 1).collect();
                kind.eval(&bits)
            })
            .collect()
    }
}

/// Recursive MUX-tree builder: selects on the *last* input, so truth-table
/// index bit `j` corresponds to input `j`.
fn build_tree(
    netlist: &mut Netlist,
    inputs: &[SignalId],
    leaves: &[SignalId],
    gates: &mut Vec<SignalId>,
) -> Result<SignalId> {
    debug_assert_eq!(leaves.len(), 1 << inputs.len());
    if inputs.is_empty() {
        return Ok(leaves[0]);
    }
    let (rest, &[sel]) = inputs.split_at(inputs.len() - 1) else {
        unreachable!("inputs is non-empty")
    };
    let half = leaves.len() / 2;
    let low = build_tree(netlist, rest, &leaves[..half], gates)?;
    let high = build_tree(netlist, rest, &leaves[half..], gates)?;
    // MUX fan-ins [S, A, B]: S=0 selects A (sel bit clear -> low half).
    let m = netlist
        .add_gate(GateKind::Mux, &[sel, low, high])
        .map_err(LockError::Netlist)?;
    gates.push(m);
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fulllock_netlist::Simulator;

    fn eval_lut(arity: usize, key: &[bool], data: &[bool]) -> bool {
        let mut nl = Netlist::new("lut");
        let inputs: Vec<_> = (0..arity).map(|i| nl.add_input(format!("i{i}"))).collect();
        let lut = LutInstance::instantiate(&mut nl, &inputs, "k").unwrap();
        nl.mark_output(lut.output);
        let sim = Simulator::new(&nl).unwrap();
        let mut full = data.to_vec();
        full.extend_from_slice(key);
        sim.run(&full).unwrap()[0]
    }

    #[test]
    fn lut_realizes_its_truth_table() {
        for arity in 1..=3usize {
            let entries = 1 << arity;
            // Try a couple of characteristic truth tables per arity.
            for pattern in [0b0110_1001_usize, 0b1110_0001, 0b0000_0001] {
                let key: Vec<bool> = (0..entries).map(|i| pattern >> i & 1 == 1).collect();
                for row in 0..entries {
                    let data: Vec<bool> = (0..arity).map(|j| row >> j & 1 == 1).collect();
                    assert_eq!(
                        eval_lut(arity, &key, &data),
                        key[row],
                        "arity {arity} pattern {pattern:b} row {row}"
                    );
                }
            }
        }
    }

    #[test]
    fn key_for_gate_matches_gate_function() {
        for kind in [GateKind::And, GateKind::Nand, GateKind::Xor, GateKind::Nor] {
            let mut nl = Netlist::new("lut");
            let inputs: Vec<_> = (0..2).map(|i| nl.add_input(format!("i{i}"))).collect();
            let lut = LutInstance::instantiate(&mut nl, &inputs, "k").unwrap();
            nl.mark_output(lut.output);
            let key = lut.key_for_gate(kind);
            let sim = Simulator::new(&nl).unwrap();
            for row in 0..4usize {
                let data = [row & 1 == 1, row >> 1 & 1 == 1];
                let mut full = data.to_vec();
                full.extend(&key);
                assert_eq!(
                    sim.run(&full).unwrap()[0],
                    kind.eval(&data),
                    "{kind} row {row}"
                );
            }
        }
    }

    #[test]
    fn gate_and_key_counts() {
        let mut nl = Netlist::new("lut");
        let inputs: Vec<_> = (0..3).map(|i| nl.add_input(format!("i{i}"))).collect();
        let lut = LutInstance::instantiate(&mut nl, &inputs, "k").unwrap();
        assert_eq!(lut.key_inputs.len(), 8);
        assert_eq!(lut.gates.len(), 7); // full binary tree of MUXes
    }

    #[test]
    fn oversized_lut_is_rejected() {
        let mut nl = Netlist::new("lut");
        let inputs: Vec<_> = (0..6).map(|i| nl.add_input(format!("i{i}"))).collect();
        assert!(LutInstance::instantiate(&mut nl, &inputs, "k").is_err());
        assert!(LutInstance::instantiate(&mut nl, &[], "k").is_err());
    }
}
