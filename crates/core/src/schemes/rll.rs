//! Random logic locking (RLL / EPIC): XOR/XNOR key gates on random wires.

use std::collections::HashSet;

use fulllock_netlist::{GateKind, Netlist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::schemes::LockingScheme;
use crate::select::{select_wires, WireSelection};
use crate::{Key, LockedCircuit, Result};

/// Random XOR/XNOR key-gate insertion — the primitive locking scheme the
/// SAT attack was originally demonstrated against.
///
/// Each key bit guards one randomly selected wire `w`: the wire is replaced
/// by `XOR(w, k)` or `XNOR(w, k)` (chosen at random so polarity does not
/// leak the key); the correct bit is `0` for XOR and `1` for XNOR.
///
/// # Example
///
/// ```
/// use fulllock_locking::{LockingScheme, Rll};
/// use fulllock_netlist::benchmarks;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let host = benchmarks::load("c17")?;
/// let locked = Rll::new(4, 0).lock(&host)?;
/// assert_eq!(locked.key_len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rll {
    key_bits: usize,
    seed: u64,
}

impl Rll {
    /// An RLL scheme inserting `key_bits` key gates.
    pub fn new(key_bits: usize, seed: u64) -> Rll {
        Rll { key_bits, seed }
    }
}

impl LockingScheme for Rll {
    fn name(&self) -> String {
        format!("rll[{}]", self.key_bits)
    }

    fn lock(&self, original: &Netlist) -> Result<LockedCircuit> {
        let mut nl = original.clone();
        let nonce = crate::schemes::key_name_nonce(&nl);
        let data_inputs = nl.inputs().to_vec();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let wires = select_wires(
            &nl,
            self.key_bits,
            WireSelection::Cyclic, // key gates never create cycles
            nl.len(),
            &HashSet::new(),
            &mut rng,
        )?;
        let mut key_inputs = Vec::with_capacity(self.key_bits);
        let mut key_bits = Vec::with_capacity(self.key_bits);
        for (i, &w) in wires.iter().enumerate() {
            let k = nl.add_input(format!("keyinput{}", nonce + i));
            let xnor = rng.gen_bool(0.5);
            let kind = if xnor { GateKind::Xnor } else { GateKind::Xor };
            let g = nl.add_gate(kind, &[w, k])?;
            nl.redirect_fanouts(w, g, &[g])?;
            key_inputs.push(k);
            key_bits.push(xnor);
        }
        nl.set_name(format!("{}_rll", original.name()));
        Ok(LockedCircuit {
            netlist: nl,
            data_inputs,
            key_inputs,
            correct_key: Key::from_bits(key_bits),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fulllock_netlist::Simulator;

    #[test]
    fn correct_key_restores_function() {
        let host = fulllock_netlist::benchmarks::load("c17").unwrap();
        let locked = Rll::new(4, 3).lock(&host).unwrap();
        let sim = Simulator::new(&host).unwrap();
        for row in 0..32u32 {
            let x: Vec<bool> = (0..5).map(|i| row >> i & 1 == 1).collect();
            assert_eq!(
                locked.eval(&x, &locked.correct_key).unwrap(),
                sim.run(&x).unwrap()
            );
        }
    }

    #[test]
    fn flipped_key_bit_corrupts_some_input() {
        let host = fulllock_netlist::benchmarks::load("c17").unwrap();
        let locked = Rll::new(3, 5).lock(&host).unwrap();
        let sim = Simulator::new(&host).unwrap();
        for bit in 0..3 {
            let mut wrong = locked.correct_key.clone();
            wrong.flip(bit);
            let corrupts = (0..32u32).any(|row| {
                let x: Vec<bool> = (0..5).map(|i| row >> i & 1 == 1).collect();
                locked.eval(&x, &wrong).unwrap() != sim.run(&x).unwrap()
            });
            assert!(corrupts, "flipping key bit {bit} corrupted nothing");
        }
    }

    #[test]
    fn key_gate_polarity_is_randomized() {
        // Across enough key bits both XOR and XNOR should appear, so the
        // correct key is not all-zeros (which would leak trivially).
        let host = fulllock_netlist::benchmarks::load("c432").unwrap();
        let locked = Rll::new(32, 7).lock(&host).unwrap();
        let ones = locked.correct_key.bits().iter().filter(|&&b| b).count();
        assert!(ones > 0 && ones < 32);
    }

    #[test]
    fn name_includes_width() {
        assert_eq!(Rll::new(8, 0).name(), "rll[8]");
    }
}
