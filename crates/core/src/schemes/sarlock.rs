//! SARLock: one-point output flipping (SAT-attack-resistant by iteration
//! count).

use fulllock_netlist::{GateKind, Netlist, SignalId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::schemes::LockingScheme;
use crate::{Key, LockError, LockedCircuit, Result};

/// SARLock (Yasin et al., HOST 2016): a comparator block that flips one
/// primary output for exactly one input pattern per wrong key, so each SAT
/// attack DIP eliminates only one key — forcing `2^m` iterations — at the
/// price of near-zero output corruption.
///
/// Construction (on the first `m` data inputs `X`, with hidden pattern `C`
/// equal to the correct key):
///
/// ```text
/// flip = eq(X, K) ∧ ¬eq(X, C)        y0' = y0 ⊕ flip
/// ```
///
/// `eq(X, C)` hard-wires `C` as per-bit buffers/inverters, the standard
/// mask that keeps the correct key corruption-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SarLock {
    key_bits: usize,
    seed: u64,
}

impl SarLock {
    /// SARLock over the first `key_bits` data inputs.
    pub fn new(key_bits: usize, seed: u64) -> SarLock {
        SarLock { key_bits, seed }
    }
}

impl LockingScheme for SarLock {
    fn name(&self) -> String {
        format!("sarlock[{}]", self.key_bits)
    }

    fn lock(&self, original: &Netlist) -> Result<LockedCircuit> {
        if self.key_bits == 0 {
            return Err(LockError::BadConfig("key_bits must be >= 1".into()));
        }
        if original.inputs().len() < self.key_bits {
            return Err(LockError::HostTooSmall {
                needed: self.key_bits,
                available: original.inputs().len(),
            });
        }
        if original.outputs().is_empty() {
            return Err(LockError::BadConfig("host has no outputs to flip".into()));
        }
        let mut nl = original.clone();
        let nonce = crate::schemes::key_name_nonce(&nl);
        let data_inputs = nl.inputs().to_vec();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let m = self.key_bits;
        let xs: Vec<SignalId> = data_inputs.iter().take(m).copied().collect();

        // Hidden pattern C = the correct key.
        let c: Vec<bool> = (0..m).map(|_| rng.gen_bool(0.5)).collect();
        let key_inputs: Vec<SignalId> = (0..m)
            .map(|i| nl.add_input(format!("keyinput{}", nonce + i)))
            .collect();

        // eq(X, K) = AND_i XNOR(x_i, k_i)
        let mut eq_terms = Vec::with_capacity(m);
        for i in 0..m {
            eq_terms.push(nl.add_gate(GateKind::Xnor, &[xs[i], key_inputs[i]])?);
        }
        let eq_k = and_tree(&mut nl, &eq_terms)?;

        // eq(X, C): per-bit buffer (c=1) or inverter (c=0), hard-wired.
        let mut mask_terms = Vec::with_capacity(m);
        for i in 0..m {
            let term = if c[i] {
                nl.add_gate(GateKind::Buf, &[xs[i]])?
            } else {
                nl.add_gate(GateKind::Not, &[xs[i]])?
            };
            mask_terms.push(term);
        }
        let eq_c = and_tree(&mut nl, &mask_terms)?;
        let not_eq_c = nl.add_gate(GateKind::Not, &[eq_c])?;
        let flip = nl.add_gate(GateKind::And, &[eq_k, not_eq_c])?;

        let target = nl.outputs()[0];
        let flipped = nl.add_gate(GateKind::Xor, &[target, flip])?;
        nl.set_output(0, flipped)?;
        nl.set_name(format!("{}_sarlock", original.name()));
        Ok(LockedCircuit {
            netlist: nl,
            data_inputs,
            key_inputs,
            correct_key: Key::from_bits(c),
        })
    }
}

/// Balanced AND tree (keeps depth logarithmic, fan-in ≤ 2).
fn and_tree(nl: &mut Netlist, terms: &[SignalId]) -> Result<SignalId> {
    debug_assert!(!terms.is_empty());
    if terms.len() == 1 {
        return Ok(terms[0]);
    }
    let mut layer = terms.to_vec();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(nl.add_gate(GateKind::And, &[pair[0], pair[1]])?);
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    Ok(layer[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use fulllock_netlist::Simulator;

    fn host() -> Netlist {
        fulllock_netlist::benchmarks::load("c17").unwrap()
    }

    #[test]
    fn correct_key_never_corrupts() {
        let locked = SarLock::new(5, 1).lock(&host()).unwrap();
        let original = host();
        let sim = Simulator::new(&original).unwrap();
        for row in 0..32u32 {
            let x: Vec<bool> = (0..5).map(|i| row >> i & 1 == 1).collect();
            assert_eq!(
                locked.eval(&x, &locked.correct_key).unwrap(),
                sim.run(&x).unwrap(),
                "row {row}"
            );
        }
    }

    #[test]
    fn wrong_key_corrupts_exactly_one_pattern() {
        let locked = SarLock::new(5, 2).lock(&host()).unwrap();
        let original = host();
        let sim = Simulator::new(&original).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..5 {
            let wrong = loop {
                let k = Key::random(5, &mut rng);
                if k != locked.correct_key {
                    break k;
                }
            };
            let mut corrupted_rows = Vec::new();
            for row in 0..32u32 {
                let x: Vec<bool> = (0..5).map(|i| row >> i & 1 == 1).collect();
                if locked.eval(&x, &wrong).unwrap() != sim.run(&x).unwrap() {
                    corrupted_rows.push(row);
                }
            }
            // SARLock's signature: exactly one corrupted input pattern per
            // wrong key — the pattern equal to the wrong key itself.
            assert_eq!(corrupted_rows.len(), 1, "wrong key {wrong}");
            let bits: Vec<bool> = (0..5).map(|i| corrupted_rows[0] >> i & 1 == 1).collect();
            assert_eq!(Key::from_bits(bits), wrong);
        }
    }

    #[test]
    fn too_many_key_bits_for_host() {
        assert!(matches!(
            SarLock::new(6, 0).lock(&host()),
            Err(LockError::HostTooSmall {
                needed: 6,
                available: 5
            })
        ));
    }

    #[test]
    fn zero_key_bits_rejected() {
        assert!(SarLock::new(0, 0).lock(&host()).is_err());
    }
}
