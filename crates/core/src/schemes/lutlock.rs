//! LUT-Lock: gate replacement with key-programmable LUTs (Kamali et al.,
//! ISVLSI 2018).

use std::collections::HashSet;

use fulllock_netlist::Netlist;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::lut::{LutInstance, MAX_LUT_INPUTS};
use crate::schemes::LockingScheme;
use crate::select::{select_wires, WireSelection};
use crate::{Key, LockError, LockedCircuit, Result};

/// LUT-Lock: replaces selected gates with key-programmable LUTs whose key
/// is the truth table.
///
/// The original proposal pairs this with selection heuristics (FIC/NB2,
/// output-cone balancing); this reproduction uses random selection, which
/// is the configuration the Full-Lock paper compares against in Fig 7 —
/// the salient property there is that LUT MUX trees are *not* cascaded
/// back-to-back, keeping the clause/variable ratio below Full-Lock's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LutLock {
    luts: usize,
    seed: u64,
}

impl LutLock {
    /// A LUT-Lock scheme replacing `luts` gates.
    pub fn new(luts: usize, seed: u64) -> LutLock {
        LutLock { luts, seed }
    }
}

impl LockingScheme for LutLock {
    fn name(&self) -> String {
        format!("lut-lock[{}]", self.luts)
    }

    fn lock(&self, original: &Netlist) -> Result<LockedCircuit> {
        if self.luts == 0 {
            return Err(LockError::BadConfig("luts must be >= 1".into()));
        }
        let mut nl = original.clone();
        let nonce = crate::schemes::key_name_nonce(&nl);
        let data_inputs = nl.inputs().to_vec();
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Candidates: gates with LUT-able fan-in. Draw extra, then filter.
        let eligible: HashSet<_> = nl
            .gates()
            .filter(|&g| {
                let arity = nl.node(g).fanins().len();
                (1..=MAX_LUT_INPUTS).contains(&arity)
            })
            .collect();
        if eligible.len() < self.luts {
            return Err(LockError::HostTooSmall {
                needed: self.luts,
                available: eligible.len(),
            });
        }
        let exclude: HashSet<_> = nl.gates().filter(|g| !eligible.contains(g)).collect();
        let targets = select_wires(
            &nl,
            self.luts,
            WireSelection::Cyclic, // in-place replacement: no cycles
            nl.len(),
            &exclude,
            &mut rng,
        )?;

        let mut key_inputs = Vec::new();
        let mut key_bits = Vec::new();
        for (i, &g) in targets.iter().enumerate() {
            let kind = nl.node(g).gate_kind().expect("targets are gates");
            let inputs = nl.node(g).fanins().to_vec();
            let lut =
                LutInstance::instantiate(&mut nl, &inputs, &format!("keyinput_n{nonce}_l{i}_"))?;
            nl.redirect_fanouts(g, lut.output, &lut.gates)?;
            key_inputs.extend(lut.key_inputs.iter().copied());
            key_bits.extend(lut.key_for_gate(kind));
        }
        let mut locked = LockedCircuit {
            netlist: nl,
            data_inputs,
            key_inputs,
            correct_key: Key::from_bits(key_bits),
        };
        locked
            .netlist
            .set_name(format!("{}_lutlock", original.name()));
        locked.sweep();
        Ok(locked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fulllock_netlist::Simulator;

    #[test]
    fn correct_key_restores_function() {
        let host = fulllock_netlist::benchmarks::load("c17").unwrap();
        let locked = LutLock::new(3, 1).lock(&host).unwrap();
        let sim = Simulator::new(&host).unwrap();
        for row in 0..32u32 {
            let x: Vec<bool> = (0..5).map(|i| row >> i & 1 == 1).collect();
            assert_eq!(
                locked.eval(&x, &locked.correct_key).unwrap(),
                sim.run(&x).unwrap()
            );
        }
    }

    #[test]
    fn key_width_is_sum_of_truth_tables() {
        // c17 is all 2-input NANDs: each LUT costs 4 key bits.
        let host = fulllock_netlist::benchmarks::load("c17").unwrap();
        let locked = LutLock::new(3, 2).lock(&host).unwrap();
        assert_eq!(locked.key_len(), 12);
    }

    #[test]
    fn replaced_gates_are_swept() {
        let host = fulllock_netlist::benchmarks::load("c17").unwrap();
        let locked = LutLock::new(2, 3).lock(&host).unwrap();
        // 6 original NANDs, 2 replaced by (3-gate) MUX trees: 4 + 2·3.
        assert_eq!(locked.netlist.stats().gates, 4 + 2 * 3);
    }

    #[test]
    fn too_many_luts_errors() {
        let host = fulllock_netlist::benchmarks::load("c17").unwrap();
        assert!(LutLock::new(7, 0).lock(&host).is_err());
    }

    #[test]
    fn larger_benchmark_roundtrip() {
        let host = fulllock_netlist::benchmarks::load("c432").unwrap();
        let locked = LutLock::new(16, 4).lock(&host).unwrap();
        let sim = Simulator::new(&host).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        use rand::Rng;
        for _ in 0..20 {
            let x: Vec<bool> = (0..host.inputs().len())
                .map(|_| rng.gen_bool(0.5))
                .collect();
            assert_eq!(
                locked.eval(&x, &locked.correct_key).unwrap(),
                sim.run(&x).unwrap()
            );
        }
    }
}
