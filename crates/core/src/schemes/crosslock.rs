//! Cross-Lock: crossbar-based interconnect locking (Shamsi et al.,
//! GLSVLSI 2018) — the closest prior work to Full-Lock.

use std::collections::HashSet;

use fulllock_netlist::{GateKind, Netlist, SignalId};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};

use crate::schemes::LockingScheme;
use crate::select::{select_wires, WireSelection};
use crate::{Key, LockError, LockedCircuit, Result};

/// Cross-Lock: routes `n` selected wires through an `n×n` crossbar — every
/// output is an `n`-to-1 MUX tree over *all* inputs with `log2 n` select
/// key bits. The correct key programs the permutation that reconnects each
/// wire to its original consumers.
///
/// The published Cross-Lock uses slightly rectangular crossbars (32×36,
/// anti-fuse programmed); this reproduction uses square power-of-two sizes,
/// which preserves the SAT-relevant structure (a one-stage MUX mesh — a
/// *tree* per output rather than Full-Lock's cascaded switch-boxes, which
/// is exactly the structural difference Fig 7's clause/variable comparison
/// attributes the hardness gap to).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossLock {
    size: usize,
    count: usize,
    seed: u64,
}

impl CrossLock {
    /// A Cross-Lock scheme with one `size × size` crossbar (power of two
    /// ≥ 4).
    pub fn new(size: usize, seed: u64) -> CrossLock {
        CrossLock {
            size,
            count: 1,
            seed,
        }
    }

    /// A Cross-Lock scheme inserting `count` crossbars over disjoint wire
    /// sets (the paper's Table 5 sweeps 1–11 crossbars per circuit).
    pub fn with_count(size: usize, count: usize, seed: u64) -> CrossLock {
        CrossLock { size, count, seed }
    }
}

impl LockingScheme for CrossLock {
    fn name(&self) -> String {
        if self.count == 1 {
            format!("cross-lock[{0}x{0}]", self.size)
        } else {
            format!("cross-lock[{1}x{0}x{0}]", self.size, self.count)
        }
    }

    fn lock(&self, original: &Netlist) -> Result<LockedCircuit> {
        if self.size < 4 || !self.size.is_power_of_two() {
            return Err(LockError::BadConfig(format!(
                "crossbar size must be a power of two >= 4, got {}",
                self.size
            )));
        }
        if self.count == 0 {
            return Err(LockError::BadConfig("crossbar count must be >= 1".into()));
        }
        let mut nl = original.clone();
        let nonce = crate::schemes::key_name_nonce(&nl);
        let data_inputs = nl.inputs().to_vec();
        let candidate_limit = nl.len();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.size;
        let sel_bits = n.trailing_zeros() as usize;

        let mut key_inputs = Vec::new();
        let mut key_bits = Vec::new();
        let mut used: HashSet<SignalId> = HashSet::new();
        for bar in 0..self.count {
            let sources = select_wires(
                &nl,
                n,
                WireSelection::Acyclic,
                candidate_limit,
                &used,
                &mut rng,
            )?;
            used.extend(sources.iter().copied());

            // A random permutation assigns each crossbar output a wire;
            // the correct key re-selects it.
            let mut assignment: Vec<usize> = (0..n).collect();
            assignment.shuffle(&mut rng);

            let mut crossbar_gates: Vec<SignalId> = Vec::new();
            let mut outputs = Vec::with_capacity(n);
            for (out_idx, &src_idx) in assignment.iter().enumerate() {
                let sels: Vec<SignalId> = (0..sel_bits)
                    .map(|b| nl.add_input(format!("keyinput_n{nonce}_x{bar}_{out_idx}_{b}")))
                    .collect();
                let out = mux_select_tree(&mut nl, &sources, &sels, &mut crossbar_gates)?;
                outputs.push(out);
                key_inputs.extend(sels);
                for b in 0..sel_bits {
                    key_bits.push(src_idx >> b & 1 == 1);
                }
            }
            for (out_idx, &src_idx) in assignment.iter().enumerate() {
                nl.redirect_fanouts(sources[src_idx], outputs[out_idx], &crossbar_gates)?;
            }
        }

        let mut locked = LockedCircuit {
            netlist: nl,
            data_inputs,
            key_inputs,
            correct_key: Key::from_bits(key_bits),
        };
        locked
            .netlist
            .set_name(format!("{}_crosslock", original.name()));
        locked.sweep();
        Ok(locked)
    }
}

/// Builds an `n`-to-1 MUX tree over `signals` selected by `sels` (bit 0 =
/// least significant): output = `signals[Σ sels_b · 2^b]`.
fn mux_select_tree(
    nl: &mut Netlist,
    signals: &[SignalId],
    sels: &[SignalId],
    gates: &mut Vec<SignalId>,
) -> Result<SignalId> {
    debug_assert_eq!(signals.len(), 1 << sels.len());
    if sels.is_empty() {
        return Ok(signals[0]);
    }
    let (rest, &[top]) = sels.split_at(sels.len() - 1) else {
        unreachable!("sels non-empty")
    };
    let half = signals.len() / 2;
    let low = mux_select_tree(nl, &signals[..half], rest, gates)?;
    let high = mux_select_tree(nl, &signals[half..], rest, gates)?;
    let m = nl.add_gate(GateKind::Mux, &[top, low, high])?;
    gates.push(m);
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fulllock_netlist::random::{generate, RandomCircuitConfig};
    use fulllock_netlist::{topo, Simulator};
    use rand::Rng;

    fn host() -> Netlist {
        generate(RandomCircuitConfig {
            inputs: 16,
            outputs: 8,
            gates: 200,
            max_fanin: 3,
            seed: 8,
        })
        .unwrap()
    }

    #[test]
    fn correct_key_restores_function() {
        let original = host();
        let locked = CrossLock::new(8, 1).lock(&original).unwrap();
        assert!(!topo::is_cyclic(&locked.netlist));
        let sim = Simulator::new(&original).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..30 {
            let x: Vec<bool> = (0..original.inputs().len())
                .map(|_| rng.gen_bool(0.5))
                .collect();
            assert_eq!(
                locked.eval(&x, &locked.correct_key).unwrap(),
                sim.run(&x).unwrap()
            );
        }
    }

    #[test]
    fn key_width_is_n_log_n() {
        let locked = CrossLock::new(8, 2).lock(&host()).unwrap();
        assert_eq!(locked.key_len(), 8 * 3);
    }

    #[test]
    fn wrong_routing_corrupts() {
        let original = host();
        let locked = CrossLock::new(8, 3).lock(&original).unwrap();
        let sim = Simulator::new(&original).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut corrupted = 0;
        for _ in 0..20 {
            let x: Vec<bool> = (0..original.inputs().len())
                .map(|_| rng.gen_bool(0.5))
                .collect();
            let wrong = Key::random(locked.key_len(), &mut rng);
            if locked.eval(&x, &wrong).unwrap() != sim.run(&x).unwrap() {
                corrupted += 1;
            }
        }
        assert!(corrupted > 5);
    }

    #[test]
    fn multiple_crossbars_round_trip() {
        let original = host();
        let locked = CrossLock::with_count(4, 3, 5).lock(&original).unwrap();
        assert_eq!(locked.key_len(), 3 * 4 * 2);
        assert!(!topo::is_cyclic(&locked.netlist));
        let sim = Simulator::new(&original).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..20 {
            let x: Vec<bool> = (0..original.inputs().len())
                .map(|_| rng.gen_bool(0.5))
                .collect();
            assert_eq!(
                locked.eval(&x, &locked.correct_key).unwrap(),
                sim.run(&x).unwrap()
            );
        }
        assert_eq!(CrossLock::with_count(4, 3, 5).name(), "cross-lock[3x4x4]");
    }

    #[test]
    fn zero_count_rejected() {
        assert!(CrossLock::with_count(4, 0, 0).lock(&host()).is_err());
    }

    #[test]
    fn non_power_of_two_rejected() {
        assert!(CrossLock::new(6, 0).lock(&host()).is_err());
        assert!(CrossLock::new(2, 0).lock(&host()).is_err());
    }
}
