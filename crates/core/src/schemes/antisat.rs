//! Anti-SAT: complementary AND-tree blocks (Xie & Srivastava, CHES 2016).

use std::collections::HashSet;

use fulllock_netlist::{GateKind, Netlist, SignalId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::schemes::LockingScheme;
use crate::select::{select_wires, WireSelection};
use crate::{Key, LockError, LockedCircuit, Result};

/// Anti-SAT: a block `f = g(X ⊕ K1) ∧ ḡ(X ⊕ K2)` with `g = AND`, XORed
/// onto an internal wire. When `K1 = K2` the two halves are complementary
/// and `f ≡ 0`; any `K1 ≠ K2` leaves a few input patterns where `f = 1`
/// and the wire is corrupted. Like SARLock it forces exponentially many SAT
/// iterations but has very low output corruption, and its skewed AND trees
/// are the classic target of the SPS attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AntiSat {
    half_bits: usize,
    seed: u64,
}

impl AntiSat {
    /// An Anti-SAT block comparing the first `half_bits` data inputs; the
    /// key is `2 · half_bits` wide (`K1 ‖ K2`).
    pub fn new(half_bits: usize, seed: u64) -> AntiSat {
        AntiSat { half_bits, seed }
    }
}

impl LockingScheme for AntiSat {
    fn name(&self) -> String {
        format!("antisat[{}]", self.half_bits)
    }

    fn lock(&self, original: &Netlist) -> Result<LockedCircuit> {
        if self.half_bits == 0 {
            return Err(LockError::BadConfig("half_bits must be >= 1".into()));
        }
        if original.inputs().len() < self.half_bits {
            return Err(LockError::HostTooSmall {
                needed: self.half_bits,
                available: original.inputs().len(),
            });
        }
        let mut nl = original.clone();
        let data_inputs = nl.inputs().to_vec();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let m = self.half_bits;
        let xs: Vec<SignalId> = data_inputs.iter().take(m).copied().collect();

        let nonce = crate::schemes::key_name_nonce(&nl);
        let k1: Vec<SignalId> = (0..m)
            .map(|i| nl.add_input(format!("keyinput{}", nonce + i)))
            .collect();
        let k2: Vec<SignalId> = (0..m)
            .map(|i| nl.add_input(format!("keyinput{}", nonce + m + i)))
            .collect();

        // g(X ⊕ K1) = AND_i (x_i ⊕ k1_i)
        let mut g_terms = Vec::with_capacity(m);
        let mut gbar_terms = Vec::with_capacity(m);
        for i in 0..m {
            g_terms.push(nl.add_gate(GateKind::Xor, &[xs[i], k1[i]])?);
            gbar_terms.push(nl.add_gate(GateKind::Xor, &[xs[i], k2[i]])?);
        }
        let g = wide_gate(&mut nl, GateKind::And, &g_terms)?;
        let gbar = wide_gate(&mut nl, GateKind::Nand, &gbar_terms)?;
        let f = nl.add_gate(GateKind::And, &[g, gbar])?;

        // XOR the block onto a random internal wire.
        let target = select_wires(
            &nl,
            1,
            WireSelection::Cyclic,
            original.len(),
            &HashSet::new(),
            &mut rng,
        )?[0];
        let corrupted = nl.add_gate(GateKind::Xor, &[target, f])?;
        nl.redirect_fanouts(target, corrupted, &[corrupted])?;

        // Correct key: K1 = K2 = r for any r.
        let r: Vec<bool> = (0..m).map(|_| rng.gen_bool(0.5)).collect();
        let mut key_bits = r.clone();
        key_bits.extend(&r);
        let mut key_inputs = k1;
        key_inputs.extend(k2);
        nl.set_name(format!("{}_antisat", original.name()));
        Ok(LockedCircuit {
            netlist: nl,
            data_inputs,
            key_inputs,
            correct_key: Key::from_bits(key_bits),
        })
    }
}

/// An n-ary gate, emitted directly when the arity allows (n-ary cells keep
/// the AND-tree *visibly* skewed, which is what SPS looks for).
fn wide_gate(nl: &mut Netlist, kind: GateKind, terms: &[SignalId]) -> Result<SignalId> {
    debug_assert!(!terms.is_empty());
    if terms.len() == 1 {
        return Ok(match kind {
            GateKind::Nand => nl.add_gate(GateKind::Not, &[terms[0]])?,
            _ => terms[0],
        });
    }
    Ok(nl.add_gate(kind, terms)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fulllock_netlist::Simulator;

    fn host() -> Netlist {
        fulllock_netlist::benchmarks::load("c17").unwrap()
    }

    #[test]
    fn correct_key_never_corrupts() {
        let locked = AntiSat::new(5, 1).lock(&host()).unwrap();
        let original = host();
        let sim = Simulator::new(&original).unwrap();
        for row in 0..32u32 {
            let x: Vec<bool> = (0..5).map(|i| row >> i & 1 == 1).collect();
            assert_eq!(
                locked.eval(&x, &locked.correct_key).unwrap(),
                sim.run(&x).unwrap()
            );
        }
    }

    #[test]
    fn any_matched_halves_key_is_correct() {
        // Anti-SAT's correct key class: K1 = K2 (any value).
        let locked = AntiSat::new(4, 2).lock(&host()).unwrap();
        let original = host();
        let sim = Simulator::new(&original).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..4 {
            let half: Vec<bool> = (0..4).map(|_| rng.gen_bool(0.5)).collect();
            let mut bits = half.clone();
            bits.extend(&half);
            let key = Key::from_bits(bits);
            for row in 0..32u32 {
                let x: Vec<bool> = (0..5).map(|i| row >> i & 1 == 1).collect();
                assert_eq!(locked.eval(&x, &key).unwrap(), sim.run(&x).unwrap());
            }
        }
    }

    #[test]
    fn mismatched_halves_corrupt_somewhere() {
        let locked = AntiSat::new(5, 4).lock(&host()).unwrap();
        let original = host();
        let sim = Simulator::new(&original).unwrap();
        // K1 = 00000, K2 = 11111: g(X)=AND(x), gbar = NAND(~x); both 1 at
        // X=11111 unless... check at least one corrupted pattern exists.
        let mut bits = vec![false; 5];
        bits.extend(vec![true; 5]);
        let wrong = Key::from_bits(bits);
        let corrupts = (0..32u32).any(|row| {
            let x: Vec<bool> = (0..5).map(|i| row >> i & 1 == 1).collect();
            locked.eval(&x, &wrong).unwrap() != sim.run(&x).unwrap()
        });
        assert!(corrupts);
    }

    #[test]
    fn key_width_is_twice_half() {
        let locked = AntiSat::new(3, 0).lock(&host()).unwrap();
        assert_eq!(locked.key_len(), 6);
    }
}
