//! FLL: fault-analysis-based logic locking (Rajendran et al., IEEE TC
//! 2015) — XOR/XNOR key gates placed at high fault-impact wires.

use fulllock_netlist::{GateKind, Netlist, SignalId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::schemes::LockingScheme;
use crate::{Key, LockError, LockedCircuit, Result};

/// Fault-analysis-based locking: instead of RLL's random wire choice, key
/// gates go on the wires whose corruption would propagate widest — the
/// heuristic is the stuck-at fault impact, approximated here as
/// (reachable primary outputs) × (fan-out count + 1).
///
/// Against the SAT attack FLL fares no better than RLL (the attack does
/// not care *where* key gates sit), which is exactly the historical
/// motivation for the SAT-resistant schemes this repository reproduces —
/// but its wrong-key corruption is higher, making it the strongest of the
/// pre-SAT-era baselines on that axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fll {
    key_bits: usize,
    seed: u64,
}

impl Fll {
    /// An FLL scheme inserting `key_bits` key gates.
    pub fn new(key_bits: usize, seed: u64) -> Fll {
        Fll { key_bits, seed }
    }
}

impl LockingScheme for Fll {
    fn name(&self) -> String {
        format!("fll[{}]", self.key_bits)
    }

    fn lock(&self, original: &Netlist) -> Result<LockedCircuit> {
        if self.key_bits == 0 {
            return Err(LockError::BadConfig("key_bits must be >= 1".into()));
        }
        let mut nl = original.clone();
        let nonce = crate::schemes::key_name_nonce(&nl);
        let data_inputs = nl.inputs().to_vec();
        let mut rng = StdRng::seed_from_u64(self.seed);

        let mut ranked = rank_by_impact(&nl);
        if ranked.len() < self.key_bits {
            return Err(LockError::HostTooSmall {
                needed: self.key_bits,
                available: ranked.len(),
            });
        }
        ranked.truncate(self.key_bits);

        let mut key_inputs = Vec::with_capacity(self.key_bits);
        let mut key_bits = Vec::with_capacity(self.key_bits);
        for (i, (w, _)) in ranked.into_iter().enumerate() {
            let k = nl.add_input(format!("keyinput{}", nonce + i));
            let xnor = rng.gen_bool(0.5);
            let kind = if xnor { GateKind::Xnor } else { GateKind::Xor };
            let g = nl.add_gate(kind, &[w, k])?;
            nl.redirect_fanouts(w, g, &[g])?;
            key_inputs.push(k);
            key_bits.push(xnor);
        }
        nl.set_name(format!("{}_fll", original.name()));
        Ok(LockedCircuit {
            netlist: nl,
            data_inputs,
            key_inputs,
            correct_key: Key::from_bits(key_bits),
        })
    }
}

/// Gates ranked by descending fault impact: (reachable POs) × (fanout+1).
fn rank_by_impact(netlist: &Netlist) -> Vec<(SignalId, usize)> {
    let fanouts = netlist.fanouts();
    // Reachable-PO counts via reverse topological accumulation would
    // over-count through reconvergence; a per-gate BFS is exact and the
    // suite circuits are small enough.
    let output_set: Vec<bool> = {
        let mut set = vec![false; netlist.len()];
        for &o in netlist.outputs() {
            set[o.index()] = true;
        }
        set
    };
    let mut ranked: Vec<(SignalId, usize)> = netlist
        .gates()
        .filter(|&g| !fanouts[g.index()].is_empty() || output_set[g.index()])
        .map(|g| {
            let mut reachable_pos = 0usize;
            let mut visited = vec![false; netlist.len()];
            let mut stack = vec![g];
            visited[g.index()] = true;
            while let Some(s) = stack.pop() {
                if output_set[s.index()] {
                    reachable_pos += 1;
                }
                for &t in &fanouts[s.index()] {
                    if !visited[t.index()] {
                        visited[t.index()] = true;
                        stack.push(t);
                    }
                }
            }
            let impact = reachable_pos * (fanouts[g.index()].len() + 1);
            (g, impact)
        })
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corruption;
    use crate::schemes::Rll;
    use fulllock_netlist::{benchmarks, Simulator};

    #[test]
    fn correct_key_restores_function() {
        let host = benchmarks::load("c432").unwrap();
        let locked = Fll::new(16, 1).lock(&host).unwrap();
        let sim = Simulator::new(&host).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..30 {
            let x: Vec<bool> = (0..host.inputs().len())
                .map(|_| rng.gen_bool(0.5))
                .collect();
            assert_eq!(
                locked.eval(&x, &locked.correct_key).unwrap(),
                sim.run(&x).unwrap()
            );
        }
    }

    #[test]
    fn impact_ranking_prefers_wide_cones() {
        // A gate feeding every output must outrank a gate feeding one.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let wide = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let o1 = nl.add_gate(GateKind::Not, &[wide]).unwrap();
        let o2 = nl.add_gate(GateKind::Buf, &[wide]).unwrap();
        let narrow = nl.add_gate(GateKind::Or, &[a, b]).unwrap();
        let o3 = nl.add_gate(GateKind::Xor, &[narrow, o2]).unwrap();
        nl.mark_output(o1);
        nl.mark_output(o3);
        let ranked = rank_by_impact(&nl);
        let pos = |s: SignalId| ranked.iter().position(|&(g, _)| g == s).unwrap();
        assert!(pos(wide) < pos(narrow), "wide cone must rank first");
    }

    #[test]
    fn fll_corrupts_at_least_as_much_as_rll() {
        let host = benchmarks::load("c880").unwrap();
        let fll = Fll::new(16, 3).lock(&host).unwrap();
        let rll = Rll::new(16, 3).lock(&host).unwrap();
        let fll_err = corruption::measure(&fll, &host, 8, 32, 4)
            .unwrap()
            .bit_error_rate();
        let rll_err = corruption::measure(&rll, &host, 8, 32, 4)
            .unwrap()
            .bit_error_rate();
        // The heuristic's whole point: impact-placed key gates corrupt
        // more output bits than random placement (allow a small epsilon of
        // sampling noise).
        assert!(fll_err + 0.02 >= rll_err, "FLL {fll_err} vs RLL {rll_err}");
    }

    #[test]
    fn deterministic_and_named() {
        let host = benchmarks::load("c17").unwrap();
        let a = Fll::new(3, 0).lock(&host).unwrap();
        let b = Fll::new(3, 0).lock(&host).unwrap();
        assert_eq!(a.netlist, b.netlist);
        assert_eq!(Fll::new(3, 0).name(), "fll[3]");
    }

    #[test]
    fn zero_bits_rejected() {
        let host = benchmarks::load("c17").unwrap();
        assert!(Fll::new(0, 0).lock(&host).is_err());
    }
}
