//! Locking schemes: the common trait and the baseline schemes the paper
//! compares against (Fig 7, Table 5).
//!
//! | Scheme | Family | Key idea |
//! |--------|--------|----------|
//! | [`Rll`] | primitive | XOR/XNOR key gates on random wires (EPIC) |
//! | [`Fll`] | primitive | XOR/XNOR key gates at high fault-impact wires |
//! | [`SarLock`] | point-function | one flipped input pattern per wrong key |
//! | [`AntiSat`] | point-function | complementary AND-tree block |
//! | [`LutLock`] | LUT-based | gates replaced by key-programmable LUTs |
//! | [`CrossLock`] | interconnect | crossbar (MUX mesh) route obfuscation |
//! | [`FullLock`](crate::FullLock) | interconnect+logic | PLRs (this paper) |

mod antisat;
mod crosslock;
mod fll;
mod lutlock;
mod rll;
mod sarlock;

pub use antisat::AntiSat;
pub use crosslock::CrossLock;
pub use fll::Fll;
pub use lutlock::LutLock;
pub use rll::Rll;
pub use sarlock::SarLock;

use fulllock_netlist::Netlist;

use crate::{LockedCircuit, Result};

/// A nonce making key-input names unique when a circuit is locked more
/// than once (compound locking): the count of already-present `keyinput*`
/// primary inputs.
pub(crate) fn key_name_nonce(netlist: &Netlist) -> usize {
    netlist
        .inputs()
        .iter()
        .filter(|&&i| netlist.signal_name(i).starts_with("keyinput"))
        .count()
}

/// A logic-locking scheme: a deterministic transformation from a plain
/// netlist to a [`LockedCircuit`] with a known correct key.
///
/// Implementations must be deterministic in their configuration (all use
/// explicit RNG seeds) so experiments are reproducible.
pub trait LockingScheme {
    /// Human-readable name, including the salient parameters
    /// (e.g. `full-lock[16x16+8x8]`).
    fn name(&self) -> String;

    /// Locks `netlist`.
    ///
    /// # Errors
    ///
    /// Returns a [`LockError`](crate::LockError) when the host circuit
    /// cannot accommodate the configuration (too few wires, impossible
    /// sizes, failed acyclic selection).
    fn lock(&self, netlist: &Netlist) -> Result<LockedCircuit>;
}

#[cfg(test)]
mod compound_tests {
    use super::*;
    use crate::{FullLock, FullLockConfig};
    use fulllock_netlist::{benchmarks, Simulator};

    /// Locking an already-locked netlist (compound locking) must not
    /// collide key names, and evaluating through both layers with both
    /// correct keys must restore the original.
    #[test]
    fn compound_locking_composes() {
        let original = benchmarks::load("c432").unwrap();
        let first = Rll::new(8, 1).lock(&original).unwrap();
        let second = FullLock::new(FullLockConfig::single_plr(8))
            .lock(&first.netlist)
            .unwrap();
        second.netlist.check().unwrap();

        // The outer circuit's data inputs are the inner circuit's full
        // input set (data + inner keys).
        let sim = Simulator::new(&original).unwrap();
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..16 {
            let x: Vec<bool> = (0..original.inputs().len())
                .map(|_| rng.gen_bool(0.5))
                .collect();
            // Inner data = x; inner keys = first.correct_key. Assemble the
            // outer data vector in the inner netlist's input order.
            let inner_full = first.assemble_inputs(&x, &first.correct_key).unwrap();
            let got = second.eval(&inner_full, &second.correct_key).unwrap();
            assert_eq!(got, sim.run(&x).unwrap());
        }
    }
}
