//! Keys and locked circuits.

use std::fmt;

use fulllock_netlist::cyclic::{CyclicEval, CyclicSimulator};
use fulllock_netlist::{Netlist, SignalId, Simulator};
use rand::Rng;

use crate::{LockError, Result};

/// A locking key: an ordered bit vector, one bit per key input.
///
/// # Example
///
/// ```
/// use fulllock_locking::Key;
///
/// let key = Key::from_bits([true, false, true, true]);
/// assert_eq!(key.len(), 4);
/// assert_eq!(format!("{key}"), "1011");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Key {
    bits: Vec<bool>,
}

impl Key {
    /// Creates a key from bits (first bit ↔ first key input).
    pub fn from_bits(bits: impl IntoIterator<Item = bool>) -> Key {
        Key {
            bits: bits.into_iter().collect(),
        }
    }

    /// An all-zero key of the given width.
    pub fn zeros(len: usize) -> Key {
        Key {
            bits: vec![false; len],
        }
    }

    /// A uniformly random key of the given width.
    pub fn random(len: usize, rng: &mut impl Rng) -> Key {
        Key {
            bits: (0..len).map(|_| rng.gen_bool(0.5)).collect(),
        }
    }

    /// Number of key bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the key has no bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The bits, first key input first.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Flips one bit (useful for building near-miss wrong keys in tests).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn flip(&mut self, index: usize) {
        self.bits[index] = !self.bits[index];
    }

    /// Hamming distance to another key of the same width.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn hamming_distance(&self, other: &Key) -> usize {
        assert_eq!(self.len(), other.len(), "keys must have equal width");
        self.bits
            .iter()
            .zip(&other.bits)
            .filter(|(a, b)| a != b)
            .count()
    }
}

impl FromIterator<bool> for Key {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Key {
        Key::from_bits(iter)
    }
}

impl std::str::FromStr for Key {
    type Err = LockError;

    /// Parses a binary key string like `"1011"` (first character ↔ first
    /// key input), the format [`Key`]'s `Display` produces.
    fn from_str(s: &str) -> Result<Key> {
        s.chars()
            .map(|c| match c {
                '0' => Ok(false),
                '1' => Ok(true),
                other => Err(LockError::BadConfig(format!(
                    "key strings are binary; found {other:?}"
                ))),
            })
            .collect()
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.bits {
            write!(f, "{}", u8::from(b))?;
        }
        Ok(())
    }
}

/// A locked netlist: the obfuscated circuit, which key inputs drive it, and
/// the correct key.
///
/// The netlist's primary inputs are the disjoint union of `data_inputs` and
/// `key_inputs` (in whatever interleaving the scheme produced); evaluation
/// helpers take the data pattern and key separately and assemble the full
/// input vector.
#[derive(Debug, Clone)]
pub struct LockedCircuit {
    /// The locked netlist (may be cyclic for cyclic insertion modes).
    pub netlist: Netlist,
    /// The original circuit's inputs, in original order.
    pub data_inputs: Vec<SignalId>,
    /// The key inputs, in key-bit order.
    pub key_inputs: Vec<SignalId>,
    /// The key that restores the original functionality.
    pub correct_key: Key,
}

impl LockedCircuit {
    /// Number of key bits.
    pub fn key_len(&self) -> usize {
        self.key_inputs.len()
    }

    /// Assembles a full primary-input vector from a data pattern and a key.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::KeyLength`] for a mis-sized key and propagates
    /// [`LockError::Netlist`] for a mis-sized data pattern (detected at
    /// simulation time).
    pub fn assemble_inputs(&self, data: &[bool], key: &Key) -> Result<Vec<bool>> {
        if key.len() != self.key_inputs.len() {
            return Err(LockError::KeyLength {
                expected: self.key_inputs.len(),
                got: key.len(),
            });
        }
        if data.len() != self.data_inputs.len() {
            return Err(LockError::Netlist(
                fulllock_netlist::NetlistError::InputCount {
                    expected: self.data_inputs.len(),
                    got: data.len(),
                },
            ));
        }
        let mut values = vec![false; self.netlist.inputs().len()];
        let position_of = |sig: SignalId| {
            self.netlist
                .inputs()
                .iter()
                .position(|&i| i == sig)
                .expect("data/key inputs are primary inputs")
        };
        for (slot, &sig) in self.data_inputs.iter().enumerate() {
            values[position_of(sig)] = data[slot];
        }
        for (slot, &sig) in self.key_inputs.iter().enumerate() {
            values[position_of(sig)] = key.bits()[slot];
        }
        Ok(values)
    }

    /// Evaluates the locked circuit (acyclic netlists only).
    ///
    /// # Errors
    ///
    /// Returns [`LockError::KeyLength`] for a mis-sized key and
    /// [`LockError::Netlist`] for cyclic netlists or mis-sized data.
    pub fn eval(&self, data: &[bool], key: &Key) -> Result<Vec<bool>> {
        let inputs = self.assemble_inputs(data, key)?;
        let sim = Simulator::new(&self.netlist)?;
        Ok(sim.run(&inputs)?)
    }

    /// Evaluates with ternary fixed-point semantics (works for cyclic
    /// netlists; unsettled outputs come back as `X`).
    ///
    /// # Errors
    ///
    /// Returns [`LockError::KeyLength`] for a mis-sized key and
    /// [`LockError::Netlist`] for mis-sized data.
    pub fn eval_cyclic(&self, data: &[bool], key: &Key) -> Result<CyclicEval> {
        let inputs = self.assemble_inputs(data, key)?;
        let sim = CyclicSimulator::new(&self.netlist);
        Ok(sim.run(&inputs)?)
    }

    /// Formally proves (by SAT-based equivalence checking) that this
    /// circuit under `key` computes exactly `original` — the exhaustive
    /// counterpart of sampled verification.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::KeyLength`] for a mis-sized key and
    /// [`LockError::BadConfig`] if either netlist is cyclic or the data
    /// interface does not match.
    ///
    /// # Example
    ///
    /// ```
    /// use fulllock_locking::{LockingScheme, Rll};
    /// use fulllock_netlist::benchmarks;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let original = benchmarks::load("c17")?;
    /// let locked = Rll::new(3, 0).lock(&original)?;
    /// let verdict = locked.prove_key(&locked.correct_key.clone(), &original)?;
    /// assert!(verdict.is_equivalent());
    /// # Ok(())
    /// # }
    /// ```
    pub fn prove_key(
        &self,
        key: &Key,
        original: &Netlist,
    ) -> Result<fulllock_sat::equiv::EquivResult> {
        if key.len() != self.key_inputs.len() {
            return Err(LockError::KeyLength {
                expected: self.key_inputs.len(),
                got: key.len(),
            });
        }
        let position_of = |sig: SignalId| {
            self.netlist
                .inputs()
                .iter()
                .position(|&i| i == sig)
                .expect("key inputs are primary inputs")
        };
        let constants: Vec<(usize, bool)> = self
            .key_inputs
            .iter()
            .zip(key.bits())
            .map(|(&sig, &bit)| (position_of(sig), bit))
            .collect();
        // `check_under_constants` matches the remaining (data) inputs of
        // the locked netlist positionally with the original's inputs; our
        // schemes preserve the original input order, assert it anyway.
        let key_positions: Vec<usize> = constants.iter().map(|&(p, _)| p).collect();
        let free_positions: Vec<usize> = (0..self.netlist.inputs().len())
            .filter(|p| !key_positions.contains(p))
            .collect();
        let expected: Vec<usize> = self.data_inputs.iter().map(|&d| position_of(d)).collect();
        if free_positions != expected {
            return Err(LockError::BadConfig(
                "data inputs are not in original order; sampled verification only".into(),
            ));
        }
        fulllock_sat::equiv::check_under_constants(&self.netlist, &constants, original, None)
            .map_err(|e| LockError::BadConfig(e.to_string()))
    }

    /// Removes dead logic (gates no longer reachable from any output),
    /// remapping `data_inputs` / `key_inputs` accordingly.
    pub fn sweep(&mut self) {
        let _ = self.sweep_with_remap();
    }

    /// Resynthesizes the locked netlist with the logic optimizer
    /// ([`fulllock_netlist::opt`]): constant folding, identities, and
    /// structural hashing. Functionality under every key is preserved (the
    /// optimizer never sees key values). Returns the optimizer statistics.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::Netlist`] for cyclic locked netlists (cyclic
    /// insertion mode cannot be resynthesized by the acyclic pass).
    pub fn optimize(&mut self) -> Result<fulllock_netlist::opt::OptStats> {
        let optimized = fulllock_netlist::opt::optimize(&self.netlist)?;
        let remap_sig =
            |s: SignalId| optimized.remap[s.index()].expect("primary inputs survive optimization");
        self.data_inputs = self.data_inputs.iter().map(|&s| remap_sig(s)).collect();
        self.key_inputs = self.key_inputs.iter().map(|&s| remap_sig(s)).collect();
        self.netlist = optimized.netlist;
        Ok(optimized.stats)
    }

    /// Like [`LockedCircuit::sweep`], returning the old-index → new-id remap
    /// table so callers holding pre-sweep [`SignalId`]s (e.g. insertion
    /// traces) can follow along.
    pub fn sweep_with_remap(&mut self) -> Vec<Option<SignalId>> {
        let (swept, remap) = self.netlist.sweep();
        let remap_sig = |s: SignalId| remap[s.index()].expect("primary inputs survive sweeping");
        self.data_inputs = self.data_inputs.iter().map(|&s| remap_sig(s)).collect();
        self.key_inputs = self.key_inputs.iter().map(|&s| remap_sig(s)).collect();
        self.netlist = swept;
        remap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fulllock_netlist::GateKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_locked() -> LockedCircuit {
        // y = a XOR k : correct key 0 makes y = a.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let k = nl.add_input("keyinput0");
        let y = nl.add_gate(GateKind::Xor, &[a, k]).unwrap();
        nl.mark_output(y);
        LockedCircuit {
            netlist: nl,
            data_inputs: vec![a],
            key_inputs: vec![k],
            correct_key: Key::zeros(1),
        }
    }

    #[test]
    fn key_display_and_flip() {
        let mut k = Key::from_bits([true, false]);
        assert_eq!(format!("{k}"), "10");
        k.flip(1);
        assert_eq!(format!("{k}"), "11");
    }

    #[test]
    fn key_parses_from_its_display() {
        let key = Key::from_bits([true, false, true]);
        let parsed: Key = format!("{key}").parse().unwrap();
        assert_eq!(parsed, key);
        assert!("10x1".parse::<Key>().is_err());
        assert_eq!("".parse::<Key>().unwrap(), Key::zeros(0));
    }

    #[test]
    fn key_hamming() {
        let a = Key::from_bits([true, false, true]);
        let b = Key::from_bits([false, false, true]);
        assert_eq!(a.hamming_distance(&b), 1);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    fn random_key_is_deterministic_in_seed() {
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        assert_eq!(Key::random(32, &mut r1), Key::random(32, &mut r2));
    }

    #[test]
    fn eval_with_correct_and_wrong_key() {
        let lc = xor_locked();
        assert_eq!(lc.eval(&[true], &lc.correct_key).unwrap(), vec![true]);
        assert_eq!(lc.eval(&[false], &lc.correct_key).unwrap(), vec![false]);
        let wrong = Key::from_bits([true]);
        assert_eq!(lc.eval(&[true], &wrong).unwrap(), vec![false]);
    }

    #[test]
    fn mis_sized_key_errors() {
        let lc = xor_locked();
        assert!(matches!(
            lc.eval(&[true], &Key::zeros(2)),
            Err(LockError::KeyLength {
                expected: 1,
                got: 2
            })
        ));
    }

    #[test]
    fn mis_sized_data_errors() {
        let lc = xor_locked();
        assert!(lc.eval(&[], &Key::zeros(1)).is_err());
    }

    #[test]
    fn optimize_preserves_locked_function() {
        use crate::schemes::LockingScheme;
        let original = fulllock_netlist::benchmarks::load("c432").unwrap();
        let mut locked = crate::FullLock::new(crate::FullLockConfig::single_plr(8))
            .lock(&original)
            .unwrap();
        let before = locked.netlist.stats().gates;
        let correct = locked.correct_key.clone();
        let stats = locked.optimize().unwrap();
        assert_eq!(stats.gates_before, before);
        assert!(stats.gates_after <= before);
        // Still provably equivalent under the correct key.
        assert!(locked
            .prove_key(&correct, &original)
            .unwrap()
            .is_equivalent());
    }

    #[test]
    fn sweep_remaps_inputs() {
        let mut lc = xor_locked();
        // Add a dead gate, then sweep.
        let a = lc.data_inputs[0];
        lc.netlist.add_gate(GateKind::Not, &[a]).unwrap();
        let gates_before = lc.netlist.stats().gates;
        lc.sweep();
        assert_eq!(lc.netlist.stats().gates, gates_before - 1);
        assert_eq!(lc.eval(&[true], &Key::zeros(1)).unwrap(), vec![true]);
    }
}
