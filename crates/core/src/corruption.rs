//! Output-corruption measurement.
//!
//! One of the paper's claims (§2, §5) is that Full-Lock — unlike the
//! iteration-blowing schemes (SARLock/Anti-SAT) — exhibits *high output
//! corruption*: an unactivated chip with a wrong key is badly broken, so
//! approximate attacks that tolerate a small error rate gain nothing.
//! [`measure`] quantifies this as the fraction of (wrong key, input
//! pattern) trials whose outputs differ from the oracle.

use fulllock_netlist::{topo, Netlist, Simulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Key, LockedCircuit, Result};

/// Result of a corruption measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptionReport {
    /// Number of (key, pattern) trials evaluated.
    pub trials: usize,
    /// Trials where at least one output differed from the oracle (or
    /// failed to settle, for cyclic locked netlists).
    pub corrupted: usize,
    /// Total output bits compared.
    pub output_bits: usize,
    /// Output bits that differed (unsettled bits count as wrong).
    pub wrong_bits: usize,
}

impl CorruptionReport {
    /// Fraction of trials with any output error (the scheme's *error
    /// rate* as AppSAT sees it).
    pub fn pattern_error_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.corrupted as f64 / self.trials as f64
        }
    }

    /// Fraction of individual output bits in error.
    pub fn bit_error_rate(&self) -> f64 {
        if self.output_bits == 0 {
            0.0
        } else {
            self.wrong_bits as f64 / self.output_bits as f64
        }
    }
}

/// Measures output corruption of `locked` against the `original` oracle
/// under `keys` uniformly random wrong keys × `patterns` random inputs.
///
/// Keys that happen to equal the correct key are re-drawn. Works for both
/// acyclic and cyclic locked netlists (cyclic ones are evaluated with
/// ternary fixed-point semantics; an output stuck at `X` counts as wrong).
///
/// # Errors
///
/// Propagates evaluation errors (mis-sized circuits).
///
/// # Example
///
/// ```
/// use fulllock_locking::{corruption, FullLock, FullLockConfig, LockingScheme};
/// use fulllock_netlist::random::{generate, RandomCircuitConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let host = generate(RandomCircuitConfig { gates: 120, ..Default::default() })?;
/// let locked = FullLock::new(FullLockConfig::single_plr(8)).lock(&host)?;
/// let report = corruption::measure(&locked, &host, 10, 16, 0)?;
/// assert!(report.pattern_error_rate() > 0.3); // high corruption
/// # Ok(())
/// # }
/// ```
pub fn measure(
    locked: &LockedCircuit,
    original: &Netlist,
    keys: usize,
    patterns: usize,
    seed: u64,
) -> Result<CorruptionReport> {
    let oracle = Simulator::new(original)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let cyclic = topo::is_cyclic(&locked.netlist);
    let plain_sim = if cyclic {
        None
    } else {
        Some(Simulator::new(&locked.netlist)?)
    };

    let mut report = CorruptionReport {
        trials: 0,
        corrupted: 0,
        output_bits: 0,
        wrong_bits: 0,
    };
    for _ in 0..keys {
        let wrong = loop {
            let k = Key::random(locked.key_len(), &mut rng);
            if k != locked.correct_key {
                break k;
            }
        };
        for _ in 0..patterns {
            let x: Vec<bool> = (0..original.inputs().len())
                .map(|_| rng.gen_bool(0.5))
                .collect();
            let want = oracle.run(&x)?;
            let wrong_bits: usize = if let Some(sim) = &plain_sim {
                let full = locked.assemble_inputs(&x, &wrong)?;
                let got = sim.run(&full)?;
                got.iter().zip(&want).filter(|(g, w)| g != w).count()
            } else {
                let eval = locked.eval_cyclic(&x, &wrong)?;
                eval.outputs
                    .iter()
                    .zip(&want)
                    .filter(|(g, w)| g.to_bool() != Some(**w))
                    .count()
            };
            report.trials += 1;
            report.output_bits += want.len();
            report.wrong_bits += wrong_bits;
            if wrong_bits > 0 {
                report.corrupted += 1;
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::{LockingScheme, Rll, SarLock};
    use crate::{FullLock, FullLockConfig};
    use fulllock_netlist::random::{generate, RandomCircuitConfig};

    fn host() -> Netlist {
        generate(RandomCircuitConfig {
            inputs: 16,
            outputs: 8,
            gates: 150,
            max_fanin: 3,
            seed: 42,
        })
        .unwrap()
    }

    #[test]
    fn sarlock_corruption_is_tiny() {
        let original = host();
        let locked = SarLock::new(12, 0).lock(&original).unwrap();
        let report = measure(&locked, &original, 8, 32, 1).unwrap();
        // One flipped pattern out of 2^12 per wrong key: sampling 32
        // random patterns should essentially never hit it.
        assert!(
            report.pattern_error_rate() < 0.05,
            "rate {}",
            report.pattern_error_rate()
        );
    }

    #[test]
    fn fulllock_corruption_is_high() {
        let original = host();
        let locked = FullLock::new(FullLockConfig::single_plr(8))
            .lock(&original)
            .unwrap();
        let report = measure(&locked, &original, 8, 32, 2).unwrap();
        assert!(
            report.pattern_error_rate() > 0.5,
            "rate {}",
            report.pattern_error_rate()
        );
        assert!(report.bit_error_rate() > 0.0);
    }

    #[test]
    fn fulllock_beats_sarlock_on_corruption() {
        let original = host();
        let fl = FullLock::new(FullLockConfig::single_plr(8))
            .lock(&original)
            .unwrap();
        let sl = SarLock::new(12, 0).lock(&original).unwrap();
        let fl_report = measure(&fl, &original, 6, 24, 3).unwrap();
        let sl_report = measure(&sl, &original, 6, 24, 3).unwrap();
        assert!(fl_report.pattern_error_rate() > sl_report.pattern_error_rate());
    }

    #[test]
    fn rll_corruption_is_moderate() {
        let original = host();
        let locked = Rll::new(16, 1).lock(&original).unwrap();
        let report = measure(&locked, &original, 8, 32, 4).unwrap();
        assert!(report.pattern_error_rate() > 0.2);
    }

    #[test]
    fn report_rates_handle_empty() {
        let r = CorruptionReport {
            trials: 0,
            corrupted: 0,
            output_bits: 0,
            wrong_bits: 0,
        };
        assert_eq!(r.pattern_error_rate(), 0.0);
        assert_eq!(r.bit_error_rate(), 0.0);
    }
}
