//! Full-Lock: SAT-hard logic locking with fully configurable logic and
//! routing blocks (DAC 2019), plus the baseline schemes it is evaluated
//! against.
//!
//! The paper's contribution is a family of *PLRs* — Programmable Logic and
//! Routing blocks — built from:
//!
//! * [`cln`] — key-Configurable Logarithmic-based Networks: cascaded 2×2
//!   MUX switch-boxes with key-configurable inverters, in blocking
//!   (shuffle/banyan) or almost non-blocking (`LOG_{N, log2(N)-2, 1}`)
//!   topologies;
//! * [`lut`] — key-programmable LUTs replacing the gates around the CLN;
//! * [`FullLock`] — the end-to-end scheme: wire selection ([`select`]),
//!   leading-gate negation (*twisting*), CLN routing, LUT replacement, and
//!   correct-key derivation.
//!
//! Baselines for the comparative experiments live in [`schemes`]:
//! [`Rll`], [`SarLock`], [`AntiSat`], [`LutLock`], and [`CrossLock`], all
//! behind the common [`LockingScheme`] trait. Output-corruption measurement
//! (the property separating Full-Lock from point-function schemes) is in
//! [`corruption`].
//!
//! # Example
//!
//! ```
//! use fulllock_locking::{FullLock, FullLockConfig, LockingScheme};
//! use fulllock_netlist::benchmarks;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let host = benchmarks::load("c432")?;
//! let locked = FullLock::new(FullLockConfig::single_plr(8)).lock(&host)?;
//! println!("{} key bits protect {}", locked.key_len(), host.name());
//! assert!(locked.key_len() >= 8);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cln;
pub mod corruption;
mod error;
mod fulllock;
mod key;
pub mod lut;
pub mod schemes;
pub mod select;

pub use cln::{ClnInstance, ClnStructure, ClnTopology, SwbState};
pub use error::LockError;
pub use fulllock::{FullLock, FullLockConfig, FullLockTrace, PlrSpec, PlrTrace};
pub use key::{Key, LockedCircuit};
pub use lut::LutInstance;
pub use schemes::{AntiSat, CrossLock, Fll, LockingScheme, LutLock, Rll, SarLock};
pub use select::WireSelection;

/// Crate-wide result alias.
pub type Result<T, E = LockError> = std::result::Result<T, E>;
