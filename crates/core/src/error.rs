use std::fmt;

/// Errors produced by the locking schemes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LockError {
    /// A CLN/crossbar/LUT was configured with impossible parameters.
    BadConfig(String),
    /// The host circuit cannot accommodate the requested lock (e.g. fewer
    /// candidate wires than the CLN has inputs).
    HostTooSmall {
        /// What the scheme needed.
        needed: usize,
        /// What the host circuit offered.
        available: usize,
    },
    /// Acyclic wire selection failed to find a mutually-independent wire set
    /// after the retry budget; use cyclic selection or a smaller CLN.
    SelectionFailed(String),
    /// A key had the wrong number of bits.
    KeyLength {
        /// Bits the circuit expects.
        expected: usize,
        /// Bits supplied.
        got: usize,
    },
    /// Propagated netlist error.
    Netlist(fulllock_netlist::NetlistError),
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::BadConfig(msg) => write!(f, "invalid lock configuration: {msg}"),
            LockError::HostTooSmall { needed, available } => write!(
                f,
                "host circuit too small: needed {needed} candidate wires, found {available}"
            ),
            LockError::SelectionFailed(msg) => write!(f, "wire selection failed: {msg}"),
            LockError::KeyLength { expected, got } => {
                write!(f, "expected a {expected}-bit key, got {got} bits")
            }
            LockError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl std::error::Error for LockError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LockError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fulllock_netlist::NetlistError> for LockError {
    fn from(e: fulllock_netlist::NetlistError) -> Self {
        LockError::Netlist(e)
    }
}
