//! Signal-probability analysis.
//!
//! The Signal Probability Skew (SPS) attack locates Anti-SAT style blocks by
//! finding internal wires whose probability of being 1 is extremely skewed
//! (an N-input AND tree output is 1 with probability `2^-N`). Two estimators
//! are provided:
//!
//! * [`static_probabilities`] — one topological pass propagating
//!   probabilities under an independence assumption (exact for trees, an
//!   approximation under reconvergent fan-out);
//! * [`monte_carlo_probabilities`] — 64-way bit-parallel random simulation,
//!   unbiased for any DAG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{topo, GateKind, Netlist, Result, Simulator};

/// Propagates `P(signal = 1)` through the netlist in one topological pass,
/// assuming fan-ins are independent. Primary inputs are assigned
/// probability 0.5. Returns one probability per signal, indexed by
/// [`SignalId::index`](crate::SignalId::index).
///
/// # Errors
///
/// Returns [`NetlistError::Cyclic`](crate::NetlistError::Cyclic) for cyclic
/// netlists.
///
/// # Example
///
/// ```
/// use fulllock_netlist::{GateKind, Netlist, probability};
///
/// # fn main() -> Result<(), fulllock_netlist::NetlistError> {
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let g = nl.add_gate(GateKind::And, &[a, b])?;
/// let p = probability::static_probabilities(&nl)?;
/// assert!((p[g.index()] - 0.25).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn static_probabilities(netlist: &Netlist) -> Result<Vec<f64>> {
    let order = topo::topo_order(netlist)?;
    let mut prob = vec![0.5f64; netlist.len()];
    for s in order {
        let node = netlist.node(s);
        let Some(kind) = node.gate_kind() else {
            continue;
        };
        let p: Vec<f64> = node.fanins().iter().map(|f| prob[f.index()]).collect();
        prob[s.index()] = match kind {
            GateKind::Const0 => 0.0,
            GateKind::Const1 => 1.0,
            GateKind::Buf => p[0],
            GateKind::Not => 1.0 - p[0],
            GateKind::And => p.iter().product(),
            GateKind::Nand => 1.0 - p.iter().product::<f64>(),
            GateKind::Or => 1.0 - p.iter().map(|q| 1.0 - q).product::<f64>(),
            GateKind::Nor => p.iter().map(|q| 1.0 - q).product(),
            GateKind::Xor | GateKind::Xnor => {
                // P(odd parity) folds as p⊕q = p(1-q) + q(1-p).
                let odd = p
                    .iter()
                    .fold(0.0f64, |acc, &q| acc * (1.0 - q) + q * (1.0 - acc));
                if kind == GateKind::Xor {
                    odd
                } else {
                    1.0 - odd
                }
            }
            GateKind::Mux => {
                let (s_p, a_p, b_p) = (p[0], p[1], p[2]);
                (1.0 - s_p) * a_p + s_p * b_p
            }
        };
    }
    Ok(prob)
}

/// Estimates `P(signal = 1)` by simulating `rounds * 64` uniformly random
/// input patterns. Deterministic in the seed.
///
/// # Errors
///
/// Returns [`NetlistError::Cyclic`](crate::NetlistError::Cyclic) for cyclic
/// netlists.
pub fn monte_carlo_probabilities(netlist: &Netlist, rounds: usize, seed: u64) -> Result<Vec<f64>> {
    let sim = Simulator::new(netlist)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ones = vec![0u64; netlist.len()];
    for _ in 0..rounds {
        let words: Vec<u64> = netlist.inputs().iter().map(|_| rng.gen()).collect();
        let packed = sim.run_all_u64(&words)?;
        for (count, word) in ones.iter_mut().zip(packed.signals.iter()) {
            *count += u64::from(word.count_ones());
        }
    }
    let total = (rounds * 64) as f64;
    Ok(ones.into_iter().map(|c| c as f64 / total).collect())
}

/// Signals whose estimated probability deviates from 0.5 by at least
/// `skew_threshold` (e.g. 0.49 flags signals with `P ≤ 0.01` or `P ≥ 0.99`).
/// Returned most-skewed first. This is the primitive the SPS attack builds
/// on.
///
/// # Errors
///
/// Returns [`NetlistError::Cyclic`](crate::NetlistError::Cyclic) for cyclic
/// netlists.
pub fn skewed_signals(
    netlist: &Netlist,
    skew_threshold: f64,
) -> Result<Vec<(crate::SignalId, f64)>> {
    let probs = static_probabilities(netlist)?;
    let mut flagged: Vec<_> = netlist
        .signals()
        .map(|s| (s, probs[s.index()]))
        .filter(|&(_, p)| (p - 0.5).abs() >= skew_threshold)
        .collect();
    flagged.sort_by(|a, b| {
        let sa = (a.1 - 0.5).abs();
        let sb = (b.1 - 0.5).abs();
        sb.partial_cmp(&sa).expect("probabilities are finite")
    });
    Ok(flagged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Netlist;

    fn and_tree(width: usize) -> (Netlist, crate::SignalId) {
        let mut nl = Netlist::new("and_tree");
        let inputs: Vec<_> = (0..width).map(|i| nl.add_input(format!("x{i}"))).collect();
        let g = nl.add_gate(GateKind::And, &inputs).unwrap();
        nl.mark_output(g);
        (nl, g)
    }

    #[test]
    fn and_tree_probability_is_two_to_minus_n() {
        for width in [2usize, 4, 8] {
            let (nl, g) = and_tree(width);
            let p = static_probabilities(&nl).unwrap();
            let expect = 0.5f64.powi(width as i32);
            assert!((p[g.index()] - expect).abs() < 1e-12, "width {width}");
        }
    }

    #[test]
    fn xor_keeps_probability_balanced() {
        let mut nl = Netlist::new("x");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::Xor, &[a, b]).unwrap();
        let p = static_probabilities(&nl).unwrap();
        assert!((p[g.index()] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_agrees_with_static_on_trees() {
        let (nl, g) = and_tree(4);
        let mc = monte_carlo_probabilities(&nl, 64, 42).unwrap();
        let st = static_probabilities(&nl).unwrap();
        assert!(
            (mc[g.index()] - st[g.index()]).abs() < 0.02,
            "mc={} static={}",
            mc[g.index()],
            st[g.index()]
        );
    }

    #[test]
    fn skewed_signals_flags_the_and_tree_output() {
        let (nl, g) = and_tree(8);
        let flagged = skewed_signals(&nl, 0.45).unwrap();
        assert!(flagged.iter().any(|&(s, _)| s == g));
        // Inputs are perfectly balanced and must not be flagged.
        for &pi in nl.inputs() {
            assert!(flagged.iter().all(|&(s, _)| s != pi));
        }
    }

    #[test]
    fn mux_probability() {
        let mut nl = Netlist::new("m");
        let s = nl.add_input("s");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let and_ab = nl.add_gate(GateKind::And, &[a, b]).unwrap(); // p = 0.25
        let m = nl.add_gate(GateKind::Mux, &[s, a, and_ab]).unwrap();
        let p = static_probabilities(&nl).unwrap();
        // 0.5*0.5 + 0.5*0.25 = 0.375
        assert!((p[m.index()] - 0.375).abs() < 1e-12);
    }
}
