use std::collections::HashMap;
use std::fmt;

use crate::{GateKind, NetlistError, Result};

/// Identifier of a signal (the output of a primary input or of a gate).
///
/// `SignalId`s are dense indices into a [`Netlist`]'s node table and are only
/// meaningful for the netlist that issued them.
///
/// # Example
///
/// ```
/// use fulllock_netlist::Netlist;
///
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// assert_eq!(a.index(), 0);
/// assert_eq!(format!("{a}"), "s0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(u32);

impl SignalId {
    pub(crate) fn new(index: usize) -> SignalId {
        SignalId(u32::try_from(index).expect("netlist larger than u32::MAX nodes"))
    }

    /// The dense index of this signal in its netlist's node table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// What drives a signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A primary input (or, in a locked netlist, a key input).
    Input,
    /// A logic gate of the given kind.
    Gate(GateKind),
}

/// One node of the netlist: a primary input or a gate, together with its
/// fan-in signals and optional name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    kind: NodeKind,
    fanins: Vec<SignalId>,
    name: Option<String>,
}

impl Node {
    /// Whether this node is a primary input.
    pub fn is_input(&self) -> bool {
        matches!(self.kind, NodeKind::Input)
    }

    /// The node's kind.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// The gate kind, if this node is a gate.
    pub fn gate_kind(&self) -> Option<GateKind> {
        match self.kind {
            NodeKind::Gate(k) => Some(k),
            NodeKind::Input => None,
        }
    }

    /// The fan-in signals (empty for inputs).
    pub fn fanins(&self) -> &[SignalId] {
        &self.fanins
    }

    /// The signal's name, if one was assigned.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }
}

/// Aggregate statistics of a netlist, as reported by [`Netlist::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of gates (non-input nodes).
    pub gates: usize,
    /// Largest gate fan-in.
    pub max_fanin: usize,
}

/// A mutable gate-level combinational netlist.
///
/// Signals are created append-only (inputs via [`add_input`], gates via
/// [`add_gate`]) and referenced by [`SignalId`]. Fan-ins may be *rewired*
/// after creation ([`set_fanin`], [`redirect_fanouts`]) — this is how the
/// locking transformations splice PLRs into a host circuit — but nodes are
/// never removed, so `SignalId`s stay valid for the netlist's lifetime.
///
/// The structure intentionally permits combinational cycles: Full-Lock's
/// cyclic insertion mode creates them on purpose. Analyses that require a DAG
/// (e.g. [`Simulator`](crate::Simulator)) report [`NetlistError::Cyclic`].
///
/// [`add_input`]: Netlist::add_input
/// [`add_gate`]: Netlist::add_gate
/// [`set_fanin`]: Netlist::set_fanin
/// [`redirect_fanouts`]: Netlist::redirect_fanouts
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<SignalId>,
    outputs: Vec<SignalId>,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Appends an unnamed anonymous input. See [`Netlist::add_input`].
    pub fn add_anonymous_input(&mut self) -> SignalId {
        let id = SignalId::new(self.nodes.len());
        self.nodes.push(Node {
            kind: NodeKind::Input,
            fanins: Vec::new(),
            name: None,
        });
        self.inputs.push(id);
        id
    }

    /// Appends a named primary input and returns its signal.
    pub fn add_input(&mut self, name: impl Into<String>) -> SignalId {
        let id = self.add_anonymous_input();
        self.nodes[id.index()].name = Some(name.into());
        id
    }

    /// Appends a gate and returns its output signal.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] if `fanins.len()` is not an
    /// accepted arity for `kind`, and [`NetlistError::UnknownSignal`] if any
    /// fan-in does not exist yet.
    pub fn add_gate(&mut self, kind: GateKind, fanins: &[SignalId]) -> Result<SignalId> {
        if !kind.accepts_arity(fanins.len()) {
            return Err(NetlistError::BadArity {
                kind: kind.name(),
                got: fanins.len(),
            });
        }
        for &f in fanins {
            self.check_signal(f)?;
        }
        let id = SignalId::new(self.nodes.len());
        self.nodes.push(Node {
            kind: NodeKind::Gate(kind),
            fanins: fanins.to_vec(),
            name: None,
        });
        Ok(id)
    }

    /// Appends a named gate. See [`Netlist::add_gate`] for errors.
    pub fn add_named_gate(
        &mut self,
        kind: GateKind,
        fanins: &[SignalId],
        name: impl Into<String>,
    ) -> Result<SignalId> {
        let id = self.add_gate(kind, fanins)?;
        self.nodes[id.index()].name = Some(name.into());
        Ok(id)
    }

    /// Reserves a gate whose fan-ins will be wired later with
    /// [`Netlist::set_fanin`]. The placeholder fan-ins all point at the gate
    /// itself, making the netlist cyclic until they are replaced — callers
    /// must wire every slot before using the netlist.
    ///
    /// This is the mechanism the locking crate uses to build feedback
    /// structures (cyclic PLR insertion) that cannot be expressed
    /// append-only.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] if `arity` is not accepted by
    /// `kind`.
    pub fn add_deferred_gate(&mut self, kind: GateKind, arity: usize) -> Result<SignalId> {
        if !kind.accepts_arity(arity) {
            return Err(NetlistError::BadArity {
                kind: kind.name(),
                got: arity,
            });
        }
        let id = SignalId::new(self.nodes.len());
        self.nodes.push(Node {
            kind: NodeKind::Gate(kind),
            fanins: vec![id; arity],
            name: None,
        });
        Ok(id)
    }

    /// Marks a signal as a primary output. A signal may be marked more than
    /// once (multiple output ports on one net), matching `.bench` semantics.
    pub fn mark_output(&mut self, signal: SignalId) {
        self.outputs.push(signal);
    }

    /// Assigns (or replaces) a signal's name.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownSignal`] if `signal` is out of range.
    pub fn set_signal_name(&mut self, signal: SignalId, name: impl Into<String>) -> Result<()> {
        self.check_signal(signal)?;
        self.nodes[signal.index()].name = Some(name.into());
        Ok(())
    }

    /// Replaces one fan-in slot of a gate.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownSignal`] if either signal is out of
    /// range or if `slot` is out of range for the gate, and
    /// [`NetlistError::BadArity`] if `gate` is a primary input.
    pub fn set_fanin(&mut self, gate: SignalId, slot: usize, new_fanin: SignalId) -> Result<()> {
        self.check_signal(gate)?;
        self.check_signal(new_fanin)?;
        let node = &mut self.nodes[gate.index()];
        if node.is_input() {
            return Err(NetlistError::BadArity {
                kind: "INPUT",
                got: 0,
            });
        }
        if slot >= node.fanins.len() {
            return Err(NetlistError::UnknownSignal(slot as u32));
        }
        node.fanins[slot] = new_fanin;
        Ok(())
    }

    /// Changes a gate's kind in place, keeping its fan-ins.
    ///
    /// Used by the "twisting" step of Full-Lock, which negates gates leading
    /// into a CLN (e.g. `OR → NOR`).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownSignal`] for an out-of-range signal and
    /// [`NetlistError::BadArity`] if the node is an input or the new kind
    /// rejects the existing fan-in count.
    pub fn set_gate_kind(&mut self, gate: SignalId, kind: GateKind) -> Result<()> {
        self.check_signal(gate)?;
        let node = &mut self.nodes[gate.index()];
        if node.is_input() {
            return Err(NetlistError::BadArity {
                kind: "INPUT",
                got: 0,
            });
        }
        if !kind.accepts_arity(node.fanins.len()) {
            return Err(NetlistError::BadArity {
                kind: kind.name(),
                got: node.fanins.len(),
            });
        }
        node.kind = NodeKind::Gate(kind);
        Ok(())
    }

    /// Redirects every fan-in reference to `from` so it reads `to` instead,
    /// except inside the gates listed in `except`. Primary-output references
    /// to `from` are redirected as well. Returns the number of fan-in slots
    /// (plus output ports) rewired.
    ///
    /// This is the splice primitive: to insert a block on wire `w`, create
    /// the block reading `w`, then redirect `w`'s fan-outs to the block's
    /// output while excepting the block itself.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownSignal`] if `from` or `to` is out of
    /// range.
    pub fn redirect_fanouts(
        &mut self,
        from: SignalId,
        to: SignalId,
        except: &[SignalId],
    ) -> Result<usize> {
        self.check_signal(from)?;
        self.check_signal(to)?;
        let mut rewired = 0;
        for idx in 0..self.nodes.len() {
            let here = SignalId::new(idx);
            if except.contains(&here) {
                continue;
            }
            for fanin in &mut self.nodes[idx].fanins {
                if *fanin == from {
                    *fanin = to;
                    rewired += 1;
                }
            }
        }
        for out in &mut self.outputs {
            if *out == from {
                *out = to;
                rewired += 1;
            }
        }
        Ok(rewired)
    }

    /// Total number of nodes (inputs + gates).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the netlist has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node table entry for a signal.
    ///
    /// # Panics
    ///
    /// Panics if `signal` is out of range; all `SignalId`s handed out by this
    /// netlist are in range.
    pub fn node(&self, signal: SignalId) -> &Node {
        &self.nodes[signal.index()]
    }

    /// Iterates over all signals in creation order.
    pub fn signals(&self) -> impl Iterator<Item = SignalId> + '_ {
        (0..self.nodes.len()).map(SignalId::new)
    }

    /// Iterates over all gate signals (skipping inputs) in creation order.
    pub fn gates(&self) -> impl Iterator<Item = SignalId> + '_ {
        self.signals()
            .filter(|&s| !self.nodes[s.index()].is_input())
    }

    /// The primary inputs, in declaration order.
    pub fn inputs(&self) -> &[SignalId] {
        &self.inputs
    }

    /// The primary outputs, in declaration order.
    pub fn outputs(&self) -> &[SignalId] {
        &self.outputs
    }

    /// Re-points the `position`-th primary output at a different signal
    /// (used by schemes that wrap an output in corruption logic).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownSignal`] if `position` or `signal` is
    /// out of range.
    pub fn set_output(&mut self, position: usize, signal: SignalId) -> Result<()> {
        self.check_signal(signal)?;
        let slot = self
            .outputs
            .get_mut(position)
            .ok_or(NetlistError::UnknownSignal(position as u32))?;
        *slot = signal;
        Ok(())
    }

    /// Looks a signal up by name (linear scan; build a map for bulk lookups).
    pub fn find_by_name(&self, name: &str) -> Option<SignalId> {
        self.signals()
            .find(|&s| self.nodes[s.index()].name() == Some(name))
    }

    /// A printable name for a signal: its assigned name if any, otherwise a
    /// synthesized `n<index>`.
    pub fn signal_name(&self, signal: SignalId) -> String {
        match self.nodes[signal.index()].name() {
            Some(n) => n.to_string(),
            None => format!("n{}", signal.index()),
        }
    }

    /// Computes, for every signal, the list of gates reading it. The outer
    /// vector is indexed by [`SignalId::index`].
    pub fn fanouts(&self) -> Vec<Vec<SignalId>> {
        let mut fanouts = vec![Vec::new(); self.nodes.len()];
        for s in self.signals() {
            for &f in self.nodes[s.index()].fanins() {
                fanouts[f.index()].push(s);
            }
        }
        fanouts
    }

    /// Gate-kind histogram (useful for technology mapping reports and for
    /// eyeballing what a locking transformation inserted).
    pub fn gate_histogram(&self) -> std::collections::BTreeMap<GateKind, usize> {
        let mut histogram = std::collections::BTreeMap::new();
        for g in self.gates() {
            if let Some(kind) = self.nodes[g.index()].gate_kind() {
                *histogram.entry(kind).or_insert(0) += 1;
            }
        }
        histogram
    }

    /// Aggregate size statistics.
    pub fn stats(&self) -> NetlistStats {
        NetlistStats {
            inputs: self.inputs.len(),
            outputs: self.outputs.len(),
            gates: self.nodes.len() - self.inputs.len(),
            max_fanin: self.nodes.iter().map(|n| n.fanins.len()).max().unwrap_or(0),
        }
    }

    /// Verifies structural invariants: every fan-in id in range, every arity
    /// accepted, every output id in range, and names unique.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`NetlistError`].
    pub fn check(&self) -> Result<()> {
        let mut seen_names: HashMap<&str, SignalId> = HashMap::new();
        for s in self.signals() {
            let node = &self.nodes[s.index()];
            match node.kind {
                NodeKind::Input => {
                    if !node.fanins.is_empty() {
                        return Err(NetlistError::BadArity {
                            kind: "INPUT",
                            got: node.fanins.len(),
                        });
                    }
                }
                NodeKind::Gate(kind) => {
                    if !kind.accepts_arity(node.fanins.len()) {
                        return Err(NetlistError::BadArity {
                            kind: kind.name(),
                            got: node.fanins.len(),
                        });
                    }
                }
            }
            for &f in &node.fanins {
                if f.index() >= self.nodes.len() {
                    return Err(NetlistError::UnknownSignal(f.raw()));
                }
            }
            if let Some(name) = node.name() {
                if let Some(prev) = seen_names.insert(name, s) {
                    if prev != s {
                        return Err(NetlistError::DuplicateName(name.to_string()));
                    }
                }
            }
        }
        for &o in &self.outputs {
            if o.index() >= self.nodes.len() {
                return Err(NetlistError::UnknownSignal(o.raw()));
            }
        }
        Ok(())
    }

    /// Produces a copy of this netlist containing only the primary inputs
    /// and the gates reachable (through fan-ins) from a primary output,
    /// together with a remap table `old SignalId index → new SignalId`
    /// (`None` for dropped gates).
    ///
    /// Locking transformations splice blocks over existing wires and leave
    /// the replaced gates dangling; sweeping removes that dead logic so it
    /// does not pollute CNF statistics or PPA estimates. All primary inputs
    /// are kept even if unused (ports are part of the interface).
    pub fn sweep(&self) -> (Netlist, Vec<Option<SignalId>>) {
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<SignalId> = Vec::new();
        for &o in &self.outputs {
            if !live[o.index()] {
                live[o.index()] = true;
                stack.push(o);
            }
        }
        while let Some(s) = stack.pop() {
            for &f in self.nodes[s.index()].fanins() {
                if !live[f.index()] {
                    live[f.index()] = true;
                    stack.push(f);
                }
            }
        }
        for &i in &self.inputs {
            live[i.index()] = true;
        }

        let mut remap: Vec<Option<SignalId>> = vec![None; self.nodes.len()];
        let mut swept = Netlist::new(self.name.clone());
        // Nodes are appended in original order, so fan-in references of kept
        // gates always resolve (sweep never reorders).
        for s in self.signals() {
            if !live[s.index()] {
                continue;
            }
            let node = &self.nodes[s.index()];
            let new_id = SignalId::new(swept.nodes.len());
            swept.nodes.push(Node {
                kind: node.kind,
                fanins: Vec::new(), // wired below once ids exist
                name: node.name.clone(),
            });
            if node.is_input() {
                swept.inputs.push(new_id);
            }
            remap[s.index()] = Some(new_id);
        }
        for s in self.signals() {
            let Some(new_id) = remap[s.index()] else {
                continue;
            };
            let fanins: Vec<SignalId> = self.nodes[s.index()]
                .fanins()
                .iter()
                .map(|f| remap[f.index()].expect("fan-in of a live node is live"))
                .collect();
            swept.nodes[new_id.index()].fanins = fanins;
        }
        for &o in &self.outputs {
            swept
                .outputs
                .push(remap[o.index()].expect("outputs are live"));
        }
        (swept, remap)
    }

    fn check_signal(&self, signal: SignalId) -> Result<()> {
        if signal.index() >= self.nodes.len() {
            return Err(NetlistError::UnknownSignal(signal.raw()));
        }
        Ok(())
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        write!(
            f,
            "{} ({} inputs, {} outputs, {} gates)",
            self.name, stats.inputs, stats.outputs, stats.gates
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Netlist, SignalId, SignalId, SignalId) {
        let mut nl = Netlist::new("tiny");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        nl.mark_output(g);
        (nl, a, b, g)
    }

    #[test]
    fn build_and_query() {
        let (nl, a, b, g) = tiny();
        assert_eq!(nl.inputs(), &[a, b]);
        assert_eq!(nl.outputs(), &[g]);
        assert_eq!(nl.node(g).gate_kind(), Some(GateKind::And));
        assert_eq!(nl.node(g).fanins(), &[a, b]);
        assert_eq!(nl.stats().gates, 1);
        assert!(nl.check().is_ok());
    }

    #[test]
    fn bad_arity_is_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        assert_eq!(
            nl.add_gate(GateKind::Not, &[a, a]),
            Err(NetlistError::BadArity {
                kind: "NOT",
                got: 2
            })
        );
        assert_eq!(
            nl.add_gate(GateKind::Mux, &[a]),
            Err(NetlistError::BadArity {
                kind: "MUX",
                got: 1
            })
        );
    }

    #[test]
    fn unknown_fanin_is_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let bogus = SignalId::new(99);
        assert_eq!(
            nl.add_gate(GateKind::Not, &[bogus]),
            Err(NetlistError::UnknownSignal(99))
        );
        let _ = a;
    }

    #[test]
    fn redirect_fanouts_respects_exceptions() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let g1 = nl.add_gate(GateKind::Not, &[a]).unwrap();
        let g2 = nl.add_gate(GateKind::Buf, &[a]).unwrap();
        nl.mark_output(a);
        let n = nl.redirect_fanouts(a, g1, &[g1]).unwrap();
        // g2's fan-in and the primary output move; g1 keeps reading `a`.
        assert_eq!(n, 2);
        assert_eq!(nl.node(g2).fanins(), &[g1]);
        assert_eq!(nl.node(g1).fanins(), &[a]);
        assert_eq!(nl.outputs(), &[g1]);
    }

    #[test]
    fn set_gate_kind_twists() {
        let (mut nl, _, _, g) = tiny();
        nl.set_gate_kind(g, GateKind::Nand).unwrap();
        assert_eq!(nl.node(g).gate_kind(), Some(GateKind::Nand));
        // NOT needs arity 1, the AND has 2 fan-ins.
        assert!(nl.set_gate_kind(g, GateKind::Not).is_err());
    }

    #[test]
    fn deferred_gate_starts_self_referential() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let g = nl.add_deferred_gate(GateKind::And, 2).unwrap();
        assert_eq!(nl.node(g).fanins(), &[g, g]);
        nl.set_fanin(g, 0, a).unwrap();
        nl.set_fanin(g, 1, a).unwrap();
        assert_eq!(nl.node(g).fanins(), &[a, a]);
    }

    #[test]
    fn duplicate_names_fail_check() {
        let mut nl = Netlist::new("t");
        nl.add_input("x");
        nl.add_input("x");
        assert_eq!(nl.check(), Err(NetlistError::DuplicateName("x".into())));
    }

    #[test]
    fn fanouts_are_inverse_of_fanins() {
        let (nl, a, b, g) = tiny();
        let fanouts = nl.fanouts();
        assert_eq!(fanouts[a.index()], vec![g]);
        assert_eq!(fanouts[b.index()], vec![g]);
        assert!(fanouts[g.index()].is_empty());
    }

    #[test]
    fn set_output_replaces_and_validates() {
        let (mut nl, a, _, g) = tiny();
        nl.set_output(0, a).unwrap();
        assert_eq!(nl.outputs(), &[a]);
        assert!(nl.set_output(5, a).is_err()); // no such port
        assert!(nl.set_output(0, SignalId::new(99)).is_err()); // no such signal
        let _ = g;
    }

    #[test]
    fn set_fanin_error_paths() {
        let (mut nl, a, b, g) = tiny();
        // Rewiring an input is rejected.
        assert!(matches!(
            nl.set_fanin(a, 0, b),
            Err(NetlistError::BadArity { kind: "INPUT", .. })
        ));
        // Slot out of range.
        assert!(nl.set_fanin(g, 7, a).is_err());
        // Unknown signals on either side.
        assert!(nl.set_fanin(SignalId::new(99), 0, a).is_err());
        assert!(nl.set_fanin(g, 0, SignalId::new(99)).is_err());
    }

    #[test]
    fn redirect_fanouts_validates_signals() {
        let (mut nl, a, _, g) = tiny();
        assert!(nl.redirect_fanouts(SignalId::new(99), a, &[]).is_err());
        assert!(nl.redirect_fanouts(a, SignalId::new(99), &[]).is_err());
        // Redirecting a signal nothing reads is a no-op, not an error.
        assert_eq!(nl.redirect_fanouts(g, a, &[]).unwrap(), 1); // the output port
    }

    #[test]
    fn gate_histogram_counts_kinds() {
        let mut nl = Netlist::new("h");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        nl.add_gate(GateKind::And, &[a, b]).unwrap();
        nl.add_gate(GateKind::And, &[a, b]).unwrap();
        nl.add_gate(GateKind::Not, &[a]).unwrap();
        let hist = nl.gate_histogram();
        assert_eq!(hist.get(&GateKind::And), Some(&2));
        assert_eq!(hist.get(&GateKind::Not), Some(&1));
        assert_eq!(hist.get(&GateKind::Or), None);
    }

    #[test]
    fn sweep_removes_dead_gates_and_keeps_inputs() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b"); // unused input: must survive
        let live = nl.add_gate(GateKind::Not, &[a]).unwrap();
        let dead = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let dead2 = nl.add_gate(GateKind::Not, &[dead]).unwrap();
        nl.mark_output(live);
        let (swept, remap) = nl.sweep();
        assert_eq!(swept.stats().inputs, 2);
        assert_eq!(swept.stats().gates, 1);
        assert!(remap[live.index()].is_some());
        assert!(remap[dead.index()].is_none());
        assert!(remap[dead2.index()].is_none());
        assert!(swept.check().is_ok());
        // Function preserved.
        let sim = crate::Simulator::new(&swept).unwrap();
        assert_eq!(sim.run(&[true, false]).unwrap(), vec![false]);
    }

    #[test]
    fn sweep_keeps_cyclic_logic_reachable_from_outputs() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let g = nl.add_deferred_gate(GateKind::Or, 2).unwrap();
        nl.set_fanin(g, 0, a).unwrap();
        nl.set_fanin(g, 1, g).unwrap();
        nl.mark_output(g);
        let (swept, _) = nl.sweep();
        assert_eq!(swept.stats().gates, 1);
    }

    #[test]
    fn find_by_name_and_signal_name() {
        let (nl, a, _, g) = tiny();
        assert_eq!(nl.find_by_name("a"), Some(a));
        assert_eq!(nl.find_by_name("zzz"), None);
        assert_eq!(nl.signal_name(a), "a");
        assert_eq!(nl.signal_name(g), format!("n{}", g.index()));
    }
}
