//! Three-valued fixed-point evaluation of netlists with combinational
//! cycles.
//!
//! A wrong key in Full-Lock's cyclic insertion mode can close a structural
//! loop. The standard semantics for such circuits (used by CycSAT's
//! correctness argument) is ternary simulation: start every signal at the
//! unknown value `X` and propagate until a fixed point. Signals that settle
//! carry a definite value; signals that stay `X` either oscillate or float.

use crate::{GateKind, Netlist, NetlistError, Result};

/// A three-valued logic level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Trit {
    /// Definite 0.
    Zero,
    /// Definite 1.
    One,
    /// Unknown / unsettled.
    #[default]
    X,
}

impl Trit {
    /// Converts a definite boolean.
    pub fn from_bool(b: bool) -> Trit {
        if b {
            Trit::One
        } else {
            Trit::Zero
        }
    }

    /// The definite value, if any.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Trit::Zero => Some(false),
            Trit::One => Some(true),
            Trit::X => None,
        }
    }

    /// Whether the value is definite.
    pub fn is_known(self) -> bool {
        self != Trit::X
    }

    fn not(self) -> Trit {
        match self {
            Trit::Zero => Trit::One,
            Trit::One => Trit::Zero,
            Trit::X => Trit::X,
        }
    }
}

/// Kleene (strong) three-valued evaluation of a gate.
///
/// Controlling values dominate `X`: `AND(0, X) = 0`, `OR(1, X) = 1`,
/// `MUX` with a known select ignores the unselected leg.
pub fn eval_trit(kind: GateKind, inputs: &[Trit]) -> Trit {
    match kind {
        GateKind::Const0 => Trit::Zero,
        GateKind::Const1 => Trit::One,
        GateKind::Buf => inputs[0],
        GateKind::Not => inputs[0].not(),
        GateKind::And | GateKind::Nand => {
            let mut any_x = false;
            for &t in inputs {
                match t {
                    Trit::Zero => {
                        return if kind == GateKind::And {
                            Trit::Zero
                        } else {
                            Trit::One
                        }
                    }
                    Trit::X => any_x = true,
                    Trit::One => {}
                }
            }
            if any_x {
                Trit::X
            } else if kind == GateKind::And {
                Trit::One
            } else {
                Trit::Zero
            }
        }
        GateKind::Or | GateKind::Nor => {
            let mut any_x = false;
            for &t in inputs {
                match t {
                    Trit::One => {
                        return if kind == GateKind::Or {
                            Trit::One
                        } else {
                            Trit::Zero
                        }
                    }
                    Trit::X => any_x = true,
                    Trit::Zero => {}
                }
            }
            if any_x {
                Trit::X
            } else if kind == GateKind::Or {
                Trit::Zero
            } else {
                Trit::One
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            let mut acc = false;
            for &t in inputs {
                match t.to_bool() {
                    Some(b) => acc ^= b,
                    None => return Trit::X,
                }
            }
            Trit::from_bool(if kind == GateKind::Xor { acc } else { !acc })
        }
        GateKind::Mux => {
            let (s, a, b) = (inputs[0], inputs[1], inputs[2]);
            match s {
                Trit::Zero => a,
                Trit::One => b,
                Trit::X => {
                    // If both legs agree on a definite value the output is
                    // definite regardless of the select.
                    if a.is_known() && a == b {
                        a
                    } else {
                        Trit::X
                    }
                }
            }
        }
    }
}

/// Result of one ternary fixed-point evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CyclicEval {
    /// Final value of every signal, indexed by [`SignalId::index`](crate::SignalId::index).
    pub signals: Vec<Trit>,
    /// Final value of every primary output, in output order.
    pub outputs: Vec<Trit>,
    /// Number of sweeps until the fixed point was reached.
    pub sweeps: usize,
}

impl CyclicEval {
    /// Whether every primary output settled to a definite value.
    pub fn all_outputs_known(&self) -> bool {
        self.outputs.iter().all(|t| t.is_known())
    }
}

/// Evaluator for (possibly) cyclic netlists using ternary fixed-point
/// sweeps.
///
/// The evaluation is monotone in Kleene's information order (signals only
/// move `X → 0/1`... never back), so a fixed point is reached within
/// `len()` sweeps; the sweep bound exists purely as a defensive guard.
///
/// # Example
///
/// ```
/// use fulllock_netlist::{GateKind, Netlist};
/// use fulllock_netlist::cyclic::{CyclicSimulator, Trit};
///
/// # fn main() -> Result<(), fulllock_netlist::NetlistError> {
/// // g = AND(a, g): settles to 0 when a = 0, floats (X) when a = 1.
/// let mut nl = Netlist::new("loop");
/// let a = nl.add_input("a");
/// let g = nl.add_deferred_gate(GateKind::And, 2)?;
/// nl.set_fanin(g, 0, a)?;
/// nl.set_fanin(g, 1, g)?;
/// nl.mark_output(g);
///
/// let sim = CyclicSimulator::new(&nl);
/// assert_eq!(sim.run(&[false])?.outputs, vec![Trit::Zero]);
/// assert_eq!(sim.run(&[true])?.outputs, vec![Trit::X]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CyclicSimulator<'a> {
    netlist: &'a Netlist,
}

impl<'a> CyclicSimulator<'a> {
    /// Creates an evaluator. Works for acyclic netlists too (it then agrees
    /// with [`Simulator`](crate::Simulator) and every signal settles).
    pub fn new(netlist: &'a Netlist) -> CyclicSimulator<'a> {
        CyclicSimulator { netlist }
    }

    /// Runs ternary fixed-point evaluation for one input pattern.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputCount`] if the pattern length does not
    /// match the number of primary inputs.
    pub fn run(&self, inputs: &[bool]) -> Result<CyclicEval> {
        if inputs.len() != self.netlist.inputs().len() {
            return Err(NetlistError::InputCount {
                expected: self.netlist.inputs().len(),
                got: inputs.len(),
            });
        }
        let n = self.netlist.len();
        let mut values = vec![Trit::X; n];
        for (slot, &sig) in self.netlist.inputs().iter().enumerate() {
            values[sig.index()] = Trit::from_bool(inputs[slot]);
        }
        let mut fanin_buf: Vec<Trit> = Vec::with_capacity(8);
        let mut sweeps = 0usize;
        // Monotone ternary propagation: at most n sweeps are ever needed.
        loop {
            sweeps += 1;
            let mut changed = false;
            for s in self.netlist.signals() {
                let node = self.netlist.node(s);
                if let Some(kind) = node.gate_kind() {
                    fanin_buf.clear();
                    fanin_buf.extend(node.fanins().iter().map(|f| values[f.index()]));
                    let new = eval_trit(kind, &fanin_buf);
                    if new != values[s.index()] && new.is_known() {
                        values[s.index()] = new;
                        changed = true;
                    }
                }
            }
            if !changed || sweeps > n + 1 {
                break;
            }
        }
        let outputs = self
            .netlist
            .outputs()
            .iter()
            .map(|o| values[o.index()])
            .collect();
        Ok(CyclicEval {
            signals: values,
            outputs,
            sweeps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;

    #[test]
    fn trit_conversions() {
        assert_eq!(Trit::from_bool(true), Trit::One);
        assert_eq!(Trit::One.to_bool(), Some(true));
        assert_eq!(Trit::X.to_bool(), None);
        assert!(!Trit::X.is_known());
    }

    #[test]
    fn kleene_controlling_values() {
        assert_eq!(eval_trit(GateKind::And, &[Trit::Zero, Trit::X]), Trit::Zero);
        assert_eq!(eval_trit(GateKind::Nand, &[Trit::Zero, Trit::X]), Trit::One);
        assert_eq!(eval_trit(GateKind::Or, &[Trit::One, Trit::X]), Trit::One);
        assert_eq!(eval_trit(GateKind::Nor, &[Trit::One, Trit::X]), Trit::Zero);
        assert_eq!(eval_trit(GateKind::And, &[Trit::One, Trit::X]), Trit::X);
        assert_eq!(eval_trit(GateKind::Xor, &[Trit::One, Trit::X]), Trit::X);
    }

    #[test]
    fn mux_with_agreeing_legs_is_definite() {
        assert_eq!(
            eval_trit(GateKind::Mux, &[Trit::X, Trit::One, Trit::One]),
            Trit::One
        );
        assert_eq!(
            eval_trit(GateKind::Mux, &[Trit::X, Trit::One, Trit::Zero]),
            Trit::X
        );
        assert_eq!(
            eval_trit(GateKind::Mux, &[Trit::Zero, Trit::One, Trit::X]),
            Trit::One
        );
    }

    #[test]
    fn acyclic_agrees_with_plain_simulator() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::Nand, &[a, b]).unwrap();
        let h = nl.add_gate(GateKind::Xor, &[g, a]).unwrap();
        nl.mark_output(h);
        let plain = Simulator::new(&nl).unwrap();
        let ternary = CyclicSimulator::new(&nl);
        for row in 0..4 {
            let pat = [row & 1 == 1, row >> 1 & 1 == 1];
            let want = plain.run(&pat).unwrap();
            let got = ternary.run(&pat).unwrap();
            assert_eq!(got.outputs, vec![Trit::from_bool(want[0])]);
            assert!(got.all_outputs_known());
        }
    }

    #[test]
    fn stable_loop_settles_oscillating_loop_floats() {
        // Ring oscillator: g = NOT(g) never settles.
        let mut nl = Netlist::new("osc");
        let g = nl.add_deferred_gate(GateKind::Not, 1).unwrap();
        nl.set_fanin(g, 0, g).unwrap();
        nl.mark_output(g);
        let sim = CyclicSimulator::new(&nl);
        let eval = sim.run(&[]).unwrap();
        assert_eq!(eval.outputs, vec![Trit::X]);
        assert!(!eval.all_outputs_known());
    }

    #[test]
    fn gated_loop_settles_when_broken() {
        // g = OR(a, g): a=1 forces 1; a=0 leaves the loop floating.
        let mut nl = Netlist::new("latchish");
        let a = nl.add_input("a");
        let g = nl.add_deferred_gate(GateKind::Or, 2).unwrap();
        nl.set_fanin(g, 0, a).unwrap();
        nl.set_fanin(g, 1, g).unwrap();
        nl.mark_output(g);
        let sim = CyclicSimulator::new(&nl);
        assert_eq!(sim.run(&[true]).unwrap().outputs, vec![Trit::One]);
        assert_eq!(sim.run(&[false]).unwrap().outputs, vec![Trit::X]);
    }

    #[test]
    fn wrong_input_count() {
        let mut nl = Netlist::new("t");
        nl.add_input("a");
        let sim = CyclicSimulator::new(&nl);
        assert!(matches!(
            sim.run(&[]),
            Err(NetlistError::InputCount {
                expected: 1,
                got: 0
            })
        ));
    }
}
