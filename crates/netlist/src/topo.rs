//! Topological analysis: ordering, logic levels, cycles, and SCCs.
//!
//! Full-Lock's cyclic insertion mode deliberately creates combinational
//! cycles, so every analysis here is defined for general digraphs and the
//! DAG-only ones report [`NetlistError::Cyclic`].

use crate::{Netlist, NetlistError, Result, SignalId};

/// Computes a topological order of all signals (fan-ins before fan-outs).
///
/// # Errors
///
/// Returns [`NetlistError::Cyclic`] if the netlist has a combinational
/// cycle; the error names one signal on a cycle.
///
/// # Example
///
/// ```
/// use fulllock_netlist::{GateKind, Netlist, topo};
///
/// # fn main() -> Result<(), fulllock_netlist::NetlistError> {
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let g = nl.add_gate(GateKind::Not, &[a])?;
/// let order = topo::topo_order(&nl)?;
/// assert!(order.iter().position(|&s| s == a) < order.iter().position(|&s| s == g));
/// # Ok(())
/// # }
/// ```
pub fn topo_order(netlist: &Netlist) -> Result<Vec<SignalId>> {
    // Kahn's algorithm over fan-in counts.
    let n = netlist.len();
    let mut indegree = vec![0usize; n];
    for s in netlist.signals() {
        for &f in netlist.node(s).fanins() {
            // Self-loops (deferred gates never wired) count like any edge.
            let _ = f;
            indegree[s.index()] += 1;
        }
    }
    let fanouts = netlist.fanouts();
    let mut ready: Vec<SignalId> = netlist
        .signals()
        .filter(|s| indegree[s.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(s) = ready.pop() {
        order.push(s);
        for &t in &fanouts[s.index()] {
            indegree[t.index()] -= 1;
            if indegree[t.index()] == 0 {
                ready.push(t);
            }
        }
    }
    if order.len() != n {
        let on_cycle = netlist
            .signals()
            .find(|s| indegree[s.index()] > 0)
            .expect("missing node implies positive indegree somewhere");
        return Err(NetlistError::Cyclic {
            on_cycle: on_cycle.index() as u32,
        });
    }
    Ok(order)
}

/// Whether the netlist contains a combinational cycle.
pub fn is_cyclic(netlist: &Netlist) -> bool {
    topo_order(netlist).is_err()
}

/// Computes the logic level of every signal: inputs are level 0, a gate is
/// one more than its deepest fan-in. Indexed by [`SignalId::index`].
///
/// # Errors
///
/// Returns [`NetlistError::Cyclic`] for cyclic netlists.
pub fn levels(netlist: &Netlist) -> Result<Vec<usize>> {
    let order = topo_order(netlist)?;
    let mut level = vec![0usize; netlist.len()];
    for s in order {
        let node = netlist.node(s);
        level[s.index()] = node
            .fanins()
            .iter()
            .map(|f| level[f.index()] + 1)
            .max()
            .unwrap_or(0);
    }
    Ok(level)
}

/// The depth of the netlist: the maximum logic level over all signals.
///
/// # Errors
///
/// Returns [`NetlistError::Cyclic`] for cyclic netlists.
pub fn depth(netlist: &Netlist) -> Result<usize> {
    Ok(levels(netlist)?.into_iter().max().unwrap_or(0))
}

/// Strongly connected components, computed with Tarjan's algorithm
/// (iteratively, so deep netlists do not overflow the stack).
///
/// Components are returned in reverse topological order of the condensation
/// (a component appears before the components it feeds). Only non-trivial
/// components (size > 1, or a self-loop) represent combinational cycles.
pub fn strongly_connected_components(netlist: &Netlist) -> Vec<Vec<SignalId>> {
    let n = netlist.len();
    let fanouts = netlist.fanouts();

    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components = Vec::new();

    // Explicit DFS state: (node, next-fanout-position).
    let mut call_stack: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != UNVISITED {
            continue;
        }
        call_stack.push((start, 0));
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut pos)) = call_stack.last_mut() {
            if *pos < fanouts[v].len() {
                let w = fanouts[v][*pos].index();
                *pos += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        component.push(SignalId::new(w));
                        if w == v {
                            break;
                        }
                    }
                    components.push(component);
                }
            }
        }
    }
    components
}

/// Signals that lie on at least one combinational cycle: members of
/// non-trivial SCCs, plus self-loops.
pub fn cyclic_signals(netlist: &Netlist) -> Vec<SignalId> {
    let mut result = Vec::new();
    for comp in strongly_connected_components(netlist) {
        if comp.len() > 1 {
            result.extend(comp);
        } else {
            let s = comp[0];
            if netlist.node(s).fanins().contains(&s) {
                result.push(s);
            }
        }
    }
    result.sort_unstable();
    result
}

/// A set of (gate, fan-in slot) edges whose removal makes the netlist
/// acyclic, found by DFS back-edge collection. Not minimum, but small in
/// practice; CycSAT only needs *some* feedback set to anchor its
/// no-cycle conditions.
pub fn feedback_edges(netlist: &Netlist) -> Vec<(SignalId, usize)> {
    let n = netlist.len();
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color = vec![Color::White; n];
    let mut feedback = Vec::new();
    // Iterative DFS over fan-in edges (so the "edge" we record is the gate
    // plus the slot index of the fan-in that closes a cycle).
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if color[start] != Color::White {
            continue;
        }
        color[start] = Color::Grey;
        stack.push((start, 0));
        while let Some(&mut (v, ref mut pos)) = stack.last_mut() {
            let fanins = netlist.node(SignalId::new(v)).fanins();
            if *pos < fanins.len() {
                let slot = *pos;
                let w = fanins[slot].index();
                *pos += 1;
                match color[w] {
                    Color::White => {
                        color[w] = Color::Grey;
                        stack.push((w, 0));
                    }
                    Color::Grey => feedback.push((SignalId::new(v), slot)),
                    Color::Black => {}
                }
            } else {
                color[v] = Color::Black;
                stack.pop();
            }
        }
    }
    feedback
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    fn chain(len: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_input("a");
        for _ in 0..len {
            prev = nl.add_gate(GateKind::Not, &[prev]).unwrap();
        }
        nl.mark_output(prev);
        nl
    }

    fn ring() -> Netlist {
        // a -> g1 -> g2 -> g1 (cycle between g1 and g2)
        let mut nl = Netlist::new("ring");
        let a = nl.add_input("a");
        let g1 = nl.add_deferred_gate(GateKind::And, 2).unwrap();
        let g2 = nl.add_gate(GateKind::Not, &[g1]).unwrap();
        nl.set_fanin(g1, 0, a).unwrap();
        nl.set_fanin(g1, 1, g2).unwrap();
        nl.mark_output(g2);
        nl
    }

    #[test]
    fn topo_order_respects_edges() {
        let nl = chain(5);
        let order = topo_order(&nl).unwrap();
        assert_eq!(order.len(), nl.len());
        let pos: Vec<usize> = {
            let mut p = vec![0; nl.len()];
            for (i, s) in order.iter().enumerate() {
                p[s.index()] = i;
            }
            p
        };
        for s in nl.signals() {
            for f in nl.node(s).fanins() {
                assert!(pos[f.index()] < pos[s.index()]);
            }
        }
    }

    #[test]
    fn cycle_is_detected() {
        let nl = ring();
        assert!(is_cyclic(&nl));
        assert!(matches!(topo_order(&nl), Err(NetlistError::Cyclic { .. })));
    }

    #[test]
    fn acyclic_is_not_cyclic() {
        assert!(!is_cyclic(&chain(3)));
    }

    #[test]
    fn depth_of_chain() {
        assert_eq!(depth(&chain(7)).unwrap(), 7);
    }

    #[test]
    fn levels_of_diamond() {
        let mut nl = Netlist::new("d");
        let a = nl.add_input("a");
        let l = nl.add_gate(GateKind::Not, &[a]).unwrap();
        let r = nl.add_gate(GateKind::Buf, &[a]).unwrap();
        let top = nl.add_gate(GateKind::And, &[l, r]).unwrap();
        let lv = levels(&nl).unwrap();
        assert_eq!(lv[a.index()], 0);
        assert_eq!(lv[l.index()], 1);
        assert_eq!(lv[r.index()], 1);
        assert_eq!(lv[top.index()], 2);
    }

    #[test]
    fn scc_finds_the_ring() {
        let nl = ring();
        let comps = strongly_connected_components(&nl);
        let nontrivial: Vec<_> = comps.into_iter().filter(|c| c.len() > 1).collect();
        assert_eq!(nontrivial.len(), 1);
        assert_eq!(nontrivial[0].len(), 2);
        assert_eq!(cyclic_signals(&nl).len(), 2);
    }

    #[test]
    fn scc_on_dag_is_all_singletons() {
        let nl = chain(4);
        let comps = strongly_connected_components(&nl);
        assert_eq!(comps.len(), nl.len());
        assert!(comps.iter().all(|c| c.len() == 1));
        assert!(cyclic_signals(&nl).is_empty());
    }

    #[test]
    fn feedback_edges_break_all_cycles() {
        let nl = ring();
        let fb = feedback_edges(&nl);
        assert!(!fb.is_empty());
        // Removing (redirecting to a fresh input) every feedback edge must
        // leave an acyclic netlist.
        let mut cut = nl.clone();
        let dummy = cut.add_input("dummy");
        for (gate, slot) in fb {
            cut.set_fanin(gate, slot, dummy).unwrap();
        }
        assert!(!is_cyclic(&cut));
    }

    #[test]
    fn self_loop_is_cyclic_signal() {
        let mut nl = Netlist::new("s");
        let g = nl.add_deferred_gate(GateKind::Not, 1).unwrap();
        assert_eq!(cyclic_signals(&nl), vec![g]);
    }
}
