use std::fmt;

/// The standard-cell gate library used throughout the reproduction.
///
/// This mirrors the gate set of Table 1 in the paper (the Tseytin
/// transformation table): the basic two-input cells, the unary cells, and the
/// 2:1 multiplexer that Full-Lock's switch-boxes and key-programmable LUTs
/// are built from.
///
/// All symmetric kinds (`And`, `Nand`, `Or`, `Nor`, `Xor`, `Xnor`) accept any
/// fan-in ≥ 2; `Xor`/`Xnor` generalize to parity / inverted parity, matching
/// `.bench` semantics. `Buf`/`Not` are unary. `Mux` takes exactly three
/// fan-ins in the paper's order `MUX(S, A, B) = A·S̄ + B·S`.
///
/// # Example
///
/// ```
/// use fulllock_netlist::GateKind;
///
/// assert!(GateKind::Mux.eval(&[false, true, false])); // S=0 selects A=1
/// assert!(!GateKind::Mux.eval(&[true, true, false])); // S=1 selects B=0
/// assert_eq!(GateKind::And.invert(), Some(GateKind::Nand));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Identity: `C = A`.
    Buf,
    /// Inverter: `C = Ā`.
    Not,
    /// Conjunction of all fan-ins.
    And,
    /// Inverted conjunction.
    Nand,
    /// Disjunction of all fan-ins.
    Or,
    /// Inverted disjunction.
    Nor,
    /// Parity (odd number of true fan-ins).
    Xor,
    /// Inverted parity.
    Xnor,
    /// 2:1 multiplexer, fan-ins `[S, A, B]`: `C = A·S̄ + B·S`.
    Mux,
    /// Constant 0 (tie-low cell, no fan-ins). Produced by the optimizer's
    /// constant folding; `.bench` files write it as `CONST0()`.
    Const0,
    /// Constant 1 (tie-high cell, no fan-ins).
    Const1,
}

/// All gate kinds, in a stable order (useful for exhaustive tests).
pub(crate) const ALL_KINDS: [GateKind; 11] = [
    GateKind::Buf,
    GateKind::Not,
    GateKind::And,
    GateKind::Nand,
    GateKind::Or,
    GateKind::Nor,
    GateKind::Xor,
    GateKind::Xnor,
    GateKind::Mux,
    GateKind::Const0,
    GateKind::Const1,
];

impl GateKind {
    /// Returns every gate kind in a stable order.
    pub fn all() -> impl Iterator<Item = GateKind> {
        ALL_KINDS.into_iter()
    }

    /// The canonical upper-case name used in `.bench` files.
    pub fn name(self) -> &'static str {
        match self {
            GateKind::Buf => "BUF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Mux => "MUX",
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
        }
    }

    /// Parses a gate name, case-insensitively. `BUFF` is accepted as an alias
    /// for `BUF` (ISCAS-85 `.bench` files use both spellings).
    pub fn from_name(name: &str) -> Option<GateKind> {
        let upper = name.to_ascii_uppercase();
        Some(match upper.as_str() {
            "BUF" | "BUFF" => GateKind::Buf,
            "NOT" | "INV" => GateKind::Not,
            "AND" => GateKind::And,
            "NAND" => GateKind::Nand,
            "OR" => GateKind::Or,
            "NOR" => GateKind::Nor,
            "XOR" => GateKind::Xor,
            "XNOR" => GateKind::Xnor,
            "MUX" => GateKind::Mux,
            "CONST0" => GateKind::Const0,
            "CONST1" => GateKind::Const1,
            _ => return None,
        })
    }

    /// Whether a gate of this kind may have `n` fan-ins.
    pub fn accepts_arity(self, n: usize) -> bool {
        match self {
            GateKind::Const0 | GateKind::Const1 => n == 0,
            GateKind::Buf | GateKind::Not => n == 1,
            GateKind::Mux => n == 3,
            _ => n >= 2,
        }
    }

    /// The constant value, for the two tie cells.
    pub fn constant_value(self) -> Option<bool> {
        match self {
            GateKind::Const0 => Some(false),
            GateKind::Const1 => Some(true),
            _ => None,
        }
    }

    /// The kind computing the complement of this kind's function, if the
    /// complement is also a single library cell.
    ///
    /// Full-Lock's "twisting" step negates gates leading into a CLN
    /// (e.g. `OR → NOR`) and compensates with the CLN's key-configurable
    /// inverters. `Mux` has no single-cell complement and returns `None`.
    pub fn invert(self) -> Option<GateKind> {
        Some(match self {
            GateKind::Buf => GateKind::Not,
            GateKind::Not => GateKind::Buf,
            GateKind::And => GateKind::Nand,
            GateKind::Nand => GateKind::And,
            GateKind::Or => GateKind::Nor,
            GateKind::Nor => GateKind::Or,
            GateKind::Xor => GateKind::Xnor,
            GateKind::Xnor => GateKind::Xor,
            GateKind::Const0 => GateKind::Const1,
            GateKind::Const1 => GateKind::Const0,
            GateKind::Mux => return None,
        })
    }

    /// Whether the gate's output is the complement of its uninverted base
    /// function (`NAND`, `NOR`, `XNOR`, `NOT`).
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Xnor | GateKind::Not
        )
    }

    /// Evaluates the gate on boolean fan-in values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not an accepted arity for this kind; the
    /// netlist validates arities at construction so evaluation over a checked
    /// netlist never panics.
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert!(
            self.accepts_arity(inputs.len()),
            "gate {} evaluated with {} fan-ins",
            self.name(),
            inputs.len()
        );
        match self {
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Mux => {
                let (s, a, b) = (inputs[0], inputs[1], inputs[2]);
                if s {
                    b
                } else {
                    a
                }
            }
            GateKind::Const0 => false,
            GateKind::Const1 => true,
        }
    }

    /// Evaluates the gate on 64 input patterns at once (one per bit lane).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`GateKind::eval`].
    pub fn eval_u64(self, inputs: &[u64]) -> u64 {
        assert!(
            self.accepts_arity(inputs.len()),
            "gate {} evaluated with {} fan-ins",
            self.name(),
            inputs.len()
        );
        match self {
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().fold(u64::MAX, |acc, &w| acc & w),
            GateKind::Nand => !inputs.iter().fold(u64::MAX, |acc, &w| acc & w),
            GateKind::Or => inputs.iter().fold(0, |acc, &w| acc | w),
            GateKind::Nor => !inputs.iter().fold(0, |acc, &w| acc | w),
            GateKind::Xor => inputs.iter().fold(0, |acc, &w| acc ^ w),
            GateKind::Xnor => !inputs.iter().fold(0, |acc, &w| acc ^ w),
            GateKind::Mux => {
                let (s, a, b) = (inputs[0], inputs[1], inputs[2]);
                (a & !s) | (b & s)
            }
            GateKind::Const0 => 0,
            GateKind::Const1 => u64::MAX,
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth_table(kind: GateKind, arity: usize) -> Vec<bool> {
        (0..1usize << arity)
            .map(|row| {
                let bits: Vec<bool> = (0..arity).map(|i| row >> i & 1 == 1).collect();
                kind.eval(&bits)
            })
            .collect()
    }

    #[test]
    fn two_input_truth_tables_match_table_1() {
        // Rows ordered (A,B) = (0,0),(1,0),(0,1),(1,1).
        assert_eq!(
            truth_table(GateKind::And, 2),
            vec![false, false, false, true]
        );
        assert_eq!(
            truth_table(GateKind::Nand, 2),
            vec![true, true, true, false]
        );
        assert_eq!(truth_table(GateKind::Or, 2), vec![false, true, true, true]);
        assert_eq!(
            truth_table(GateKind::Nor, 2),
            vec![true, false, false, false]
        );
        assert_eq!(
            truth_table(GateKind::Xor, 2),
            vec![false, true, true, false]
        );
        assert_eq!(
            truth_table(GateKind::Xnor, 2),
            vec![true, false, false, true]
        );
    }

    #[test]
    fn mux_follows_paper_pin_order() {
        // C = A·S̄ + B·S with fan-ins [S, A, B].
        for s in [false, true] {
            for a in [false, true] {
                for b in [false, true] {
                    let expect = if s { b } else { a };
                    assert_eq!(GateKind::Mux.eval(&[s, a, b]), expect);
                }
            }
        }
    }

    #[test]
    fn unary_gates() {
        assert!(GateKind::Buf.eval(&[true]));
        assert!(!GateKind::Buf.eval(&[false]));
        assert!(!GateKind::Not.eval(&[true]));
        assert!(GateKind::Not.eval(&[false]));
    }

    #[test]
    fn multi_input_parity() {
        assert!(GateKind::Xor.eval(&[true, true, true]));
        assert!(!GateKind::Xor.eval(&[true, true, false, false]));
        assert!(!GateKind::Xnor.eval(&[true, false, false]));
    }

    #[test]
    fn eval_u64_agrees_with_eval_on_every_lane() {
        for kind in GateKind::all() {
            let arity = match kind {
                GateKind::Buf | GateKind::Not => 1,
                GateKind::Mux => 3,
                _ => 3,
            };
            if !kind.accepts_arity(arity) {
                continue;
            }
            // Pack all 2^arity rows into the low lanes of each input word.
            let rows = 1usize << arity;
            let words: Vec<u64> = (0..arity)
                .map(|i| {
                    let mut w = 0u64;
                    for row in 0..rows {
                        if row >> i & 1 == 1 {
                            w |= 1 << row;
                        }
                    }
                    w
                })
                .collect();
            let packed = kind.eval_u64(&words);
            for row in 0..rows {
                let bits: Vec<bool> = (0..arity).map(|i| row >> i & 1 == 1).collect();
                assert_eq!(
                    packed >> row & 1 == 1,
                    kind.eval(&bits),
                    "kind {kind} row {row}"
                );
            }
        }
    }

    #[test]
    fn invert_is_an_involution_except_mux() {
        for kind in GateKind::all() {
            match kind.invert() {
                Some(inv) => assert_eq!(inv.invert(), Some(kind)),
                None => assert_eq!(kind, GateKind::Mux),
            }
        }
    }

    #[test]
    fn inverted_kinds_complement_base_kinds() {
        let pairs = [
            (GateKind::And, GateKind::Nand),
            (GateKind::Or, GateKind::Nor),
            (GateKind::Xor, GateKind::Xnor),
        ];
        for (base, inv) in pairs {
            for row in 0..4usize {
                let bits = [row & 1 == 1, row >> 1 & 1 == 1];
                assert_eq!(base.eval(&bits), !inv.eval(&bits));
            }
        }
    }

    #[test]
    fn name_round_trips() {
        for kind in GateKind::all() {
            assert_eq!(GateKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(GateKind::from_name("buff"), Some(GateKind::Buf));
        assert_eq!(GateKind::from_name("bogus"), None);
    }

    #[test]
    fn arity_rules() {
        assert!(GateKind::Not.accepts_arity(1));
        assert!(!GateKind::Not.accepts_arity(2));
        assert!(GateKind::Mux.accepts_arity(3));
        assert!(!GateKind::Mux.accepts_arity(2));
        assert!(GateKind::And.accepts_arity(5));
        assert!(!GateKind::And.accepts_arity(1));
    }
}
