//! Reading and writing ISCAS-85 style `.bench` files.
//!
//! The `.bench` dialect accepted here is the one used by the logic-locking
//! literature (and by the original SAT-attack tool): `INPUT(name)`,
//! `OUTPUT(name)`, and `name = KIND(a, b, ...)` lines, `#` comments, and the
//! gate kinds of [`GateKind`]. Key inputs of locked circuits are ordinary
//! `INPUT`s whose names start with a conventional prefix (`keyinput` in the
//! published benchmarks).
//!
//! Forward references and combinational cycles are supported: gates may be
//! defined in any order.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::{GateKind, Netlist, NetlistError, Result, SignalId};

/// Parses a `.bench` netlist from a string.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed lines,
/// [`NetlistError::DuplicateName`] / [`NetlistError::UndefinedName`] for
/// inconsistent signal names, and [`NetlistError::BadArity`] for gates whose
/// fan-in count their kind rejects.
///
/// # Example
///
/// ```
/// use fulllock_netlist::bench_io;
///
/// # fn main() -> Result<(), fulllock_netlist::NetlistError> {
/// let src = "\
/// INPUT(a)
/// INPUT(b)
/// OUTPUT(y)
/// y = NAND(a, b)
/// ";
/// let nl = bench_io::parse(src, "tiny")?;
/// assert_eq!(nl.stats().gates, 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(source: &str, name: impl Into<String>) -> Result<Netlist> {
    struct GateLine {
        line_no: usize,
        output: String,
        kind: GateKind,
        fanins: Vec<String>,
    }

    let mut inputs: Vec<(usize, String)> = Vec::new();
    let mut outputs: Vec<(usize, String)> = Vec::new();
    let mut gate_lines: Vec<GateLine> = Vec::new();

    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw_line.find('#') {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = strip_directive(line, "INPUT") {
            inputs.push((line_no, rest.to_string()));
        } else if let Some(rest) = strip_directive(line, "OUTPUT") {
            outputs.push((line_no, rest.to_string()));
        } else if let Some(eq) = line.find('=') {
            let output = line[..eq].trim();
            let rhs = line[eq + 1..].trim();
            let open = rhs.find('(').ok_or_else(|| NetlistError::Parse {
                line: line_no,
                message: format!("expected KIND(...) on right-hand side, got {rhs:?}"),
            })?;
            if !rhs.ends_with(')') {
                return Err(NetlistError::Parse {
                    line: line_no,
                    message: "missing closing parenthesis".to_string(),
                });
            }
            let kind_name = rhs[..open].trim();
            let kind = GateKind::from_name(kind_name).ok_or_else(|| NetlistError::Parse {
                line: line_no,
                message: format!("unknown gate kind {kind_name:?}"),
            })?;
            let args = &rhs[open + 1..rhs.len() - 1];
            let fanins: Vec<String> = args
                .split(',')
                .map(|a| a.trim().to_string())
                .filter(|a| !a.is_empty())
                .collect();
            if output.is_empty() {
                return Err(NetlistError::Parse {
                    line: line_no,
                    message: "empty signal name on left-hand side".to_string(),
                });
            }
            gate_lines.push(GateLine {
                line_no,
                output: output.to_string(),
                kind,
                fanins,
            });
        } else {
            return Err(NetlistError::Parse {
                line: line_no,
                message: format!("unrecognized line {line:?}"),
            });
        }
    }

    let mut netlist = Netlist::new(name);
    let mut by_name: HashMap<String, SignalId> = HashMap::new();

    for (line_no, input_name) in &inputs {
        if by_name.contains_key(input_name) {
            return Err(NetlistError::Parse {
                line: *line_no,
                message: format!("signal {input_name:?} defined twice"),
            });
        }
        let id = netlist.add_input(input_name.clone());
        by_name.insert(input_name.clone(), id);
    }
    // First create every gate (deferred, so cycles and forward references
    // work), then wire fan-ins by name.
    for gl in &gate_lines {
        if by_name.contains_key(&gl.output) {
            return Err(NetlistError::Parse {
                line: gl.line_no,
                message: format!("signal {:?} defined twice", gl.output),
            });
        }
        let id = netlist
            .add_deferred_gate(gl.kind, gl.fanins.len())
            .map_err(|_| NetlistError::Parse {
                line: gl.line_no,
                message: format!(
                    "gate kind {} does not accept {} fan-ins",
                    gl.kind,
                    gl.fanins.len()
                ),
            })?;
        netlist.set_signal_name(id, gl.output.clone())?;
        by_name.insert(gl.output.clone(), id);
    }
    for gl in &gate_lines {
        let gate = by_name[&gl.output];
        for (slot, fanin_name) in gl.fanins.iter().enumerate() {
            let &fanin = by_name
                .get(fanin_name)
                .ok_or_else(|| NetlistError::UndefinedName(fanin_name.clone()))?;
            netlist.set_fanin(gate, slot, fanin)?;
        }
    }
    for (_, output_name) in &outputs {
        let &sig = by_name
            .get(output_name)
            .ok_or_else(|| NetlistError::UndefinedName(output_name.clone()))?;
        netlist.mark_output(sig);
    }
    netlist.check()?;
    Ok(netlist)
}

fn strip_directive<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(keyword)?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let rest = rest.trim_end().strip_suffix(')')?;
    Some(rest.trim())
}

/// Serializes a netlist to `.bench` text. Unnamed signals are given
/// synthesized `n<index>` names.
///
/// # Example
///
/// ```
/// use fulllock_netlist::{bench_io, GateKind, Netlist};
///
/// # fn main() -> Result<(), fulllock_netlist::NetlistError> {
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let g = nl.add_gate(GateKind::Not, &[a])?;
/// nl.mark_output(g);
/// let text = bench_io::write(&nl);
/// let back = bench_io::parse(&text, "t")?;
/// assert_eq!(back.stats(), nl.stats());
/// # Ok(())
/// # }
/// ```
pub fn write(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", netlist.name());
    let stats = netlist.stats();
    let _ = writeln!(
        out,
        "# {} inputs, {} outputs, {} gates",
        stats.inputs, stats.outputs, stats.gates
    );
    for &i in netlist.inputs() {
        let _ = writeln!(out, "INPUT({})", netlist.signal_name(i));
    }
    for &o in netlist.outputs() {
        let _ = writeln!(out, "OUTPUT({})", netlist.signal_name(o));
    }
    for g in netlist.gates() {
        let node = netlist.node(g);
        // gates() yields only gate nodes; skip defensively rather than
        // panic if that invariant is ever violated.
        let Some(kind) = node.gate_kind() else {
            continue;
        };
        let fanins: Vec<String> = node
            .fanins()
            .iter()
            .map(|&f| netlist.signal_name(f))
            .collect();
        let _ = writeln!(
            out,
            "{} = {}({})",
            netlist.signal_name(g),
            kind.name(),
            fanins.join(", ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;

    const C17: &str = "\
# c17 (real ISCAS-85 circuit)
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

    #[test]
    fn parses_c17() {
        let nl = parse(C17, "c17").unwrap();
        let stats = nl.stats();
        assert_eq!(stats.inputs, 5);
        assert_eq!(stats.outputs, 2);
        assert_eq!(stats.gates, 6);
    }

    #[test]
    fn c17_functionality() {
        let nl = parse(C17, "c17").unwrap();
        let sim = Simulator::new(&nl).unwrap();
        // Check against the NAND equations directly for every input pattern.
        for row in 0..32u32 {
            let bits: Vec<bool> = (0..5).map(|i| row >> i & 1 == 1).collect();
            let (g1, g2, g3, g6, g7) = (bits[0], bits[1], bits[2], bits[3], bits[4]);
            let g10 = !(g1 && g3);
            let g11 = !(g3 && g6);
            let g16 = !(g2 && g11);
            let g19 = !(g11 && g7);
            let g22 = !(g10 && g16);
            let g23 = !(g16 && g19);
            assert_eq!(sim.run(&bits).unwrap(), vec![g22, g23], "row {row}");
        }
    }

    #[test]
    fn round_trip_preserves_function() {
        let nl = parse(C17, "c17").unwrap();
        let text = write(&nl);
        let back = parse(&text, "c17").unwrap();
        let sim_a = Simulator::new(&nl).unwrap();
        let sim_b = Simulator::new(&back).unwrap();
        for row in 0..32u32 {
            let bits: Vec<bool> = (0..5).map(|i| row >> i & 1 == 1).collect();
            assert_eq!(sim_a.run(&bits).unwrap(), sim_b.run(&bits).unwrap());
        }
    }

    #[test]
    fn forward_references_parse() {
        let src = "\
INPUT(a)
OUTPUT(y)
y = NOT(z)
z = BUF(a)
";
        let nl = parse(src, "fwd").unwrap();
        assert_eq!(nl.stats().gates, 2);
    }

    #[test]
    fn cyclic_bench_parses() {
        let src = "\
INPUT(a)
OUTPUT(y)
y = AND(a, y)
";
        let nl = parse(src, "cyc").unwrap();
        assert!(crate::topo::is_cyclic(&nl));
    }

    #[test]
    fn mux_parses() {
        let src = "\
INPUT(s)
INPUT(a)
INPUT(b)
OUTPUT(y)
y = MUX(s, a, b)
";
        let nl = parse(src, "mux").unwrap();
        let sim = Simulator::new(&nl).unwrap();
        assert_eq!(sim.run(&[false, true, false]).unwrap(), vec![true]);
        assert_eq!(sim.run(&[true, true, false]).unwrap(), vec![false]);
    }

    #[test]
    fn unknown_kind_is_parse_error() {
        let err = parse("y = FROB(a)\n", "t").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 1, .. }));
    }

    #[test]
    fn undefined_fanin_is_error() {
        let err = parse("INPUT(a)\ny = NOT(zzz)\nOUTPUT(y)\n", "t").unwrap_err();
        assert_eq!(err, NetlistError::UndefinedName("zzz".to_string()));
    }

    #[test]
    fn duplicate_definition_is_error() {
        let err = parse("INPUT(a)\na = NOT(a)\n", "t").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 2, .. }));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let src = "\n# header\n\nINPUT(a)  # trailing\nOUTPUT(y)\ny = BUF(a)\n";
        let nl = parse(src, "t").unwrap();
        assert_eq!(nl.stats().gates, 1);
    }

    #[test]
    fn constant_cells_round_trip() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let zero = nl
            .add_named_gate(crate::GateKind::Const0, &[], "zero")
            .unwrap();
        let y = nl.add_gate(crate::GateKind::Or, &[a, zero]).unwrap();
        nl.mark_output(y);
        let text = write(&nl);
        assert!(text.contains("zero = CONST0()"));
        let back = parse(&text, "c").unwrap();
        let sim = Simulator::new(&back).unwrap();
        assert_eq!(sim.run(&[true]).unwrap(), vec![true]);
        assert_eq!(sim.run(&[false]).unwrap(), vec![false]);
    }

    #[test]
    fn bad_arity_in_bench_is_error() {
        let err = parse("INPUT(a)\ny = NOT(a, a)\nOUTPUT(y)\n", "t").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 2, .. }));
    }
}
