//! The benchmark circuit suite used by the paper's evaluation (Tables 4–5).
//!
//! The Full-Lock paper evaluates on ISCAS-85 (`c432` … `c7552`) and MCNC
//! (`apex2`, `apex4`, `i4`, `i7`) circuits. The original netlists are not
//! redistributable inside this repository, so — per the reproduction's
//! substitution policy (see `DESIGN.md`) — each circuit except the tiny,
//! well-known `c17` is a **seeded synthetic stand-in** generated with the
//! same gate count, primary-input count, and primary-output count the paper
//! reports in Table 5, and a fan-in profile capped at 5 (the maximum the
//! paper observes across ISCAS-85/MCNC).
//!
//! This preserves what the experiments actually measure: the attacks operate
//! on an oracle + locked DAG of standard cells, and Full-Lock's SAT hardness
//! comes from the inserted PLRs, not from the host circuit's particular
//! Boolean function.

use crate::random::{generate_with_profile, GateProfile, RandomCircuitConfig};
use crate::{bench_io, Netlist, NetlistError, Result};

/// Metadata for one benchmark circuit (the `# Gates` / `# I/Os` columns of
/// Table 5 in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchmarkInfo {
    /// Circuit name as used in the paper.
    pub name: &'static str,
    /// Gate count.
    pub gates: usize,
    /// Primary-input count.
    pub inputs: usize,
    /// Primary-output count.
    pub outputs: usize,
    /// Whether the netlist is the real circuit (`c17`) or a synthetic
    /// stand-in with matching statistics.
    pub synthetic: bool,
}

/// The real ISCAS-85 `c17` netlist (6 NAND gates; public-domain textbook
/// circuit).
pub const C17_BENCH: &str = "\
# c17 (ISCAS-85)
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

const SUITE: [BenchmarkInfo; 14] = [
    BenchmarkInfo {
        name: "c17",
        gates: 6,
        inputs: 5,
        outputs: 2,
        synthetic: false,
    },
    BenchmarkInfo {
        name: "c432",
        gates: 160,
        inputs: 36,
        outputs: 7,
        synthetic: true,
    },
    BenchmarkInfo {
        name: "c499",
        gates: 202,
        inputs: 41,
        outputs: 32,
        synthetic: true,
    },
    BenchmarkInfo {
        name: "c880",
        gates: 386,
        inputs: 60,
        outputs: 26,
        synthetic: true,
    },
    BenchmarkInfo {
        name: "c1355",
        gates: 546,
        inputs: 41,
        outputs: 32,
        synthetic: true,
    },
    BenchmarkInfo {
        name: "c1908",
        gates: 880,
        inputs: 33,
        outputs: 25,
        synthetic: true,
    },
    BenchmarkInfo {
        name: "c2670",
        gates: 1193,
        inputs: 157,
        outputs: 64,
        synthetic: true,
    },
    BenchmarkInfo {
        name: "c3540",
        gates: 1669,
        inputs: 50,
        outputs: 22,
        synthetic: true,
    },
    BenchmarkInfo {
        name: "c5315",
        gates: 2307,
        inputs: 178,
        outputs: 123,
        synthetic: true,
    },
    BenchmarkInfo {
        name: "c7552",
        gates: 3512,
        inputs: 206,
        outputs: 107,
        synthetic: true,
    },
    BenchmarkInfo {
        name: "apex2",
        gates: 610,
        inputs: 39,
        outputs: 3,
        synthetic: true,
    },
    BenchmarkInfo {
        name: "apex4",
        gates: 5360,
        inputs: 10,
        outputs: 19,
        synthetic: true,
    },
    BenchmarkInfo {
        name: "i4",
        gates: 338,
        inputs: 192,
        outputs: 6,
        synthetic: true,
    },
    BenchmarkInfo {
        name: "i7",
        gates: 1315,
        inputs: 199,
        outputs: 67,
        synthetic: true,
    },
];

/// All benchmark circuits of the paper's evaluation, in Table 5 order
/// (plus `c17` first, useful for fast tests).
pub fn suite() -> &'static [BenchmarkInfo] {
    &SUITE
}

/// Looks a benchmark up by name.
pub fn info(name: &str) -> Option<BenchmarkInfo> {
    SUITE.iter().copied().find(|b| b.name == name)
}

/// Loads (or synthesizes) a benchmark circuit by name.
///
/// Loading is deterministic: the synthetic circuits are generated from a
/// per-name seed, so two calls always return identical netlists.
///
/// # Errors
///
/// Returns [`NetlistError::BadConfig`] for an unknown benchmark name.
///
/// # Example
///
/// ```
/// use fulllock_netlist::benchmarks;
///
/// # fn main() -> Result<(), fulllock_netlist::NetlistError> {
/// let c432 = benchmarks::load("c432")?;
/// assert_eq!(c432.stats().gates, 160);
/// assert_eq!(c432.stats().inputs, 36);
/// # Ok(())
/// # }
/// ```
pub fn load(name: &str) -> Result<Netlist> {
    let info =
        info(name).ok_or_else(|| NetlistError::BadConfig(format!("unknown benchmark {name:?}")))?;
    if !info.synthetic {
        let mut nl = bench_io::parse(C17_BENCH, "c17")?;
        nl.set_name("c17");
        return Ok(nl);
    }
    let seed = name_seed(info.name);
    let mut nl = generate_with_profile(
        RandomCircuitConfig {
            inputs: info.inputs,
            outputs: info.outputs,
            gates: info.gates,
            max_fanin: 5,
            seed,
        },
        profile_of(info.name),
    )?;
    nl.set_name(info.name);
    Ok(nl)
}

/// Gate-kind profile of each stand-in, chosen to resemble the original:
/// `c499`/`c1355` are XOR-dominated ECC circuits, `c1908` is NAND fabric,
/// the `apex*` MCNC circuits descend from two-level PLA forms.
fn profile_of(name: &str) -> GateProfile {
    match name {
        "c499" | "c1355" => GateProfile::XorRich,
        "c1908" | "c2670" => GateProfile::NandDominant,
        "apex2" | "apex4" => GateProfile::TwoLevel,
        _ => GateProfile::Mixed,
    }
}

/// Loads every benchmark in the suite, in order.
///
/// # Errors
///
/// Propagates any generation error (none occur for the built-in suite).
pub fn load_all() -> Result<Vec<Netlist>> {
    SUITE.iter().map(|b| load(b.name)).collect()
}

/// A stable per-name seed (FNV-1a over the name, offset so `c17`'s seed is
/// never used even if someone synthesizes a circuit of the same name).
fn name_seed(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{topo, Simulator};

    #[test]
    fn suite_has_paper_rows() {
        assert_eq!(suite().len(), 14);
        let c7552 = info("c7552").unwrap();
        assert_eq!(c7552.gates, 3512);
        assert_eq!(c7552.inputs, 206);
        assert_eq!(c7552.outputs, 107);
    }

    #[test]
    fn c17_is_real() {
        let nl = load("c17").unwrap();
        assert!(!info("c17").unwrap().synthetic);
        let sim = Simulator::new(&nl).unwrap();
        // All-ones inputs: G10=G11=0, G16=G19=1, so G22=NAND(0,1)=1 and
        // G23=NAND(1,1)=0.
        assert_eq!(sim.run(&[true; 5]).unwrap(), vec![true, false]);
    }

    #[test]
    fn synthetic_benchmarks_match_published_stats() {
        for b in suite() {
            let nl = load(b.name).unwrap();
            let stats = nl.stats();
            assert_eq!(stats.gates, b.gates, "{}", b.name);
            assert_eq!(stats.inputs, b.inputs, "{}", b.name);
            assert_eq!(stats.outputs, b.outputs, "{}", b.name);
            assert!(stats.max_fanin <= 5, "{}", b.name);
        }
    }

    #[test]
    fn loading_is_deterministic() {
        assert_eq!(load("c432").unwrap(), load("c432").unwrap());
        assert_ne!(load("c432").unwrap(), load("c499").unwrap());
    }

    #[test]
    fn all_benchmarks_are_acyclic() {
        for b in suite() {
            // apex4 is the big one; this still runs in well under a second.
            let nl = load(b.name).unwrap();
            assert!(!topo::is_cyclic(&nl), "{}", b.name);
        }
    }

    #[test]
    fn profiles_shape_gate_mix() {
        use crate::GateKind;
        let c499 = load("c499").unwrap(); // XOR-rich ECC stand-in
        let hist = c499.gate_histogram();
        let xors = hist.get(&GateKind::Xor).copied().unwrap_or(0)
            + hist.get(&GateKind::Xnor).copied().unwrap_or(0);
        assert!(
            xors * 2 > c499.stats().gates,
            "c499 stand-in should be XOR-dominated ({xors} of {})",
            c499.stats().gates
        );
        let apex2 = load("apex2").unwrap(); // two-level PLA stand-in
        let hist = apex2.gate_histogram();
        let and_or = hist.get(&GateKind::And).copied().unwrap_or(0)
            + hist.get(&GateKind::Or).copied().unwrap_or(0);
        assert!(and_or * 2 > apex2.stats().gates);
    }

    #[test]
    fn unknown_name_errors() {
        assert!(load("c9999").is_err());
        assert!(info("c9999").is_none());
    }
}
