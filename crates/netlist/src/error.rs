use std::fmt;

/// Errors produced while building, parsing, or evaluating netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A gate was created with a fan-in count its [`GateKind`](crate::GateKind)
    /// does not support (e.g. a three-input `NOT`).
    BadArity {
        /// The offending gate kind, by name.
        kind: &'static str,
        /// The fan-in count that was supplied.
        got: usize,
    },
    /// A [`SignalId`](crate::SignalId) referenced a node that does not exist
    /// in this netlist.
    UnknownSignal(u32),
    /// An operation that requires an acyclic netlist found a combinational
    /// cycle through the named signal.
    Cyclic {
        /// Index of a signal on the detected cycle.
        on_cycle: u32,
    },
    /// The number of supplied input values does not match the number of
    /// primary inputs.
    InputCount {
        /// Number of primary inputs the netlist declares.
        expected: usize,
        /// Number of values supplied by the caller.
        got: usize,
    },
    /// A `.bench` file failed to parse.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A signal name was defined twice, or a gate redefined an input.
    DuplicateName(String),
    /// A named signal was referenced but never defined.
    UndefinedName(String),
    /// A generator was asked for an impossible configuration
    /// (e.g. zero inputs, or more outputs than reachable gates).
    BadConfig(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::BadArity { kind, got } => {
                write!(f, "gate kind {kind} does not accept {got} fan-ins")
            }
            NetlistError::UnknownSignal(id) => write!(f, "unknown signal id {id}"),
            NetlistError::Cyclic { on_cycle } => {
                write!(
                    f,
                    "netlist has a combinational cycle through signal {on_cycle}"
                )
            }
            NetlistError::InputCount { expected, got } => {
                write!(f, "expected {expected} input values, got {got}")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::DuplicateName(name) => write!(f, "signal name {name:?} defined twice"),
            NetlistError::UndefinedName(name) => {
                write!(f, "signal name {name:?} referenced but never defined")
            }
            NetlistError::BadConfig(msg) => write!(f, "invalid generator configuration: {msg}"),
        }
    }
}

impl std::error::Error for NetlistError {}
