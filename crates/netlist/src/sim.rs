//! Combinational simulation of acyclic netlists.
//!
//! [`Simulator`] precomputes a topological order once and then evaluates
//! input patterns repeatedly — this is the hot path of the oracle in the
//! SAT attack, and of corruption (error-rate) measurement, so a 64-way
//! bit-parallel variant is provided as well.

use crate::{topo, Netlist, NetlistError, Result, SignalId};

/// A reusable evaluator for an acyclic [`Netlist`].
///
/// # Example
///
/// ```
/// use fulllock_netlist::{GateKind, Netlist, Simulator};
///
/// # fn main() -> Result<(), fulllock_netlist::NetlistError> {
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let g = nl.add_gate(GateKind::Xor, &[a, b])?;
/// nl.mark_output(g);
/// let sim = Simulator::new(&nl)?;
/// assert_eq!(sim.run(&[true, false])?, vec![true]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    order: Vec<SignalId>,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator, computing and caching a topological order.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Cyclic`] if the netlist has a combinational
    /// cycle; use [`crate::cyclic::CyclicSimulator`] for those.
    pub fn new(netlist: &'a Netlist) -> Result<Simulator<'a>> {
        let order = topo::topo_order(netlist)?;
        Ok(Simulator { netlist, order })
    }

    /// The netlist this simulator evaluates.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Evaluates one input pattern; returns one value per primary output.
    ///
    /// `inputs[i]` drives the `i`-th entry of [`Netlist::inputs`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputCount`] if the pattern length is wrong.
    pub fn run(&self, inputs: &[bool]) -> Result<Vec<bool>> {
        let values = self.run_all(inputs)?;
        Ok(self
            .netlist
            .outputs()
            .iter()
            .map(|o| values[o.index()])
            .collect())
    }

    /// Evaluates one input pattern and returns the value of **every** signal
    /// (indexed by [`SignalId::index`]). Useful for attacks that inspect
    /// internal wires.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputCount`] if the pattern length is wrong.
    pub fn run_all(&self, inputs: &[bool]) -> Result<Vec<bool>> {
        if inputs.len() != self.netlist.inputs().len() {
            return Err(NetlistError::InputCount {
                expected: self.netlist.inputs().len(),
                got: inputs.len(),
            });
        }
        let mut values = vec![false; self.netlist.len()];
        for (slot, &sig) in self.netlist.inputs().iter().enumerate() {
            values[sig.index()] = inputs[slot];
        }
        let mut fanin_buf: Vec<bool> = Vec::with_capacity(8);
        for &s in &self.order {
            let node = self.netlist.node(s);
            if let Some(kind) = node.gate_kind() {
                fanin_buf.clear();
                fanin_buf.extend(node.fanins().iter().map(|f| values[f.index()]));
                values[s.index()] = kind.eval(&fanin_buf);
            }
        }
        Ok(values)
    }

    /// Evaluates 64 input patterns at once; `inputs[i]` carries 64 values of
    /// the `i`-th primary input, one per bit lane. Returns one packed word
    /// per primary output.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputCount`] if the pattern length is wrong.
    pub fn run_u64(&self, inputs: &[u64]) -> Result<Vec<u64>> {
        Ok(self.run_all_u64(inputs)?.outputs)
    }

    /// 64-way variant of [`Simulator::run_all`]; also returns output words.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputCount`] if the pattern length is wrong.
    pub fn run_all_u64(&self, inputs: &[u64]) -> Result<PackedValues> {
        if inputs.len() != self.netlist.inputs().len() {
            return Err(NetlistError::InputCount {
                expected: self.netlist.inputs().len(),
                got: inputs.len(),
            });
        }
        let mut values = vec![0u64; self.netlist.len()];
        for (slot, &sig) in self.netlist.inputs().iter().enumerate() {
            values[sig.index()] = inputs[slot];
        }
        let mut fanin_buf: Vec<u64> = Vec::with_capacity(8);
        for &s in &self.order {
            let node = self.netlist.node(s);
            if let Some(kind) = node.gate_kind() {
                fanin_buf.clear();
                fanin_buf.extend(node.fanins().iter().map(|f| values[f.index()]));
                values[s.index()] = kind.eval_u64(&fanin_buf);
            }
        }
        let outputs = self
            .netlist
            .outputs()
            .iter()
            .map(|o| values[o.index()])
            .collect();
        Ok(PackedValues {
            signals: values,
            outputs,
        })
    }
}

/// Result of a 64-way packed simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedValues {
    /// One packed word per signal, indexed by [`SignalId::index`].
    pub signals: Vec<u64>,
    /// One packed word per primary output.
    pub outputs: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    fn adder() -> Netlist {
        let mut nl = Netlist::new("adder");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let cin = nl.add_input("cin");
        let sum = nl.add_gate(GateKind::Xor, &[a, b, cin]).unwrap();
        let ab = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let axb = nl.add_gate(GateKind::Xor, &[a, b]).unwrap();
        let t = nl.add_gate(GateKind::And, &[axb, cin]).unwrap();
        let cout = nl.add_gate(GateKind::Or, &[ab, t]).unwrap();
        nl.mark_output(sum);
        nl.mark_output(cout);
        nl
    }

    #[test]
    fn full_adder_truth_table() {
        let nl = adder();
        let sim = Simulator::new(&nl).unwrap();
        for row in 0..8u32 {
            let a = row & 1 == 1;
            let b = row >> 1 & 1 == 1;
            let c = row >> 2 & 1 == 1;
            let got = sim.run(&[a, b, c]).unwrap();
            let total = a as u32 + b as u32 + c as u32;
            assert_eq!(got[0], total & 1 == 1, "sum for row {row}");
            assert_eq!(got[1], total >= 2, "carry for row {row}");
        }
    }

    #[test]
    fn wrong_input_count_errors() {
        let nl = adder();
        let sim = Simulator::new(&nl).unwrap();
        assert!(matches!(
            sim.run(&[true]),
            Err(NetlistError::InputCount {
                expected: 3,
                got: 1
            })
        ));
    }

    #[test]
    fn packed_matches_scalar() {
        let nl = adder();
        let sim = Simulator::new(&nl).unwrap();
        // Pack the 8 truth-table rows into lanes 0..8.
        let words: Vec<u64> = (0..3)
            .map(|i| {
                let mut w = 0u64;
                for row in 0..8u64 {
                    if row >> i & 1 == 1 {
                        w |= 1 << row;
                    }
                }
                w
            })
            .collect();
        let packed = sim.run_u64(&words).unwrap();
        for row in 0..8usize {
            let bits: Vec<bool> = (0..3).map(|i| row >> i & 1 == 1).collect();
            let scalar = sim.run(&bits).unwrap();
            for (o, word) in packed.iter().enumerate() {
                assert_eq!(word >> row & 1 == 1, scalar[o]);
            }
        }
    }

    #[test]
    fn cyclic_netlist_is_rejected() {
        let mut nl = Netlist::new("c");
        let _g = nl.add_deferred_gate(GateKind::Not, 1).unwrap();
        assert!(matches!(
            Simulator::new(&nl),
            Err(NetlistError::Cyclic { .. })
        ));
    }

    #[test]
    fn run_all_exposes_internal_wires() {
        let nl = adder();
        let sim = Simulator::new(&nl).unwrap();
        let values = sim.run_all(&[true, true, true]).unwrap();
        assert_eq!(values.len(), nl.len());
        // a AND b must be true for inputs (1,1,1).
        let ab = nl
            .gates()
            .find(|&g| nl.node(g).gate_kind() == Some(GateKind::And))
            .unwrap();
        assert!(values[ab.index()]);
    }
}
