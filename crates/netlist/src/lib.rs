//! Gate-level netlist substrate for the Full-Lock reproduction.
//!
//! This crate provides everything the locking schemes and attacks need from a
//! logic-synthesis front end:
//!
//! * a mutable gate-level [`Netlist`] with named signals, primary inputs and
//!   outputs, and multi-input standard cells ([`GateKind`]);
//! * ISCAS-85 style `.bench` parsing and writing ([`bench_io`]);
//! * topological analysis: ordering, logic levels, cycle detection and
//!   strongly-connected components ([`topo`]);
//! * fast combinational simulation, both single-pattern and 64-way
//!   bit-parallel ([`sim`]), plus three-valued fixed-point evaluation for
//!   circuits with combinational cycles ([`cyclic`]);
//! * seeded random circuit generation ([`random`]) and the synthetic
//!   ISCAS-85 / MCNC benchmark suite used by the paper's evaluation
//!   ([`benchmarks`]);
//! * signal-probability analysis used by the SPS attack ([`probability`]).
//!
//! # Example
//!
//! Build a one-bit full adder and simulate it:
//!
//! ```
//! use fulllock_netlist::{GateKind, Netlist};
//!
//! # fn main() -> Result<(), fulllock_netlist::NetlistError> {
//! let mut nl = Netlist::new("full_adder");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let cin = nl.add_input("cin");
//! let sum = nl.add_gate(GateKind::Xor, &[a, b, cin])?;
//! let ab = nl.add_gate(GateKind::And, &[a, b])?;
//! let axb = nl.add_gate(GateKind::Xor, &[a, b])?;
//! let t = nl.add_gate(GateKind::And, &[axb, cin])?;
//! let cout = nl.add_gate(GateKind::Or, &[ab, t])?;
//! nl.mark_output(sum);
//! nl.mark_output(cout);
//!
//! let sim = fulllock_netlist::Simulator::new(&nl)?;
//! assert_eq!(sim.run(&[true, true, false])?, vec![false, true]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_io;
pub mod benchmarks;
pub mod cyclic;
mod error;
mod gate;
mod netlist;
pub mod opt;
pub mod probability;
pub mod random;
pub mod sim;
pub mod topo;
pub mod verilog;

pub use error::NetlistError;
pub use gate::GateKind;
pub use netlist::{Netlist, NetlistStats, Node, NodeKind, SignalId};
pub use sim::Simulator;

/// Crate-wide result alias.
pub type Result<T, E = NetlistError> = std::result::Result<T, E>;
