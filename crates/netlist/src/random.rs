//! Seeded random combinational circuit generation.
//!
//! The generator produces ISCAS-like DAGs with a **no-dead-logic
//! guarantee**: every primary input and every gate is reachable from a
//! primary output. It works in two phases:
//!
//! 1. gate kinds and arities are sampled (mostly 2-input standard cells,
//!    some inverters/buffers, occasional wider gates), widening a few gates
//!    if the total fan-in capacity could not absorb every signal;
//! 2. fan-ins are wired from the last gate backwards while draining a
//!    *needs-a-reader* pool, so every earlier signal ends up read by some
//!    later gate. The last `outputs` gates become the primary outputs.
//!
//! Reader chains strictly increase the node index and only primary outputs
//! lack readers, so every signal reaches an output. Locality bias (fan-ins
//! prefer recent signals) gives the DAGs realistic logic depth.
//!
//! Generation is fully deterministic in the seed, which is what lets the
//! benchmark suite ([`crate::benchmarks`]) stand in for the original
//! ISCAS-85/MCNC netlists reproducibly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{GateKind, Netlist, NetlistError, Result};

/// Configuration for [`generate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomCircuitConfig {
    /// Number of primary inputs (≥ 1).
    pub inputs: usize,
    /// Number of primary outputs (≥ 1, ≤ `gates`).
    pub outputs: usize,
    /// Number of gates (≥ `outputs`).
    pub gates: usize,
    /// Largest fan-in to generate (2 ..= 5 covers the paper's observation
    /// that ISCAS-85/MCNC max fan-in is 5).
    pub max_fanin: usize,
    /// RNG seed; equal seeds give identical circuits.
    pub seed: u64,
}

impl Default for RandomCircuitConfig {
    fn default() -> Self {
        RandomCircuitConfig {
            inputs: 16,
            outputs: 8,
            gates: 100,
            max_fanin: 4,
            seed: 0,
        }
    }
}

/// The gate-kind flavor of a generated circuit, used to make the
/// benchmark stand-ins resemble their originals: ISCAS-85's `c499`/`c1355`
/// are XOR-dominated error-correction circuits, most others are NAND/NOR
/// fabric, and the MCNC `apex*` circuits descend from two-level PLA forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GateProfile {
    /// NAND/NOR-heavy with some AND/OR/XOR (generic ISCAS flavor).
    #[default]
    Mixed,
    /// XOR/XNOR-dominated (parity / ECC circuits like c499, c1355).
    XorRich,
    /// Almost exclusively NAND/NOR (c1908-style fabric).
    NandDominant,
    /// AND/OR dominated (flattened two-level PLA descendants).
    TwoLevel,
}

/// Generates a random acyclic netlist with no dead logic, using the
/// [`GateProfile::Mixed`] kind distribution.
///
/// # Errors
///
/// Returns [`NetlistError::BadConfig`] if the configuration is impossible
/// (zero inputs/outputs/gates, `max_fanin < 2`, more outputs than gates, or
/// too many inputs for the gates' total fan-in capacity).
///
/// # Example
///
/// ```
/// use fulllock_netlist::random::{generate, RandomCircuitConfig};
///
/// # fn main() -> Result<(), fulllock_netlist::NetlistError> {
/// let cfg = RandomCircuitConfig { inputs: 8, outputs: 4, gates: 40, max_fanin: 3, seed: 7 };
/// let nl = generate(cfg)?;
/// assert_eq!(nl.stats().gates, 40);
/// assert!(!fulllock_netlist::topo::is_cyclic(&nl));
/// # Ok(())
/// # }
/// ```
pub fn generate(config: RandomCircuitConfig) -> Result<Netlist> {
    generate_with_profile(config, GateProfile::Mixed)
}

/// Like [`generate`], with an explicit gate-kind profile.
///
/// # Errors
///
/// Same as [`generate`].
pub fn generate_with_profile(config: RandomCircuitConfig, profile: GateProfile) -> Result<Netlist> {
    let RandomCircuitConfig {
        inputs,
        outputs,
        gates,
        max_fanin,
        seed,
    } = config;
    if inputs == 0 {
        return Err(NetlistError::BadConfig("inputs must be >= 1".into()));
    }
    if outputs == 0 {
        return Err(NetlistError::BadConfig("outputs must be >= 1".into()));
    }
    if gates == 0 {
        return Err(NetlistError::BadConfig("gates must be >= 1".into()));
    }
    if max_fanin < 2 {
        return Err(NetlistError::BadConfig("max_fanin must be >= 2".into()));
    }
    if outputs > gates {
        return Err(NetlistError::BadConfig(format!(
            "outputs ({outputs}) may not exceed gates ({gates})"
        )));
    }

    let mut rng = StdRng::seed_from_u64(seed);

    // Phase 1: sample kinds and arities, then widen if the fan-in capacity
    // cannot absorb every signal that needs a reader.
    let mut kinds: Vec<GateKind> = (0..gates).map(|_| random_kind(&mut rng, profile)).collect();
    let mut arities: Vec<usize> = kinds
        .iter()
        .map(|k| match k {
            GateKind::Not | GateKind::Buf => 1,
            _ => {
                if max_fanin > 2 && rng.gen_bool(0.15) {
                    rng.gen_range(3..=max_fanin)
                } else {
                    2
                }
            }
        })
        .collect();
    // Signals needing a reader: every PI and every non-output gate. The
    // first gate can only read PIs, so its capacity serves PIs only —
    // counting conservatively, require total slots to cover the demand.
    let demand = inputs + gates - outputs;
    let mut capacity: usize = arities.iter().sum();
    let mut widen_at = 0usize;
    while capacity < demand && widen_at < gates {
        let room = max_fanin.saturating_sub(arities[widen_at]);
        if room > 0 && !matches!(kinds[widen_at], GateKind::Not | GateKind::Buf) {
            arities[widen_at] += room;
            capacity += room;
        } else if room > 0 {
            // Widen a unary cell by retyping it.
            kinds[widen_at] = GateKind::Nand;
            arities[widen_at] = max_fanin;
            capacity += max_fanin - 1;
        }
        widen_at += 1;
    }
    if capacity < demand {
        return Err(NetlistError::BadConfig(format!(
            "{gates} gates of fan-in <= {max_fanin} cannot absorb {inputs} inputs"
        )));
    }

    // Phase 2: create nodes, then wire fan-ins from the last gate backwards.
    let mut nl = Netlist::new(format!("random_{seed}"));
    let pis: Vec<_> = (0..inputs)
        .map(|i| nl.add_input(format!("pi{i}")))
        .collect();
    let mut gate_ids = Vec::with_capacity(gates);
    for g in 0..gates {
        let id = nl.add_deferred_gate(kinds[g], arities[g])?;
        nl.set_signal_name(id, format!("g{g}"))?;
        gate_ids.push(id);
    }
    for &g in gate_ids.iter().rev().take(outputs) {
        nl.mark_output(g);
    }

    // needs-a-reader pool, sorted by node index (ascending).
    let mut pending: Vec<crate::SignalId> = pis.clone();
    pending.extend(gate_ids.iter().take(gates - outputs).copied());
    // Prefix fan-in capacity: slots available in gates strictly below node
    // index i (only those can be consumed once the descent passes i).
    let first_gate_index = pis.len();

    for g in (0..gates).rev() {
        let gate = gate_ids[g];
        let gate_node_index = first_gate_index + g;
        // Fan-in capacity strictly below this gate (gates 0..g).
        let capacity_below: usize = arities[..g].iter().sum();
        let slots = arities[g];
        for slot in 0..slots {
            let below_now = pending.partition_point(|s| s.index() < gate_node_index);
            // Pending signals below must never exceed the fan-in capacity
            // still able to consume them.
            let must_drain = below_now + slot >= capacity_below + slots;
            let source = if below_now > 0 && (must_drain || slot == 0) {
                // Newest-first popping guarantees pending gates are drained
                // before the descent passes them (see module docs).
                pending.remove(below_now - 1)
            } else if below_now > 0 && rng.gen_bool(0.35) {
                // Optional extra drain, biased recent for depth.
                let pick = if below_now > 4 && rng.gen_bool(0.7) {
                    rng.gen_range(below_now - below_now / 3..below_now)
                } else {
                    rng.gen_range(0..below_now)
                };
                pending.remove(pick)
            } else {
                // Any earlier signal (reconvergent fan-out).
                let idx = rng.gen_range(0..gate_node_index);
                crate::SignalId::new(idx)
            };
            nl.set_fanin(gate, slot, source)?;
        }
    }
    if !pending.is_empty() {
        return Err(NetlistError::BadConfig(format!(
            "{} signals could not be given a reader; increase gates or max_fanin",
            pending.len()
        )));
    }

    nl.check()?;
    debug_assert!(!crate::topo::is_cyclic(&nl));
    Ok(nl)
}

fn random_kind(rng: &mut StdRng, profile: GateProfile) -> GateKind {
    let roll = rng.gen_range(0..100);
    match profile {
        // Rough ISCAS-85 flavor: NAND/NOR-heavy, some AND/OR, some
        // XOR/XNOR, a few inverters/buffers.
        GateProfile::Mixed => match roll {
            0..=24 => GateKind::Nand,
            25..=44 => GateKind::And,
            45..=59 => GateKind::Nor,
            60..=74 => GateKind::Or,
            75..=84 => GateKind::Xor,
            85..=89 => GateKind::Xnor,
            90..=95 => GateKind::Not,
            _ => GateKind::Buf,
        },
        GateProfile::XorRich => match roll {
            0..=49 => GateKind::Xor,
            50..=64 => GateKind::Xnor,
            65..=79 => GateKind::And,
            80..=89 => GateKind::Or,
            90..=95 => GateKind::Not,
            _ => GateKind::Buf,
        },
        GateProfile::NandDominant => match roll {
            0..=59 => GateKind::Nand,
            60..=84 => GateKind::Nor,
            85..=92 => GateKind::Not,
            93..=97 => GateKind::And,
            _ => GateKind::Buf,
        },
        GateProfile::TwoLevel => match roll {
            0..=44 => GateKind::And,
            45..=84 => GateKind::Or,
            85..=94 => GateKind::Not,
            _ => GateKind::Nand,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{topo, Simulator};

    #[test]
    fn deterministic_in_seed() {
        let cfg = RandomCircuitConfig::default();
        let a = generate(cfg).unwrap();
        let b = generate(cfg).unwrap();
        assert_eq!(a, b);
        let c = generate(RandomCircuitConfig { seed: 1, ..cfg }).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn respects_requested_sizes() {
        let cfg = RandomCircuitConfig {
            inputs: 12,
            outputs: 5,
            gates: 80,
            max_fanin: 5,
            seed: 3,
        };
        let nl = generate(cfg).unwrap();
        let stats = nl.stats();
        assert_eq!(stats.inputs, 12);
        assert_eq!(stats.outputs, 5);
        assert_eq!(stats.gates, 80);
        assert!(stats.max_fanin <= 5);
    }

    #[test]
    fn generated_circuits_are_acyclic_and_simulable() {
        for seed in 0..8 {
            let nl = generate(RandomCircuitConfig {
                seed,
                ..RandomCircuitConfig::default()
            })
            .unwrap();
            assert!(!topo::is_cyclic(&nl));
            let sim = Simulator::new(&nl).unwrap();
            let zeros = vec![false; nl.inputs().len()];
            assert_eq!(sim.run(&zeros).unwrap().len(), nl.outputs().len());
        }
    }

    #[test]
    fn no_dead_logic() {
        for seed in 0..8 {
            let nl = generate(RandomCircuitConfig {
                inputs: 20,
                outputs: 6,
                gates: 120,
                max_fanin: 4,
                seed,
            })
            .unwrap();
            let (swept, _) = nl.sweep();
            assert_eq!(
                swept.stats(),
                nl.stats(),
                "seed {seed}: sweeping must remove nothing"
            );
        }
    }

    #[test]
    fn every_input_is_used() {
        let nl = generate(RandomCircuitConfig {
            inputs: 30,
            outputs: 4,
            gates: 40,
            max_fanin: 4,
            seed: 11,
        })
        .unwrap();
        let fanouts = nl.fanouts();
        for &pi in nl.inputs() {
            assert!(
                !fanouts[pi.index()].is_empty(),
                "input {} unused",
                nl.signal_name(pi)
            );
        }
    }

    #[test]
    fn input_heavy_circuits_work() {
        // i4-like: many more inputs than half the gates.
        let nl = generate(RandomCircuitConfig {
            inputs: 192,
            outputs: 6,
            gates: 338,
            max_fanin: 5,
            seed: 1,
        })
        .unwrap();
        let (swept, _) = nl.sweep();
        assert_eq!(swept.stats(), nl.stats());
    }

    #[test]
    fn impossible_configs_error() {
        let base = RandomCircuitConfig::default();
        assert!(generate(RandomCircuitConfig { inputs: 0, ..base }).is_err());
        assert!(generate(RandomCircuitConfig { outputs: 0, ..base }).is_err());
        assert!(generate(RandomCircuitConfig { gates: 0, ..base }).is_err());
        assert!(generate(RandomCircuitConfig {
            max_fanin: 1,
            ..base
        })
        .is_err());
        assert!(generate(RandomCircuitConfig {
            outputs: 200,
            gates: 100,
            ..base
        })
        .is_err());
        // Far more inputs than any fan-in assignment can absorb.
        assert!(generate(RandomCircuitConfig {
            inputs: 100,
            outputs: 1,
            gates: 10,
            max_fanin: 2,
            seed: 0
        })
        .is_err());
    }

    #[test]
    fn depth_is_nontrivial() {
        let nl = generate(RandomCircuitConfig {
            inputs: 16,
            outputs: 8,
            gates: 200,
            max_fanin: 3,
            seed: 5,
        })
        .unwrap();
        assert!(
            topo::depth(&nl).unwrap() >= 5,
            "generator should build depth"
        );
    }
}
