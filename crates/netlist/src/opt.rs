//! Combinational logic optimization: constant folding, identity/absorption
//! rules, double-negation elimination, and structural hashing (common
//! subexpression elimination).
//!
//! Locking transformations leave redundancy behind — LUT MUX trees with
//! constant-looking keys, twisted gates feeding inverter chains — and real
//! flows resynthesize after insertion. This pass is a light-weight,
//! semantics-preserving resynthesis: the output netlist computes the same
//! function (verifiable with [`fulllock-sat`'s CEC]) with at most as many
//! gates.
//!
//! The pass requires an acyclic netlist (rules are applied in topological
//! order); cyclic netlists are rejected.
//!
//! [`fulllock-sat`'s CEC]: ../../fulllock_sat/equiv/index.html

use std::collections::HashMap;

use crate::{GateKind, Netlist, Result, SignalId};

/// Statistics of one [`optimize`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptStats {
    /// Gates before optimization.
    pub gates_before: usize,
    /// Gates after optimization (including tie cells the folding created).
    pub gates_after: usize,
    /// Gates removed by structural hashing (shared subexpressions).
    pub deduplicated: usize,
}

/// Result of [`optimize`]: the optimized netlist, a remap table (old
/// signal index → surviving new signal, if any), and statistics.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The optimized netlist.
    pub netlist: Netlist,
    /// `remap[old.index()]` = the new signal carrying the same function.
    /// Always `Some` for primary inputs and for every old signal that
    /// still drives anything.
    pub remap: Vec<Option<SignalId>>,
    /// Run statistics.
    pub stats: OptStats,
}

/// Optimizes an acyclic netlist. See the [module docs](self).
///
/// # Errors
///
/// Returns [`NetlistError::Cyclic`](crate::NetlistError::Cyclic) for
/// cyclic netlists.
///
/// # Example
///
/// ```
/// use fulllock_netlist::{opt, GateKind, Netlist};
///
/// # fn main() -> Result<(), fulllock_netlist::NetlistError> {
/// // NOT(NOT(a)) AND a  ≡  a
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let n1 = nl.add_gate(GateKind::Not, &[a])?;
/// let n2 = nl.add_gate(GateKind::Not, &[n1])?;
/// let y = nl.add_gate(GateKind::And, &[n2, a])?;
/// nl.mark_output(y);
///
/// let optimized = opt::optimize(&nl)?;
/// assert_eq!(optimized.netlist.stats().gates, 0); // output is `a` itself
/// # Ok(())
/// # }
/// ```
pub fn optimize(netlist: &Netlist) -> Result<Optimized> {
    let order = crate::topo::topo_order(netlist)?;
    let mut builder = Builder::new(netlist.name().to_string());
    let mut remap: Vec<Option<SignalId>> = vec![None; netlist.len()];
    for &old in netlist.inputs() {
        let id = builder.netlist.add_input(netlist.signal_name(old));
        remap[old.index()] = Some(id);
    }
    for old in order {
        let node = netlist.node(old);
        let Some(kind) = node.gate_kind() else {
            continue;
        };
        let fanins: Vec<SignalId> = node
            .fanins()
            .iter()
            .map(|f| remap[f.index()].expect("topological order resolves fan-ins"))
            .collect();
        let new = builder.emit(kind, &fanins)?;
        remap[old.index()] = Some(new);
        // Carry names over when the replacement is an unnamed fresh gate.
        if let Some(name) = node.name() {
            if !builder.netlist.node(new).is_input() && builder.netlist.node(new).name().is_none() {
                builder.netlist.set_signal_name(new, name)?;
            }
        }
    }
    for &o in netlist.outputs() {
        builder
            .netlist
            .mark_output(remap[o.index()].expect("outputs were processed"));
    }
    // Drop bypassed intermediates and compose the remaps.
    let (swept, sweep_map) = builder.netlist.sweep();
    let remap: Vec<Option<SignalId>> = remap
        .into_iter()
        .map(|m| m.and_then(|s| sweep_map[s.index()]))
        .collect();
    let stats = OptStats {
        gates_before: netlist.stats().gates,
        gates_after: swept.stats().gates,
        deduplicated: builder.deduplicated,
    };
    swept.check()?;
    Ok(Optimized {
        netlist: swept,
        remap,
        stats,
    })
}

struct Builder {
    netlist: Netlist,
    /// Structural hash: (kind, canonical fan-ins) → existing signal.
    cse: HashMap<(GateKind, Vec<SignalId>), SignalId>,
    /// Constant value of a signal, when known.
    constants: HashMap<SignalId, bool>,
    /// `NOT` memo: signal → its registered complement.
    complements: HashMap<SignalId, SignalId>,
    deduplicated: usize,
}

impl Builder {
    fn new(name: String) -> Builder {
        Builder {
            netlist: Netlist::new(name),
            cse: HashMap::new(),
            constants: HashMap::new(),
            complements: HashMap::new(),
            deduplicated: 0,
        }
    }

    fn constant(&mut self, value: bool) -> Result<SignalId> {
        let kind = if value {
            GateKind::Const1
        } else {
            GateKind::Const0
        };
        self.hashed(kind, Vec::new())
    }

    fn not(&mut self, x: SignalId) -> Result<SignalId> {
        if let Some(&v) = self.constants.get(&x) {
            return self.constant(!v);
        }
        if let Some(&c) = self.complements.get(&x) {
            return Ok(c);
        }
        let n = self.hashed(GateKind::Not, vec![x])?;
        self.complements.insert(x, n);
        self.complements.insert(n, x);
        Ok(n)
    }

    fn are_complements(&self, a: SignalId, b: SignalId) -> bool {
        self.complements.get(&a) == Some(&b)
    }

    /// Hash-consed raw gate creation (no rewriting).
    fn hashed(&mut self, kind: GateKind, mut fanins: Vec<SignalId>) -> Result<SignalId> {
        if matches!(
            kind,
            GateKind::And
                | GateKind::Nand
                | GateKind::Or
                | GateKind::Nor
                | GateKind::Xor
                | GateKind::Xnor
        ) {
            fanins.sort_unstable();
        }
        if let Some(&existing) = self.cse.get(&(kind, fanins.clone())) {
            self.deduplicated += 1;
            return Ok(existing);
        }
        let id = self.netlist.add_gate(kind, &fanins)?;
        if let Some(v) = kind.constant_value() {
            self.constants.insert(id, v);
        }
        self.cse.insert((kind, fanins), id);
        Ok(id)
    }

    /// Emits (a simplified form of) `kind(fanins)`.
    fn emit(&mut self, kind: GateKind, fanins: &[SignalId]) -> Result<SignalId> {
        match kind {
            GateKind::Const0 => self.constant(false),
            GateKind::Const1 => self.constant(true),
            GateKind::Buf => Ok(fanins[0]),
            GateKind::Not => self.not(fanins[0]),
            GateKind::And | GateKind::Nand => self.emit_and_family(kind, fanins),
            GateKind::Or | GateKind::Nor => self.emit_or_family(kind, fanins),
            GateKind::Xor | GateKind::Xnor => self.emit_parity(kind, fanins),
            GateKind::Mux => self.emit_mux(fanins),
        }
    }

    fn emit_and_family(&mut self, kind: GateKind, fanins: &[SignalId]) -> Result<SignalId> {
        let inverted = kind == GateKind::Nand;
        let mut kept: Vec<SignalId> = Vec::with_capacity(fanins.len());
        for &f in fanins {
            match self.constants.get(&f) {
                Some(false) => return self.finish_const(false, inverted),
                Some(true) => {}
                None => {
                    if !kept.contains(&f) {
                        kept.push(f);
                    }
                }
            }
        }
        if kept
            .iter()
            .any(|&a| kept.iter().any(|&b| self.are_complements(a, b)))
        {
            return self.finish_const(false, inverted);
        }
        match kept.len() {
            0 => self.finish_const(true, inverted),
            1 => self.finish_wire(kept[0], inverted),
            _ => self.hashed(kind, kept),
        }
    }

    fn emit_or_family(&mut self, kind: GateKind, fanins: &[SignalId]) -> Result<SignalId> {
        let inverted = kind == GateKind::Nor;
        let mut kept: Vec<SignalId> = Vec::with_capacity(fanins.len());
        for &f in fanins {
            match self.constants.get(&f) {
                Some(true) => return self.finish_const(true, inverted),
                Some(false) => {}
                None => {
                    if !kept.contains(&f) {
                        kept.push(f);
                    }
                }
            }
        }
        if kept
            .iter()
            .any(|&a| kept.iter().any(|&b| self.are_complements(a, b)))
        {
            return self.finish_const(true, inverted);
        }
        match kept.len() {
            0 => self.finish_const(false, inverted),
            1 => self.finish_wire(kept[0], inverted),
            _ => self.hashed(kind, kept),
        }
    }

    fn emit_parity(&mut self, kind: GateKind, fanins: &[SignalId]) -> Result<SignalId> {
        let mut invert = kind == GateKind::Xnor;
        // Occurrence parity: a ⊕ a = 0; constants fold into the phase.
        let mut counts: HashMap<SignalId, usize> = HashMap::new();
        for &f in fanins {
            match self.constants.get(&f) {
                Some(true) => invert = !invert,
                Some(false) => {}
                None => *counts.entry(f).or_insert(0) += 1,
            }
        }
        // Keep each odd-count signal exactly once, in first-seen order.
        let mut kept: Vec<SignalId> = Vec::with_capacity(counts.len());
        for &f in fanins {
            if counts.get(&f).is_some_and(|&c| c % 2 == 1) && !kept.contains(&f) {
                kept.push(f);
            }
        }
        // Complement pairs: a ⊕ ¬a = 1.
        loop {
            let pair = kept.iter().enumerate().find_map(|(i, &a)| {
                kept[i + 1..]
                    .iter()
                    .position(|&b| self.are_complements(a, b))
                    .map(|j| (i, i + 1 + j))
            });
            match pair {
                Some((i, j)) => {
                    kept.remove(j);
                    kept.remove(i);
                    invert = !invert;
                }
                None => break,
            }
        }
        match kept.len() {
            0 => self.finish_const(false, invert),
            1 => self.finish_wire(kept[0], invert),
            _ => self.hashed(
                if invert {
                    GateKind::Xnor
                } else {
                    GateKind::Xor
                },
                kept,
            ),
        }
    }

    fn emit_mux(&mut self, fanins: &[SignalId]) -> Result<SignalId> {
        let (s, a, b) = (fanins[0], fanins[1], fanins[2]);
        if let Some(&sv) = self.constants.get(&s) {
            return Ok(if sv { b } else { a });
        }
        if a == b {
            return Ok(a);
        }
        match (
            self.constants.get(&a).copied(),
            self.constants.get(&b).copied(),
        ) {
            (Some(false), Some(true)) => return Ok(s), // s ? 1 : 0 ≡ s
            (Some(true), Some(false)) => return self.not(s), // s ? 0 : 1 ≡ ¬s
            (Some(false), None) => {
                // s ? b : 0  ≡  s ∧ b
                return self.emit_and_family(GateKind::And, &[s, b]);
            }
            (None, Some(true)) => {
                // s ? 1 : a  ≡  s ∨ a
                return self.emit_or_family(GateKind::Or, &[s, a]);
            }
            (Some(true), None) => {
                // s ? b : 1  ≡  ¬s ∨ b
                let ns = self.not(s)?;
                return self.emit_or_family(GateKind::Or, &[ns, b]);
            }
            (None, Some(false)) => {
                // s ? 0 : a  ≡  ¬s ∧ a
                let ns = self.not(s)?;
                return self.emit_and_family(GateKind::And, &[ns, a]);
            }
            _ => {}
        }
        if s == a {
            // s ? b : s  ≡  s ∧ b
            return self.emit_and_family(GateKind::And, &[s, b]);
        }
        if s == b {
            // s ? s : a  ≡  s ∨ a
            return self.emit_or_family(GateKind::Or, &[s, a]);
        }
        self.hashed(GateKind::Mux, vec![s, a, b])
    }

    fn finish_const(&mut self, value: bool, inverted: bool) -> Result<SignalId> {
        self.constant(value ^ inverted)
    }

    fn finish_wire(&mut self, wire: SignalId, inverted: bool) -> Result<SignalId> {
        if inverted {
            self.not(wire)
        } else {
            Ok(wire)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{generate, RandomCircuitConfig};
    use crate::Simulator;

    fn equivalent_by_simulation(a: &Netlist, b: &Netlist) -> bool {
        let sim_a = Simulator::new(a).unwrap();
        let sim_b = Simulator::new(b).unwrap();
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
        for _ in 0..64 {
            let x: Vec<bool> = (0..a.inputs().len()).map(|_| rng.gen_bool(0.5)).collect();
            if sim_a.run(&x).unwrap() != sim_b.run(&x).unwrap() {
                return false;
            }
        }
        true
    }

    #[test]
    fn double_negation_folds() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let n1 = nl.add_gate(GateKind::Not, &[a]).unwrap();
        let n2 = nl.add_gate(GateKind::Not, &[n1]).unwrap();
        nl.mark_output(n2);
        let opt = optimize(&nl).unwrap();
        assert_eq!(opt.netlist.stats().gates, 0);
        assert_eq!(opt.netlist.outputs(), &[opt.remap[a.index()].unwrap()]);
    }

    #[test]
    fn complement_pair_in_and_is_const0() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let na = nl.add_gate(GateKind::Not, &[a]).unwrap();
        let g = nl.add_gate(GateKind::And, &[a, na]).unwrap();
        nl.mark_output(g);
        let opt = optimize(&nl).unwrap();
        let out = opt.netlist.outputs()[0];
        assert_eq!(opt.netlist.node(out).gate_kind(), Some(GateKind::Const0));
    }

    #[test]
    fn xor_self_cancels() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_gate(GateKind::Xor, &[a, b, a]).unwrap(); // ≡ b
        nl.mark_output(x);
        let opt = optimize(&nl).unwrap();
        assert_eq!(opt.netlist.outputs(), &[opt.remap[b.index()].unwrap()]);
    }

    #[test]
    fn xor_with_odd_repeats_keeps_each_signal_once() {
        // Regression: XOR(a, b, a, a) ≡ a ⊕ b; a naive consecutive-dedup
        // left `a` in the clause twice (found by proptest).
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_gate(GateKind::Xor, &[a, b, a, a]).unwrap();
        nl.mark_output(x);
        let opt = optimize(&nl).unwrap();
        assert!(equivalent_by_simulation(&nl, &opt.netlist));
        let out = opt.netlist.outputs()[0];
        assert_eq!(opt.netlist.node(out).fanins().len(), 2);
    }

    #[test]
    fn structural_hashing_shares_duplicates() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = nl.add_gate(GateKind::And, &[b, a]).unwrap(); // same function
        let y = nl.add_gate(GateKind::Xor, &[g1, g2]).unwrap(); // ≡ 0
        nl.mark_output(y);
        let opt = optimize(&nl).unwrap();
        let out = opt.netlist.outputs()[0];
        assert_eq!(opt.netlist.node(out).gate_kind(), Some(GateKind::Const0));
        assert!(opt.stats.deduplicated >= 1);
    }

    #[test]
    fn mux_rules() {
        let mut nl = Netlist::new("t");
        let s = nl.add_input("s");
        let a = nl.add_input("a");
        let m_same = nl.add_gate(GateKind::Mux, &[s, a, a]).unwrap(); // ≡ a
        let m_and = nl.add_gate(GateKind::Mux, &[s, s, a]).unwrap(); // ≡ s? a : s  ≡ s∧a
        nl.mark_output(m_same);
        nl.mark_output(m_and);
        let opt = optimize(&nl).unwrap();
        assert!(equivalent_by_simulation(&nl, &opt.netlist));
        assert_eq!(opt.netlist.outputs()[0], opt.remap[a.index()].unwrap());
    }

    #[test]
    fn random_circuits_stay_equivalent_and_never_grow() {
        for seed in 0..10 {
            let nl = generate(RandomCircuitConfig {
                inputs: 12,
                outputs: 6,
                gates: 120,
                max_fanin: 4,
                seed,
            })
            .unwrap();
            let opt = optimize(&nl).unwrap();
            assert!(
                opt.netlist.stats().gates <= nl.stats().gates,
                "seed {seed} grew"
            );
            assert!(
                equivalent_by_simulation(&nl, &opt.netlist),
                "seed {seed} changed function"
            );
        }
    }

    #[test]
    fn cyclic_netlists_are_rejected() {
        let mut nl = Netlist::new("c");
        let g = nl.add_deferred_gate(GateKind::Not, 1).unwrap();
        nl.mark_output(g);
        assert!(optimize(&nl).is_err());
    }

    #[test]
    fn idempotent() {
        let nl = generate(RandomCircuitConfig::default()).unwrap();
        let once = optimize(&nl).unwrap();
        let twice = optimize(&once.netlist).unwrap();
        assert_eq!(once.netlist.stats(), twice.netlist.stats());
    }
}
