//! Property-based tests of the netlist substrate: generator guarantees,
//! simulation consistency, serialization round-trips, and sweep safety.

use fulllock_netlist::random::{generate, RandomCircuitConfig};
use fulllock_netlist::{bench_io, topo, verilog, Simulator};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn config() -> impl Strategy<Value = RandomCircuitConfig> {
    (2usize..24, 1usize..8, 30usize..200, 2usize..6, any::<u64>()).prop_map(
        |(inputs, outputs, gates, max_fanin, seed)| RandomCircuitConfig {
            inputs,
            outputs: outputs.min(gates),
            gates,
            max_fanin,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generated circuits are acyclic, fully live, exactly sized, and
    /// structurally valid.
    #[test]
    fn generator_invariants(cfg in config()) {
        let nl = generate(cfg).expect("strategy yields valid configs");
        prop_assert!(nl.check().is_ok());
        prop_assert!(!topo::is_cyclic(&nl));
        let stats = nl.stats();
        prop_assert_eq!(stats.inputs, cfg.inputs);
        prop_assert_eq!(stats.outputs, cfg.outputs);
        prop_assert_eq!(stats.gates, cfg.gates);
        prop_assert!(stats.max_fanin <= cfg.max_fanin);
        // No dead logic: sweeping removes nothing.
        let (swept, _) = nl.sweep();
        prop_assert_eq!(swept.stats(), stats);
    }

    /// 64-way packed simulation agrees with scalar simulation lane by
    /// lane.
    #[test]
    fn packed_simulation_matches_scalar(cfg in config(), seed in any::<u64>()) {
        let nl = generate(cfg).expect("valid config");
        let sim = Simulator::new(&nl).expect("acyclic");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let words: Vec<u64> = (0..nl.inputs().len()).map(|_| rng.gen()).collect();
        let packed = sim.run_u64(&words).expect("sized input");
        for lane in [0usize, 17, 63] {
            let bits: Vec<bool> = words.iter().map(|w| w >> lane & 1 == 1).collect();
            let scalar = sim.run(&bits).expect("sized input");
            for (o, &word) in packed.iter().enumerate() {
                prop_assert_eq!(word >> lane & 1 == 1, scalar[o]);
            }
        }
    }

    /// `.bench` text round-trips to a functionally identical netlist.
    #[test]
    fn bench_round_trip_preserves_function(cfg in config(), seed in any::<u64>()) {
        let nl = generate(cfg).expect("valid config");
        let text = bench_io::write(&nl);
        let back = bench_io::parse(&text, nl.name()).expect("own output parses");
        prop_assert_eq!(back.stats(), nl.stats());
        let sim_a = Simulator::new(&nl).expect("acyclic");
        let sim_b = Simulator::new(&back).expect("acyclic");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let x: Vec<bool> = (0..nl.inputs().len()).map(|_| rng.gen_bool(0.5)).collect();
            prop_assert_eq!(sim_a.run(&x).expect("sized"), sim_b.run(&x).expect("sized"));
        }
    }

    /// Ternary (cyclic-capable) evaluation agrees with plain simulation on
    /// acyclic circuits and always settles.
    #[test]
    fn ternary_eval_matches_plain_on_dags(cfg in config(), seed in any::<u64>()) {
        let nl = generate(cfg).expect("valid config");
        let plain = Simulator::new(&nl).expect("acyclic");
        let ternary = fulllock_netlist::cyclic::CyclicSimulator::new(&nl);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x: Vec<bool> = (0..nl.inputs().len()).map(|_| rng.gen_bool(0.5)).collect();
        let want = plain.run(&x).expect("sized");
        let got = ternary.run(&x).expect("sized");
        prop_assert!(got.all_outputs_known());
        for (t, w) in got.outputs.iter().zip(&want) {
            prop_assert_eq!(t.to_bool(), Some(*w));
        }
    }

    /// Logic levels are consistent: every gate sits exactly one above its
    /// deepest fan-in.
    #[test]
    fn levels_are_consistent(cfg in config()) {
        let nl = generate(cfg).expect("valid config");
        let levels = topo::levels(&nl).expect("acyclic");
        for s in nl.signals() {
            let node = nl.node(s);
            if node.is_input() {
                prop_assert_eq!(levels[s.index()], 0);
            } else {
                let deepest = node
                    .fanins()
                    .iter()
                    .map(|f| levels[f.index()])
                    .max()
                    .expect("gates have fan-ins");
                prop_assert_eq!(levels[s.index()], deepest + 1);
            }
        }
    }

    /// Verilog export mentions every port and gate of the design.
    #[test]
    fn verilog_mentions_everything(cfg in config()) {
        let nl = generate(cfg).expect("valid config");
        let text = verilog::write(&nl);
        prop_assert!(text.contains("module"));
        prop_assert!(text.contains("endmodule"));
        // One assign per gate plus one per output port.
        prop_assert_eq!(
            text.matches("assign ").count(),
            nl.stats().gates + nl.outputs().len()
        );
    }
}
