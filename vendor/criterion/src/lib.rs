//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build container has no network access and no crates.io cache, so the
//! workspace vendors the slice of criterion it uses: [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), [`BenchmarkId`], [`Bencher::iter`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Methodology (simplified relative to upstream): each benchmark is warmed
//! up briefly, then timed over `sample_size` samples whose per-sample
//! iteration count is calibrated so a sample takes roughly a millisecond.
//! The mean, minimum, and maximum per-iteration times are printed in a
//! `name/param  time: [..]` line, mirroring criterion's output shape.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// The benchmark manager: entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        run_benchmark(id, 20, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks a closure under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.0), self.sample_size, f);
        self
    }

    /// Benchmarks a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id.0), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (upstream flushes reports here; nothing to do).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code under
/// test.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    result: Option<Measurement>,
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    mean: Duration,
    min: Duration,
    max: Duration,
    iters_total: u64,
}

impl Bencher {
    /// Times the closure; the measured mean/min/max per call are reported
    /// by the harness after the benchmark closure returns.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: find an iteration count giving samples
        // of at least ~1 ms (or a single call if one call exceeds that).
        let warmup_start = Instant::now();
        std::hint::black_box(f());
        let first = warmup_start.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(1).as_nanos() / first.as_nanos()).max(1) as u64;

        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut iters_total = 0u64;
        let budget = Duration::from_secs(3);
        let run_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(f());
            }
            let sample = start.elapsed() / per_sample.max(1) as u32;
            total += sample;
            min = min.min(sample);
            max = max.max(sample);
            iters_total += per_sample;
            if run_start.elapsed() > budget {
                break;
            }
        }
        let samples = (iters_total / per_sample).max(1) as u32;
        self.result = Some(Measurement {
            mean: total / samples,
            min,
            max,
            iters_total,
        });
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        sample_size,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some(m) => println!(
            "{label:<40} time: [{} {} {}]  ({} iters)",
            fmt_duration(m.min),
            fmt_duration(m.mean),
            fmt_duration(m.max),
            m.iters_total
        ),
        None => println!("{label:<40} (no measurement: Bencher::iter never called)"),
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring `criterion_main!`.
/// Command-line arguments (cargo passes `--bench`) are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_measures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(5);
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                (0..n * 1000).sum::<u64>()
            });
        });
        group.finish();
        assert!(runs > 0, "benchmark closure never executed");
    }

    #[test]
    fn ids_format_as_expected() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter("c432").0, "c432");
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(5)), "5.00 s");
    }
}
