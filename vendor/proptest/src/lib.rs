//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access and no crates.io cache, so the
//! workspace vendors the slice of proptest it uses: the [`proptest!`] macro,
//! `prop_assert*` macros, [`strategy::Strategy`] with ranges / tuples /
//! `prop_map`, [`any`], and [`collection::vec`].
//!
//! Semantics differ from upstream in one deliberate way: there is no
//! shrinking. A failing case reports its case number and the deterministic
//! per-test seed, which is enough to replay (the generator is seeded from
//! the test name, so re-running the test reproduces the failure exactly).

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections (`vec` only).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for [`vec`]: a `usize` range or an exact length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy producing `Vec`s of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + (rng.next_u64() as usize) % (self.size.hi - self.size.lo);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual glob import, mirroring `proptest::prelude::*`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn` item becomes a `#[test]` that runs the
/// body for `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                for __proptest_case in 0..config.cases {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng);)*
                    let __proptest_result: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = __proptest_result {
                        panic!(
                            "proptest `{}` failed at case {}/{} (rng seeded from test name): {}",
                            stringify!($name),
                            __proptest_case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the current test case unless the two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: both sides are {:?}", l);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)+);
    }};
}

/// Skips the current case unless the condition holds (counts as a pass —
/// this stand-in has no rejection bookkeeping).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}
