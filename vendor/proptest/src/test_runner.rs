//! The runner's support types: configuration, failure reporting, and the
//! deterministic per-test generator.

use std::fmt;

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Generated cases per test function.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    reason: String,
}

impl TestCaseError {
    /// Fails the case with the given reason.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError {
            reason: reason.into(),
        }
    }

    /// Alias of [`TestCaseError::fail`] (upstream distinguishes
    /// rejection from failure; this stand-in does not).
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::fail(reason)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.reason)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generator backing strategy sampling: xoshiro256++ seeded
/// (via SplitMix64) from the test's name, so every run of a given test
/// replays the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Generator for the named test.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name gives a stable, well-mixed seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::seeded(h)
    }

    /// Generator from an explicit seed.
    pub fn seeded(seed: u64) -> TestRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform draw from [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("foo");
        let mut b = TestRng::for_test("foo");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("bar");
        let _ = c.next_u64(); // different name, different stream (overwhelmingly)
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..500 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (2.0f64..7.0).generate(&mut rng);
            assert!((2.0..7.0).contains(&y));
        }
    }

    #[test]
    fn tuple_and_map_compose() {
        let strat = (1usize..5, 10u32..20).prop_map(|(a, b)| a + b as usize);
        let mut rng = TestRng::for_test("compose");
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((11..25).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let strat = crate::collection::vec(crate::strategy::any::<bool>(), 1..64);
        let mut rng = TestRng::for_test("vecs");
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..64).contains(&v.len()));
        }
    }

    // The macro itself, exercised end to end.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_and_asserts(a in 1usize..10, flag in any::<bool>()) {
            prop_assert!((1..10).contains(&a));
            prop_assert_eq!(a, a);
            prop_assert_ne!(a, a + 1);
            let _ = flag;
        }
    }
}
