//! Value-generation strategies: ranges, `any`, tuples, `prop_map`, `Just`.

use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with a function.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy (upstream's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws a uniform value over the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        rng.next_u64() as i32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// The canonical strategy for `T` (see [`Arbitrary`]).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
