//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no crates.io cache, so the
//! workspace vendors the thin slice of `rand`'s API it actually uses:
//! [`rngs::StdRng`] / [`rngs::SmallRng`] seeded via
//! [`SeedableRng::seed_from_u64`], the [`Rng`] sampling methods
//! (`gen`, `gen_bool`, `gen_range`, `gen_ratio`) and
//! [`seq::SliceRandom::shuffle`]/[`seq::SliceRandom::choose`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (which is ChaCha12), but every consumer in
//! this workspace treats seeds as opaque reproducibility handles, not as
//! cross-version stable distributions.

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of uniform random words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Expands a 64-bit seed into a full generator state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a generator (the `Standard` distribution
/// in upstream `rand`).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty : $wide:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add((rng.next_u64() % span) as $wide) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as $wide).wrapping_add((rng.next_u64() % (span + 1)) as $wide) as $t
            }
        }
    )*};
}

impl_signed_range!(i32: i64, i64: i64, isize: i64);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }

    /// Bernoulli draw with probability `numerator/denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0 && numerator <= denominator);
        self.next_u64() % u64::from(denominator) < u64::from(numerator)
    }

    /// Uniform draw from a range.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (SplitMix64-seeded).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Small fast generator; identical to [`StdRng`] here.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(2u32..=5);
            assert!((2..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }

    #[test]
    fn choose_hits_every_element_eventually() {
        let mut rng = StdRng::seed_from_u64(11);
        let v = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &x = v.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
