#!/usr/bin/env bash
# Regenerates every table and figure of the paper (see EXPERIMENTS.md).
#
# Since the campaign supervisor landed this is a thin wrapper around
# `fulllock campaign --plan builtin:paper`: per-binary timeouts, retries,
# log capture, and the resumable manifest all live in the supervisor
# (crates/harness). The wrapper only rebuilds, runs the campaign, and
# concatenates the per-job logs into the flat snapshot file older tooling
# expects.
#
# Usage:
#   scripts/run_all_experiments.sh [output-file]
#
# Scale knobs (see crates/bench/src/lib.rs):
#   FULLLOCK_TIMEOUT_SECS   per-attack budget, default 10
#   FULLLOCK_FULL=1         extended sweeps toward the paper's sizes
#   FULLLOCK_JOBS           parallel experiment binaries, default 1
#   FULLLOCK_RESUME=1       skip binaries the manifest already records
#   FULLLOCK_CERTIFY        solver answer certification, default model
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-experiments_snapshot.txt}"
CAMPAIGN_DIR="${FULLLOCK_CAMPAIGN_DIR:-campaign}"
: "${FULLLOCK_TIMEOUT_SECS:=10}"
export FULLLOCK_TIMEOUT_SECS
# Paper tables are produced with every SAT model re-checked against the
# original CNF (DESIGN.md §5e); the measured overhead is < 5%.
: "${FULLLOCK_CERTIFY:=model}"
export FULLLOCK_CERTIFY

cargo build --release -p fulllock-bench -p full-lock

FULLLOCK=target/release/fulllock
RESUME_FLAG=()
if [ "${FULLLOCK_RESUME:-0}" = "1" ]; then
  RESUME_FLAG=(--resume)
fi

"$FULLLOCK" campaign \
  --plan builtin:paper \
  --out-dir "$CAMPAIGN_DIR" \
  --jobs "${FULLLOCK_JOBS:-1}" \
  "${RESUME_FLAG[@]}"

{
  echo "# Full-Lock experiment snapshot ($(date -u +%Y-%m-%dT%H:%M:%SZ))"
  echo "# FULLLOCK_TIMEOUT_SECS=$FULLLOCK_TIMEOUT_SECS FULLLOCK_FULL=${FULLLOCK_FULL:-}"
  echo "# manifest: $CAMPAIGN_DIR/campaign.json"
  "$FULLLOCK" campaign --plan builtin:paper --print-plan | while read -r bin; do
    echo
    echo "== $bin =="
    # Highest-numbered attempt is the one whose status the manifest records.
    log=$(ls "$CAMPAIGN_DIR"/logs/"$bin".attempt*.stdout.log 2>/dev/null | sort -V | tail -1)
    if [ -n "$log" ]; then
      cat "$log"
    else
      echo "(no output captured — see $CAMPAIGN_DIR/campaign.json)"
    fi
  done
} | tee "$OUT"

echo
echo "snapshot written to $OUT"
echo "per-job manifest: $CAMPAIGN_DIR/campaign.json"
