#!/usr/bin/env bash
# Regenerates every table and figure of the paper (see EXPERIMENTS.md).
#
# Usage:
#   scripts/run_all_experiments.sh [output-file]
#
# Scale knobs (see crates/bench/src/lib.rs):
#   FULLLOCK_TIMEOUT_SECS   per-attack budget, default 10
#   FULLLOCK_FULL=1         extended sweeps toward the paper's sizes
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-experiments_snapshot.txt}"
: "${FULLLOCK_TIMEOUT_SECS:=10}"
export FULLLOCK_TIMEOUT_SECS

cargo build --release -p fulllock-bench

BIN=target/release
{
  echo "# Full-Lock experiment snapshot ($(date -u +%Y-%m-%dT%H:%M:%SZ))"
  echo "# FULLLOCK_TIMEOUT_SECS=$FULLLOCK_TIMEOUT_SECS FULLLOCK_FULL=${FULLLOCK_FULL:-}"
  for bin in fig1_dpll_hardness table1_tseytin topology_report table2_cln_sat \
             table3_cln_ppa fig5_stt_lut fig6_insertion_example \
             table4_fulllock_cycsat table5_plr_sizing fig7_clause_var_ratio \
             removal_study appsat_study ablation_study; do
    echo
    echo "== $bin =="
    "$BIN/$bin"
  done
} | tee "$OUT"

echo
echo "snapshot written to $OUT"
