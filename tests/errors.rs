//! Error-type contract tests (the C-GOOD-ERR checklist): every public
//! error implements `Display` + `Error`, produces lowercase-ish concise
//! messages, and is `Send + Sync` for multithreaded harnesses.

use std::error::Error;

use full_lock::attacks::AttackError;
use full_lock::locking::LockError;
use full_lock::netlist::NetlistError;
use full_lock::sat::SatError;

fn assert_well_behaved<E: Error + Send + Sync + 'static>(error: E) {
    let message = error.to_string();
    assert!(!message.is_empty());
    assert!(
        !message.ends_with('.'),
        "error messages should not end with punctuation: {message:?}"
    );
    let boxed: Box<dyn Error + Send + Sync> = Box::new(error);
    assert!(boxed.source().is_some() || boxed.source().is_none()); // callable
}

#[test]
fn netlist_errors_are_well_behaved() {
    assert_well_behaved(NetlistError::BadArity {
        kind: "NOT",
        got: 3,
    });
    assert_well_behaved(NetlistError::UnknownSignal(7));
    assert_well_behaved(NetlistError::Cyclic { on_cycle: 2 });
    assert_well_behaved(NetlistError::InputCount {
        expected: 4,
        got: 2,
    });
    assert_well_behaved(NetlistError::Parse {
        line: 3,
        message: "bad token".into(),
    });
    assert_well_behaved(NetlistError::DuplicateName("x".into()));
    assert_well_behaved(NetlistError::UndefinedName("y".into()));
    assert_well_behaved(NetlistError::BadConfig("nope".into()));
}

#[test]
fn sat_errors_are_well_behaved() {
    assert_well_behaved(SatError::Dimacs {
        line: 1,
        message: "bad literal".into(),
    });
    assert_well_behaved(SatError::BadConfig("nope".into()));
    assert_well_behaved(SatError::FaultSpec {
        spec: "site=frob".into(),
        message: "unknown action".into(),
    });
    let wrapped = SatError::Netlist(NetlistError::UnknownSignal(1));
    assert!(wrapped.source().is_some(), "wrapped errors expose a source");
    assert_well_behaved(wrapped);
}

#[test]
fn lock_errors_are_well_behaved() {
    assert_well_behaved(LockError::BadConfig("nope".into()));
    assert_well_behaved(LockError::HostTooSmall {
        needed: 8,
        available: 3,
    });
    assert_well_behaved(LockError::SelectionFailed("stuck".into()));
    assert_well_behaved(LockError::KeyLength {
        expected: 4,
        got: 2,
    });
    let wrapped = LockError::Netlist(NetlistError::UnknownSignal(1));
    assert!(wrapped.source().is_some());
    assert_well_behaved(wrapped);
}

#[test]
fn attack_errors_are_well_behaved() {
    assert_well_behaved(AttackError::InterfaceMismatch {
        locked_inputs: 4,
        oracle_inputs: 5,
    });
    assert_well_behaved(AttackError::Unsupported("cyclic".into()));
    assert_well_behaved(AttackError::CheckpointIo {
        path: "/tmp/x.ckpt".into(),
        message: "disk full".into(),
    });
    assert_well_behaved(AttackError::CheckpointFormat {
        path: "/tmp/x.ckpt".into(),
        message: "version 99".into(),
    });
    assert_well_behaved(AttackError::CheckpointFormat {
        path: std::path::PathBuf::new(),
        message: "wrong attack".into(),
    });
    let wrapped = AttackError::Lock(LockError::BadConfig("nope".into()));
    assert!(wrapped.source().is_some());
    assert_well_behaved(wrapped);
}

/// Malformed `.bench` text must come back as a typed parse error with the
/// offending line — never a panic (regression guard for the writer/parser
/// I/O paths).
#[test]
fn malformed_bench_is_a_typed_error() {
    use full_lock::netlist::bench_io;
    for (bad, what) in [
        ("INPUT(a)\nz = FROB(a)\nOUTPUT(z)", "unknown gate"),
        ("INPUT(a)\nz = AND(a, ghost)\nOUTPUT(z)", "undefined fanin"),
        ("INPUT(a)\nz = NOT(a, a)\nOUTPUT(z)", "bad arity"),
        ("INPUT(a)\nz = AND a, a\nOUTPUT(z)", "missing parens"),
        ("garbage line\n", "free-form garbage"),
    ] {
        let err = bench_io::parse(bad, "bad").expect_err(what);
        assert_well_behaved(err);
    }
}
