//! Scaled-down qualitative checks of the paper's headline claims — every
//! table/figure's *shape*, small enough to run in the test suite. The
//! full-size regenerations live in `crates/bench/src/bin/`.

use std::time::Duration;

use full_lock::attacks::{removal, sps, AppSatConfig, Attack, SatAttackConfig, SimOracle};
use full_lock::bench::cln_testbed;
use full_lock::locking::{
    corruption, AntiSat, ClnTopology, FullLock, FullLockConfig, LockingScheme, PlrSpec, SarLock,
    WireSelection,
};
use full_lock::netlist::benchmarks;
use full_lock::sat::dpll;
use full_lock::sat::random_sat::{generate, RandomSatConfig};

/// Fig 1: the easy-hard-easy DPLL effort curve.
#[test]
fn claim_fig1_hard_band_exists() {
    let median_calls = |ratio: f64| -> u64 {
        let mut calls: Vec<u64> = (0..7)
            .map(|seed| {
                let cnf = generate(RandomSatConfig::from_ratio(35, ratio, 3, seed)).unwrap();
                dpll::solve(&cnf, None).stats.recursive_calls
            })
            .collect();
        calls.sort_unstable();
        calls[calls.len() / 2]
    };
    let easy_low = median_calls(2.0);
    let hard = median_calls(4.5);
    let easy_high = median_calls(8.0);
    assert!(
        hard > 2 * easy_low,
        "hard {hard} vs under-constrained {easy_low}"
    );
    assert!(
        hard > easy_high,
        "hard {hard} vs over-constrained {easy_high}"
    );
}

/// Table 2: almost non-blocking CLNs are much harder than blocking CLNs
/// of equal size.
#[test]
fn claim_table2_nonblocking_beats_blocking() {
    let time_for = |topology: ClnTopology| {
        let (host, locked) = cln_testbed(16, topology, 2);
        let oracle = SimOracle::new(&host).unwrap();
        let report = SatAttackConfig {
            timeout: Some(Duration::from_secs(120)),
            ..Default::default()
        }
        .run(&locked, &oracle)
        .unwrap();
        assert!(report.outcome.is_broken(), "N=16 should fall within 2 min");
        report.elapsed
    };
    let blocking = time_for(ClnTopology::Shuffle);
    let almost = time_for(ClnTopology::AlmostNonBlocking);
    assert!(
        almost > 3 * blocking,
        "almost non-blocking ({almost:?}) should dwarf blocking ({blocking:?})"
    );
}

/// Table 2 growth: attack time increases steeply with CLN size.
#[test]
fn claim_table2_exponential_growth() {
    let time_for = |n: usize| {
        let (host, locked) = cln_testbed(n, ClnTopology::Shuffle, 3);
        let oracle = SimOracle::new(&host).unwrap();
        let report = SatAttackConfig::default().run(&locked, &oracle).unwrap();
        assert!(report.outcome.is_broken());
        report.elapsed
    };
    let t8 = time_for(8);
    let t32 = time_for(32);
    assert!(t32 > 5 * t8, "N=32 ({t32:?}) should dwarf N=8 ({t8:?})");
}

/// §2/§4.2: Full-Lock corrupts heavily; SARLock barely corrupts.
#[test]
fn claim_corruption_separation() {
    let original = benchmarks::load("c432").unwrap();
    let fl = FullLock::new(FullLockConfig::single_plr(8))
        .lock(&original)
        .unwrap();
    let sl = SarLock::new(16, 0).lock(&original).unwrap();
    let fl_err = corruption::measure(&fl, &original, 6, 24, 1)
        .unwrap()
        .pattern_error_rate();
    let sl_err = corruption::measure(&sl, &original, 6, 24, 1)
        .unwrap()
        .pattern_error_rate();
    assert!(fl_err > 0.5, "Full-Lock corruption {fl_err}");
    assert!(sl_err < 0.05, "SARLock corruption {sl_err}");
}

/// §4.2: AppSAT settles on SARLock, gains nothing on Full-Lock.
#[test]
fn claim_appsat_separation() {
    let original = benchmarks::load("c432").unwrap();
    let oracle = SimOracle::new(&original).unwrap();
    let sl = SarLock::new(12, 1).lock(&original).unwrap();
    let sl_report = AppSatConfig::default().run(&sl, &oracle).unwrap();
    assert!(
        sl_report.outcome.is_compromised(),
        "AppSAT must settle on SARLock: {:?}",
        sl_report.outcome
    );

    let fl = FullLock::new(FullLockConfig::single_plr(16))
        .lock(&original)
        .unwrap();
    let oracle = SimOracle::new(&original).unwrap();
    let fl_report = AppSatConfig {
        base: SatAttackConfig {
            timeout: Some(Duration::from_millis(500)),
            ..Default::default()
        },
        ..Default::default()
    }
    .run(&fl, &oracle)
    .unwrap();
    assert!(!fl_report.outcome.is_compromised());
    let full_lock::attacks::AttackDetails::AppSat(details) = &fl_report.details else {
        panic!("appsat reports AppSat details");
    };
    assert!(details.measured_error > 0.05);
}

/// §4.2.2: best-case removal fails exactly when twisting is on.
#[test]
fn claim_removal_separation() {
    let original = benchmarks::load("c880").unwrap();
    let lock_with_twist = |twist: f64| {
        let config = FullLockConfig {
            plrs: vec![PlrSpec {
                cln_size: 8,
                topology: ClnTopology::AlmostNonBlocking,
                with_luts: false,
                with_inverters: true,
            }],
            selection: WireSelection::Acyclic,
            twist_probability: twist,
            seed: 6,
        };
        FullLock::new(config).lock_with_trace(&original).unwrap()
    };
    let oracle = SimOracle::new(&original).unwrap();
    let (plain, plain_trace) = lock_with_twist(0.0);
    let study = removal::study_with_oracle(&plain, &plain_trace, &oracle, 200, 7).unwrap();
    assert!(study.recovered, "untwisted CLN-only lock must be removable");

    let (twisted, twisted_trace) = lock_with_twist(1.0);
    let study = removal::study_with_oracle(&twisted, &twisted_trace, &oracle, 200, 8).unwrap();
    assert!(!study.recovered, "twisted Full-Lock must survive removal");
}

/// §4.2.3 + SPS: Anti-SAT's skewed block is findable; Full-Lock's is not.
#[test]
fn claim_sps_separation() {
    let original = benchmarks::load("c432").unwrap();
    let anti = AntiSat::new(16, 2).lock(&original).unwrap();
    let oracle = SimOracle::new(&original).unwrap();
    let report = sps::scan_with_oracle(&anti, &oracle, 0.45, 150, 9).unwrap();
    assert!(report.succeeded(), "SPS must break Anti-SAT");

    let fl = FullLock::new(FullLockConfig::single_plr(8))
        .lock(&original)
        .unwrap();
    let oracle = SimOracle::new(&original).unwrap();
    let report = sps::scan_with_oracle(&fl, &oracle, 0.45, 150, 10).unwrap();
    assert!(!report.succeeded(), "SPS must not break Full-Lock");
}

/// Fig 7: the MUX-mesh schemes (Full-Lock, Cross-Lock) produce markedly
/// denser CNF than XOR/point-function locking.
#[test]
fn claim_fig7_ratio_ordering() {
    use full_lock::attacks::encode_locked;
    use full_lock::sat::Cnf;

    let original = benchmarks::load("c432").unwrap();
    let asymptotic = |locked: &full_lock::locking::LockedCircuit| {
        let mut cnf = Cnf::new();
        let data: Vec<_> = locked.data_inputs.iter().map(|_| cnf.new_var()).collect();
        let keys: Vec<_> = locked.key_inputs.iter().map(|_| cnf.new_var()).collect();
        encode_locked(locked, &mut cnf, &data, &keys);
        cnf.num_clauses() as f64 / (cnf.num_vars() - keys.len()) as f64
    };
    let fl = FullLock::new(FullLockConfig {
        plrs: vec![PlrSpec::new(16), PlrSpec::new(16)],
        selection: WireSelection::Acyclic,
        twist_probability: 0.5,
        seed: 1,
    })
    .lock(&original)
    .unwrap();
    let sl = SarLock::new(16, 1).lock(&original).unwrap();
    let fl_ratio = asymptotic(&fl);
    let sl_ratio = asymptotic(&sl);
    assert!(
        fl_ratio > 3.4,
        "Full-Lock ratio {fl_ratio} should sit in the hard band"
    );
    assert!(
        fl_ratio > sl_ratio + 0.4,
        "Full-Lock ({fl_ratio}) must clearly exceed SARLock ({sl_ratio})"
    );
}
