//! The supervisor itself is killed with SIGKILL mid-campaign; a second
//! invocation with `--resume` must finish only the remaining jobs and
//! never re-execute the ones the manifest already records as succeeded.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use full_lock::harness::manifest::{CampaignManifest, JobStatus};

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fulllock_kill9_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// A plan with one quick counting job and one job that hangs on its first
/// execution (so the supervisor is reliably killed while it runs) but
/// completes instantly once its marker file exists.
fn write_plan(dir: &Path) -> PathBuf {
    let quick = format!("echo run >> {}", dir.join("count_quick").display());
    let slow = format!(
        "echo run >> {c}; if [ ! -f {m} ]; then touch {m}; sleep 60; fi",
        c = dir.join("count_slow").display(),
        m = dir.join("slow_marker").display()
    );
    let json = format!(
        concat!(
            "{{\"version\":1,\"name\":\"kill9\",\"jobs\":[",
            "{{\"id\":\"quick\",\"program\":\"/bin/sh\",\"args\":[\"-c\",{q:?}]}},",
            "{{\"id\":\"slow\",\"program\":\"/bin/sh\",\"args\":[\"-c\",{s:?}]}}",
            "]}}"
        ),
        q = quick,
        s = slow
    );
    let path = dir.join("plan.json");
    std::fs::write(&path, json).expect("plan written");
    path
}

fn count_lines(path: &Path) -> usize {
    std::fs::read_to_string(path)
        .map(|t| t.lines().count())
        .unwrap_or(0)
}

#[test]
fn resume_after_supervisor_sigkill_completes_remaining_jobs() {
    let dir = workdir("resume");
    let plan = write_plan(&dir);
    let out_dir = dir.join("campaign");
    let args = |resume: bool| {
        let mut v = vec![
            "campaign".to_string(),
            "--plan".to_string(),
            plan.display().to_string(),
            "--out-dir".to_string(),
            out_dir.display().to_string(),
            "--jobs".to_string(),
            "1".to_string(),
            "--max-attempts".to_string(),
            "1".to_string(),
            "--timeout-secs".to_string(),
            "120".to_string(),
        ];
        if resume {
            v.push("--resume".to_string());
        }
        v
    };

    // First run: jobs execute in plan order, so "quick" succeeds and the
    // supervisor is stuck waiting on "slow" when we SIGKILL it.
    let mut supervisor = Command::new(env!("CARGO_BIN_EXE_fulllock"))
        .args(args(false))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("supervisor starts");

    let manifest_path = out_dir.join("campaign.json");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(Instant::now() < deadline, "quick job never finished");
        if let Ok(m) = CampaignManifest::load(&manifest_path) {
            let quick_done = m
                .job("quick")
                .is_some_and(|r| r.status == JobStatus::Succeeded);
            let slow_started = m
                .job("slow")
                .is_some_and(|r| r.status == JobStatus::Running);
            if quick_done && slow_started {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    supervisor.kill().expect("SIGKILL the supervisor");
    supervisor.wait().expect("reap the supervisor");

    // The crash site: one success on disk, one job marked running.
    let crashed = CampaignManifest::load(&manifest_path).expect("manifest survives the kill");
    assert_eq!(
        crashed.job("quick").expect("record").status,
        JobStatus::Succeeded
    );
    assert_eq!(
        crashed.job("slow").expect("record").status,
        JobStatus::Running
    );

    // Resume: must complete without re-running the succeeded job.
    let out = Command::new(env!("CARGO_BIN_EXE_fulllock"))
        .args(args(true))
        .output()
        .expect("resume run executes");
    assert!(
        out.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("skipped"), "summary mentions skips:\n{text}");

    let resumed = CampaignManifest::load(&manifest_path).expect("final manifest");
    assert_eq!(
        resumed.job("quick").expect("record").status,
        JobStatus::Skipped,
        "succeeded job is skipped on resume"
    );
    assert_eq!(
        resumed.job("slow").expect("record").status,
        JobStatus::Succeeded
    );

    assert_eq!(
        count_lines(&dir.join("count_quick")),
        1,
        "quick job must not re-execute on resume"
    );
    // The interrupted attempt wrote one line before hanging; the resumed
    // attempt wrote the second.
    assert_eq!(count_lines(&dir.join("count_slow")), 2);
    std::fs::remove_dir_all(&dir).ok();
}
