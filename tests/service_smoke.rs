//! Crash-recovery smoke test of the real `fulllock serve` binary: start
//! a server, load it with shell jobs plus a real checkpointed SAT-attack
//! job, SIGKILL it mid-flight, restart it on the same state directory,
//! and verify every job still completes **exactly once** (the
//! `completions` counter the sharded queue persists). Ends with a
//! SIGTERM to check the restarted server drains gracefully.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use full_lock::attacks::AttackReport;
use full_lock::harness::json::Json;
use full_lock::harness::plan::JobSpec;
use full_lock::harness::service::{Client, Endpoint, ServiceReply};
use full_lock::locking::{LockingScheme, Rll};
use full_lock::netlist::{bench_io, benchmarks};

const FULLLOCK: &str = env!("CARGO_BIN_EXE_fulllock");

struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "fulllock-service-smoke-{tag}-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("scratch dir");
        Scratch { dir }
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

fn spawn_server(dir: &Path, sock: &Path) -> Child {
    Command::new(FULLLOCK)
        .args([
            "serve",
            "--listen",
            &format!("unix:{}", sock.display()),
            "--state-dir",
            dir.join("state").to_str().expect("utf8 path"),
            "--workers",
            "3",
            "--grace-secs",
            "0.5",
            "--max-attempts",
            "4",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn fulllock serve")
}

fn wait_up(client: &Client) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !client.is_up() {
        assert!(Instant::now() < deadline, "server never came up");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn wait_state(client: &Client, job: &str, want: &str) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let state = client
            .status(job)
            .expect("status")
            .job_state()
            .map(|s| s.as_str().to_string());
        if state.as_deref() == Some(want) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "job {job} never reached {want} (last: {state:?})"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The job summary object out of a status reply.
fn summary(reply: &ServiceReply) -> &Json {
    let ServiceReply::Ok(json) = reply else {
        panic!("status failed: {reply:?}")
    };
    json.get("job").expect("job summary")
}

#[test]
fn sigkill_mid_flight_then_restart_completes_every_job_exactly_once() {
    let scratch = Scratch::new("kill9");
    let sock = scratch.dir.join("serve.sock");
    let endpoint = Endpoint::Unix(sock.clone());
    let client = Client::new(endpoint.clone());

    // A small real attack workload: c17 locked with a 4-key-bit RLL.
    // The job checkpoints every DIP iteration and resumes after the
    // crash, so oracle queries bought before the SIGKILL are not
    // re-bought by the restarted attempt.
    let original = benchmarks::load("c17").expect("suite benchmark");
    let locked = Rll::new(4, 1).lock(&original).expect("lockable");
    let oracle_path = scratch.dir.join("oracle.bench");
    let locked_path = scratch.dir.join("locked.bench");
    std::fs::write(&oracle_path, bench_io::write(&original)).expect("write oracle");
    std::fs::write(&locked_path, bench_io::write(&locked.netlist)).expect("write locked");

    let mut server = spawn_server(&scratch.dir, &sock);
    wait_up(&client);

    // Ten shell jobs long enough that several are in flight at kill
    // time, plus the attack job.
    let mut ids: Vec<String> = Vec::new();
    for i in 0..10 {
        let id = format!("smoke-{i:02}");
        let spec = JobSpec::new(&id, "/bin/sh")
            .arg("-c")
            .arg("sleep 1 && echo ok > {job_dir}/proof");
        let reply = client.submit("smoke", spec).expect("submit");
        assert!(reply.error_code().is_none(), "{id}: {reply:?}");
        ids.push(id);
    }
    let attack = JobSpec::new("attack-c17", FULLLOCK)
        .arg("attack")
        .arg(locked_path.to_str().expect("utf8 path"))
        .arg("--oracle")
        .arg(oracle_path.to_str().expect("utf8 path"))
        .arg("--checkpoint")
        .arg("{job_dir}/attack.ckpt")
        .arg("--resume")
        .arg("--json")
        .arg("{job_dir}/report.json");
    let reply = client.submit("smoke", attack).expect("submit attack");
    assert!(reply.error_code().is_none(), "attack: {reply:?}");
    ids.push("attack-c17".to_string());

    // SIGKILL the server once work is demonstrably in flight.
    wait_state(&client, "smoke-00", "running");
    server.kill().expect("SIGKILL server");
    server.wait().expect("reap server");

    // Restart on the same state directory: the sharded queue re-queues
    // interrupted jobs and the workers finish everything.
    let mut server = spawn_server(&scratch.dir, &sock);
    wait_up(&client);
    for id in &ids {
        let done = client.wait(id, Duration::from_secs(120)).expect("wait");
        assert_eq!(
            done.job_state().map(|s| s.as_str()),
            Some("done"),
            "{id}: {done:?}"
        );
        // Exactly once: however many attempts the crash cost, the queue
        // records a single completion and never re-runs a finished job.
        let status = client.status(id).expect("status");
        let job = summary(&status);
        assert_eq!(
            job.get("completions").and_then(Json::as_u64),
            Some(1),
            "{id}: {status:?}"
        );
    }

    // The shell jobs really ran (their proof files exist) and the
    // attack job produced a decodable wire report with the key found.
    for id in ids.iter().filter(|id| id.starts_with("smoke-")) {
        let proof = scratch.dir.join("state/jobs").join(id).join("proof");
        assert!(proof.exists(), "missing {}", proof.display());
    }
    let report_path = scratch.dir.join("state/jobs/attack-c17/report.json");
    let text = std::fs::read_to_string(&report_path).expect("attack report");
    let report = AttackReport::from_json(&text).expect("wire schema");
    assert!(report.outcome.is_broken(), "{:?}", report.outcome);

    // Graceful drain: SIGTERM the restarted server and expect a clean
    // exit (everything is terminal, so nothing is interrupted).
    let term = Command::new("kill")
        .args(["-TERM", &server.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success(), "kill -TERM failed");
    let deadline = Instant::now() + Duration::from_secs(20);
    let status = loop {
        if let Some(status) = server.try_wait().expect("try_wait") {
            break status;
        }
        assert!(Instant::now() < deadline, "server ignored SIGTERM");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(status.success(), "drain exit: {status}");
}
