//! Integration tests of the `fulllock` command-line binary: the full
//! lock → verify → attack → export → optimize workflow over real files.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

const C17: &str = "\
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fulllock_cli_{tag}_{}", std::process::id()));
    fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fulllock"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn help_lists_subcommands() {
    let out = run(&["--help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for sub in ["stats", "lock", "verify", "attack", "export", "optimize"] {
        assert!(text.contains(sub), "help missing {sub}");
    }
}

#[test]
fn unknown_subcommand_fails() {
    let out = run(&["frobnicate"]);
    assert!(!out.status.success());
}

#[test]
fn stats_reports_shape() {
    let dir = workdir("stats");
    let path = dir.join("c17.bench");
    fs::write(&path, C17).unwrap();
    let out = run(&["stats", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("5 inputs, 2 outputs, 6 gates"));
    assert!(text.contains("NAND: 6"));
}

#[test]
fn full_lock_attack_verify_flow() {
    let dir = workdir("flow");
    let original = dir.join("c17.bench");
    let locked = dir.join("locked.bench");
    let key_file = dir.join("key.txt");
    fs::write(&original, C17).unwrap();

    // Lock with RLL (small enough to attack instantly).
    let out = run(&[
        "lock",
        original.to_str().unwrap(),
        "-o",
        locked.to_str().unwrap(),
        "--scheme",
        "rll",
        "--bits",
        "4",
        "--seed",
        "7",
        "--key-out",
        key_file.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let key = fs::read_to_string(&key_file).unwrap().trim().to_string();
    assert_eq!(key.len(), 4);

    // Formal verification of the written key.
    let out = run(&[
        "verify",
        locked.to_str().unwrap(),
        "--oracle",
        original.to_str().unwrap(),
        "--key",
        &key,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("PROVEN"));

    // A wrong key must be rejected with a counterexample.
    let wrong: String = key
        .chars()
        .map(|c| if c == '0' { '1' } else { '0' })
        .collect();
    let out = run(&[
        "verify",
        locked.to_str().unwrap(),
        "--oracle",
        original.to_str().unwrap(),
        "--key",
        &wrong,
    ]);
    assert!(!out.status.success());

    // The SAT attack recovers a working key.
    let out = run(&[
        "attack",
        locked.to_str().unwrap(),
        "--oracle",
        original.to_str().unwrap(),
        "--timeout",
        "30",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("BROKEN"), "{text}");
    assert!(text.contains("verified: true"));
}

#[test]
fn export_formats() {
    let dir = workdir("export");
    let original = dir.join("c17.bench");
    fs::write(&original, C17).unwrap();

    let out = run(&["export", original.to_str().unwrap(), "--format", "verilog"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("module c17"));

    let out = run(&["export", original.to_str().unwrap(), "--format", "dimacs"]);
    assert!(out.status.success());
    assert!(stdout(&out).starts_with("p cnf "));

    let out = run(&["export", original.to_str().unwrap(), "--format", "nonsense"]);
    assert!(!out.status.success());
}

#[test]
fn optimize_shrinks_redundant_logic() {
    let dir = workdir("opt");
    let redundant = dir.join("red.bench");
    // y = NOT(NOT(a)) — optimizes to a plain wire.
    fs::write(&redundant, "INPUT(a)\nOUTPUT(y)\nn = NOT(a)\ny = NOT(n)\n").unwrap();
    let out_path = dir.join("opt.bench");
    let out = run(&[
        "optimize",
        redundant.to_str().unwrap(),
        "-o",
        out_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("2 -> 0 gates"));
}
