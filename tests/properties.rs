//! Cross-crate property-based tests (proptest): invariants that must hold
//! for *any* generated circuit, key, or formula.

use full_lock::locking::{FullLock, FullLockConfig, Key, LockingScheme, PlrSpec, WireSelection};
use full_lock::netlist::random::{generate, RandomCircuitConfig};
use full_lock::netlist::{topo, Simulator};
use full_lock::sat::cdcl::{SolveResult, Solver};
use full_lock::sat::{tseytin, Cnf};
use proptest::prelude::*;

fn circuit_config() -> impl Strategy<Value = RandomCircuitConfig> {
    (4usize..20, 1usize..6, 40usize..150, 2usize..5, any::<u64>()).prop_map(
        |(inputs, outputs, gates, max_fanin, seed)| RandomCircuitConfig {
            inputs,
            outputs: outputs.min(gates),
            gates,
            max_fanin,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The Tseytin CNF of any generated circuit is satisfied exactly by
    /// assignments that agree with simulation.
    #[test]
    fn tseytin_models_match_simulation(config in circuit_config(), pattern_seed in any::<u64>()) {
        let nl = generate(config).expect("strategy yields valid configs");
        let sim = Simulator::new(&nl).expect("generator output is acyclic");
        let enc = tseytin::encode(&nl);

        // Fix every signal variable to its simulated value (auxiliary
        // XOR-chain variables stay free): the CNF must be satisfiable.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(pattern_seed);
        let x: Vec<bool> = (0..nl.inputs().len()).map(|_| rng.gen_bool(0.5)).collect();
        let values = sim.run_all(&x).expect("sized pattern");
        let mut assumptions: Vec<full_lock::sat::Lit> = nl
            .signals()
            .map(|s| {
                full_lock::sat::Lit::with_polarity(enc.signal_vars[s.index()], values[s.index()])
            })
            .collect();
        let mut solver = Solver::from_cnf(&enc.cnf);
        prop_assert_eq!(solver.solve(&assumptions), SolveResult::Sat);

        // Flipping any single gate output must make it unsatisfiable.
        let gate_ids: Vec<_> = nl.gates().collect();
        if let Some(&g) = gate_ids.first() {
            // Inputs come first in the assumption list (signals() order
            // starts at index 0); find the gate's assumption slot.
            let slot = g.index();
            assumptions[slot] = !assumptions[slot];
            prop_assert_eq!(solver.solve(&assumptions), SolveResult::Unsat);
        }
    }

    /// Locking with Full-Lock preserves functionality under the correct
    /// key for arbitrary hosts, PLR sizes, and seeds.
    #[test]
    fn fulllock_correct_key_is_equivalent(
        host_seed in any::<u64>(),
        lock_seed in any::<u64>(),
        size_pow in 2u32..4,
        pattern_seed in any::<u64>(),
    ) {
        let nl = generate(RandomCircuitConfig {
            inputs: 14,
            outputs: 6,
            gates: 150,
            max_fanin: 3,
            seed: host_seed,
        }).expect("valid config");
        let config = FullLockConfig {
            plrs: vec![PlrSpec::new(1 << size_pow)],
            selection: WireSelection::Acyclic,
            twist_probability: 0.5,
            seed: lock_seed,
        };
        let Ok(locked) = FullLock::new(config).lock(&nl) else {
            // Some hosts cannot supply enough independent wires; that is a
            // documented error, not a property violation.
            return Ok(());
        };
        prop_assert!(!topo::is_cyclic(&locked.netlist));
        let sim = Simulator::new(&nl).expect("acyclic host");
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(pattern_seed);
        for _ in 0..8 {
            let x: Vec<bool> = (0..nl.inputs().len()).map(|_| rng.gen_bool(0.5)).collect();
            prop_assert_eq!(
                locked.eval(&x, &locked.correct_key).expect("interface sizes"),
                sim.run(&x).expect("sized pattern")
            );
        }
    }

    /// A solver model of a locked circuit's CNF with the correct key fixed
    /// agrees with direct evaluation on the outputs.
    #[test]
    fn solver_models_agree_with_eval(host_seed in any::<u64>(), x_bits in any::<u16>()) {
        let nl = generate(RandomCircuitConfig {
            inputs: 10,
            outputs: 4,
            gates: 80,
            max_fanin: 3,
            seed: host_seed,
        }).expect("valid config");
        let locked = full_lock::locking::Rll::new(6, host_seed)
            .lock(&nl)
            .expect("RLL always fits");
        let mut cnf = Cnf::new();
        let data: Vec<_> = locked.data_inputs.iter().map(|_| cnf.new_var()).collect();
        let keys: Vec<_> = locked.key_inputs.iter().map(|_| cnf.new_var()).collect();
        let enc = full_lock::attacks::encode_locked(&locked, &mut cnf, &data, &keys);
        let mut solver = Solver::from_cnf(&cnf);
        let x: Vec<bool> = (0..10).map(|i| x_bits >> i & 1 == 1).collect();
        let mut assumptions = Vec::new();
        for (i, &v) in data.iter().enumerate() {
            assumptions.push(full_lock::sat::Lit::with_polarity(v, x[i]));
        }
        for (i, &v) in keys.iter().enumerate() {
            assumptions.push(full_lock::sat::Lit::with_polarity(v, locked.correct_key.bits()[i]));
        }
        prop_assert_eq!(solver.solve(&assumptions), SolveResult::Sat);
        let want = locked.eval(&x, &locked.correct_key).expect("interface sizes");
        for (o, &v) in enc.output_vars.iter().enumerate() {
            prop_assert_eq!(solver.model_value(v), Some(want[o]));
        }
    }

    /// Keys round-trip through flips, and Hamming distance is a metric.
    #[test]
    fn key_flip_involution(bits in proptest::collection::vec(any::<bool>(), 1..64), idx in any::<usize>()) {
        let key = Key::from_bits(bits.clone());
        let i = idx % key.len();
        let mut flipped = key.clone();
        flipped.flip(i);
        prop_assert_eq!(key.hamming_distance(&flipped), 1);
        flipped.flip(i);
        prop_assert_eq!(&flipped, &key);
        prop_assert_eq!(key.hamming_distance(&key), 0);
    }
}
