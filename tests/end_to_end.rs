//! End-to-end integration tests across all workspace crates: load/generate
//! → lock → serialize → attack → verify.

use std::time::Duration;

use full_lock::attacks::{Attack, AttackOutcome, SatAttackConfig, SimOracle};
use full_lock::locking::{
    FullLock, FullLockConfig, Key, LockingScheme, PlrSpec, Rll, WireSelection,
};
use full_lock::netlist::{bench_io, benchmarks, topo, Simulator};
use full_lock::tech::Technology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn lock_attack_verify_pipeline_on_c432() {
    let original = benchmarks::load("c432").expect("suite benchmark");
    let locked = Rll::new(16, 1).lock(&original).expect("lockable");
    let oracle = SimOracle::new(&original).expect("acyclic");
    let report = SatAttackConfig::default()
        .run(&locked, &oracle)
        .expect("interfaces");
    let AttackOutcome::KeyRecovered { key, verified } = report.outcome else {
        panic!("RLL must fall to the SAT attack");
    };
    assert!(verified);
    // Functional check, independently of the attack's own verification.
    let sim = Simulator::new(&original).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..32 {
        let x: Vec<bool> = (0..original.inputs().len())
            .map(|_| rng.gen_bool(0.5))
            .collect();
        assert_eq!(locked.eval(&x, &key).unwrap(), sim.run(&x).unwrap());
    }
}

#[test]
fn locked_netlist_survives_bench_round_trip() {
    let original = benchmarks::load("c499").expect("suite benchmark");
    let locked = FullLock::new(FullLockConfig::single_plr(8))
        .lock(&original)
        .expect("lockable");
    let text = bench_io::write(&locked.netlist);
    let parsed = bench_io::parse(&text, "roundtrip").expect("own output parses");
    assert_eq!(parsed.stats(), locked.netlist.stats());
    // Rebuild the key-input mapping by name and check functionality.
    let key_inputs: Vec<_> = locked
        .key_inputs
        .iter()
        .map(|&k| {
            parsed
                .find_by_name(&locked.netlist.signal_name(k))
                .expect("key input name preserved")
        })
        .collect();
    let data_inputs: Vec<_> = locked
        .data_inputs
        .iter()
        .map(|&d| {
            parsed
                .find_by_name(&locked.netlist.signal_name(d))
                .expect("data input name preserved")
        })
        .collect();
    let relocked = full_lock::locking::LockedCircuit {
        netlist: parsed,
        data_inputs,
        key_inputs,
        correct_key: locked.correct_key.clone(),
    };
    let sim = Simulator::new(&original).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..16 {
        let x: Vec<bool> = (0..original.inputs().len())
            .map(|_| rng.gen_bool(0.5))
            .collect();
        assert_eq!(
            relocked.eval(&x, &relocked.correct_key).unwrap(),
            sim.run(&x).unwrap()
        );
    }
}

#[test]
fn cyclic_lock_cycsat_pipeline() {
    let original = benchmarks::load("c880").expect("suite benchmark");
    let config = FullLockConfig {
        plrs: vec![PlrSpec::new(4)],
        selection: WireSelection::Cyclic,
        twist_probability: 0.5,
        seed: 5,
    };
    let locked = FullLock::new(config).lock(&original).expect("lockable");
    let oracle = SimOracle::new(&original).expect("acyclic");
    // A 4×4 PLR falls quickly even with CycSAT preprocessing.
    let report = SatAttackConfig {
        timeout: Some(Duration::from_secs(60)),
        ..Default::default()
    }
    .run(&locked, &oracle)
    .expect("interfaces");
    let AttackOutcome::KeyRecovered { key, verified } = report.outcome else {
        panic!("4x4 cyclic PLR should fall within a minute, got {report:?}");
    };
    assert!(verified, "CycSAT key must be functionally correct");
    // Whether or not the host ended up cyclic, the key must evaluate
    // correctly under ternary semantics.
    let sim = Simulator::new(&original).unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..16 {
        let x: Vec<bool> = (0..original.inputs().len())
            .map(|_| rng.gen_bool(0.5))
            .collect();
        let eval = locked.eval_cyclic(&x, &key).unwrap();
        assert!(eval.all_outputs_known());
        let got: Vec<bool> = eval.outputs.iter().map(|t| t.to_bool().unwrap()).collect();
        assert_eq!(got, sim.run(&x).unwrap());
    }
    let _ = topo::is_cyclic(&locked.netlist);
}

#[test]
fn ppa_overhead_of_locking_is_positive_and_modest() {
    let tech = Technology::generic_32nm();
    let original = benchmarks::load("c1908").expect("suite benchmark");
    let locked = FullLock::new(FullLockConfig::single_plr(16))
        .lock(&original)
        .expect("lockable");
    let before = tech.netlist_ppa(&original).expect("acyclic");
    let after = tech.netlist_ppa(&locked.netlist).expect("acyclic");
    assert!(after.area_um2 > before.area_um2);
    assert!(after.power_nw > before.power_nw);
    // One 16×16 PLR on a ~900-gate circuit: overhead well under 4x.
    assert!(
        after.area_um2 < 4.0 * before.area_um2,
        "area exploded: {} -> {}",
        before.area_um2,
        after.area_um2
    );
}

#[test]
fn umbrella_reexports_are_usable() {
    // The umbrella crate must expose every layer.
    let nl = full_lock::netlist::benchmarks::load("c17").unwrap();
    let mut cnf = full_lock::sat::Cnf::new();
    let vars: Vec<_> = nl.inputs().iter().map(|_| cnf.new_var()).collect();
    let _ = full_lock::sat::tseytin::encode_into(&nl, &mut cnf, &vars);
    assert!(cnf.num_clauses() > 0);
    let key = Key::zeros(4);
    assert_eq!(key.len(), 4);
    let _ = full_lock::tech::Technology::generic_32nm();
}
