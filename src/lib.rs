//! Umbrella crate for the Full-Lock reproduction.
//!
//! Re-exports the workspace crates under one roof so examples and downstream
//! users can depend on a single package:
//!
//! * [`netlist`] — gate-level circuits, `.bench` I/O, simulation, benchmarks;
//! * [`sat`] — CNF, Tseytin transformation, DPLL, and a CDCL solver;
//! * [`locking`] — Full-Lock (CLNs + key-programmable LUTs) and baseline
//!   locking schemes;
//! * [`attacks`] — SAT / CycSAT / AppSAT / removal / SPS attacks;
//! * [`tech`] — power/performance/area estimation;
//! * [`mod@bench`] — experiment-harness helpers (scaling, tables, testbeds).
//!
//! A command-line front end ships as the `fulllock` binary
//! (`cargo run --release --bin fulllock -- --help`).
//!
//! See the repository `README.md` for a quickstart and `EXPERIMENTS.md` for
//! the paper-reproduction harness.

#![forbid(unsafe_code)]

pub mod atlas;

pub use fulllock_attacks as attacks;
pub use fulllock_bench as bench;
pub use fulllock_harness as harness;
pub use fulllock_locking as locking;
pub use fulllock_netlist as netlist;
pub use fulllock_sat as sat;
pub use fulllock_tech as tech;
