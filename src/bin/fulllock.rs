//! `fulllock` — command-line front end for locking, attacking, and
//! inspecting gate-level netlists.
//!
//! ```text
//! fulllock stats  <circuit.bench>
//! fulllock lock   <circuit.bench> -o locked.bench [--scheme S] [--plr 16,8]
//!                 [--cyclic] [--twist P] [--seed N] [--key-out key.txt]
//! fulllock verify <locked.bench> --oracle <circuit.bench> --key 0110…
//! fulllock attack <locked.bench> --oracle <circuit.bench> [--timeout SECS]
//!                 [--threads N] [--certify off|model|proof]
//!                 [--checkpoint FILE [--resume]]
//! fulllock export <circuit.bench> --format verilog|bench|dimacs [-o FILE]
//! fulllock campaign --plan <file|builtin:paper> [--resume] [--jobs N]
//!                   [--timeout-secs S] [--out-dir DIR]
//! fulllock serve --listen <unix:PATH|tcp:ADDR> [--state-dir DIR]
//!                [--workers N] [--quota TENANT=JOBS,CONFLICTS,SECS]
//! ```
//!
//! Locked `.bench` files follow the literature's convention: key inputs
//! are the primary inputs whose names start with `keyinput`.

use std::error::Error;
use std::fs;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use full_lock::atlas::AtlasUnitExecutor;
use full_lock::attacks::{
    Attack, AttackDetails, AttackOutcome, OracleResilience, SatAttackConfig, SimOracle,
};
use full_lock::harness::plan::CampaignPlan;
use full_lock::harness::service::{serve, Endpoint, ServiceConfig};
use full_lock::harness::supervisor::{run_campaign, SupervisorConfig};
use full_lock::harness::sweep::worker::{run_worker, SatUnitExecutor, UnitExecutor, WorkerArgs};
use full_lock::harness::sweep::{run_sweep, SweepConfig, SweepGrid, SweepPlan};
use full_lock::harness::{CampaignManifest, JobStatus, RetryPolicy};
use full_lock::locking::{
    AntiSat, CrossLock, FullLock, FullLockConfig, Key, LockedCircuit, LockingScheme, LutLock,
    PlrSpec, Rll, SarLock, WireSelection,
};
use full_lock::netlist::{bench_io, topo, verilog, Netlist};
use full_lock::sat::tseytin;
use full_lock::sat::{AmbientConfig, QuotaSpec};
use full_lock::sat::{BackendSpec, CertifyLevel};
use full_lock::tech::Technology;

type CliResult = Result<(), Box<dyn Error>>;

const USAGE: &str = "\
fulllock — logic locking & SAT-attack toolbox (Full-Lock reproduction)

USAGE:
  fulllock stats  <circuit.bench>
  fulllock lock   <circuit.bench> -o <locked.bench> [options]
  fulllock verify <locked.bench> --oracle <circuit.bench> --key <bits>
  fulllock attack <locked.bench> --oracle <circuit.bench> [--timeout SECS] [--threads N]
                  [--certify <off|model|proof>] [--checkpoint <file> [--resume]]
                  [--oracle-votes N] [--oracle-retries N] [--oracle-qps Q]
  fulllock export <circuit.bench> --format <verilog|bench|dimacs> [-o FILE]
  fulllock optimize <circuit.bench> -o <optimized.bench>
  fulllock campaign --plan <file|builtin:paper> [--resume] [--jobs N]
                    [--timeout-secs S] [--grace-secs S] [--max-attempts N]
                    [--out-dir DIR] [--strict] [--print-plan]
  fulllock sweep --grid \"axis=v1,v2;axis2=v3\" [--name NAME] [--executor sat|atlas]
                 [--out-dir DIR] [--workers N] [--resume] [--seed N]
                 [--unit-timeout-secs S] [--lease-ttl-millis M]
                 [--max-respawns N] [--max-wall-secs S] [--print-plan]
  fulllock serve --listen <unix:PATH|tcp:HOST:PORT> [--state-dir DIR]
                 [--workers N] [--shards N] [--timeout-secs S] [--grace-secs S]
                 [--max-attempts N] [--quota TENANT=JOBS,CONFLICTS,SECS]
                 [--default-quota JOBS,CONFLICTS,SECS]
                 [--max-connections N] [--max-pending N] [--io-timeout-secs S]
                 [--max-request-line BYTES] [--watchdog-secs S]

ATTACK OPTIONS:
  --checkpoint <file>  write a crash-safe snapshot after every DIP iteration
  --resume             restore the checkpoint file first (fresh start if absent)
  --certify <level>    check the solver's answers: off (trust it), model
                       (re-check every SAT model), proof (also DRAT-check
                       UNSAT answers); defaults to $FULLLOCK_CERTIFY or off
  --json <file|->      also write the report as versioned JSON (the serve
                       wire schema); - for stdout
  --oracle-votes <n>   repeat every oracle query n times (odd) and take the
                       per-bit majority — tolerates transiently flipped
                       responses                                 (default 1)
  --oracle-retries <n> retry budget per query for transient oracle
                       failures (dropped responses, timeouts)    (default 3)
  --oracle-qps <q>     token-bucket rate limit on oracle queries, in
                       queries per second             (default: unlimited)
  Defaults for --threads/--timeout/--certify come from the FULLLOCK_*
  environment (FULLLOCK_THREADS, FULLLOCK_TIMEOUT_SECS, FULLLOCK_CERTIFY);
  the oracle knobs honor FULLLOCK_ORACLE_VOTES / _RETRIES / _QPS.

SERVE OPTIONS:
  --listen <ep>       unix:PATH, tcp:HOST:PORT, or a bare socket path
                      (default unix:fulllock.sock)
  --state-dir <dir>   queue shards + per-job scratch dirs  (default serve-state)
  --workers <n>       concurrent job slots                 (default 2)
  --shards <n>        queue shard files                    (default 4)
  --quota TENANT=JOBS,CONFLICTS,SECS
                      per-tenant caps: concurrent jobs, cumulative solver
                      conflicts, cumulative wall seconds; - = unlimited,
                      repeatable. --default-quota covers everyone else.
  --max-connections <n>   concurrent client connections; excess get a
                          typed `overloaded` refusal        (default 128)
  --max-pending <n>       pending-queue depth before submissions are
                          shed with `overloaded`            (default 4096)
  --io-timeout-secs <s>   per-request-line socket deadline; slow-loris
                          clients are disconnected          (default 30)
  --max-request-line <b>  request-line byte cap, refused with
                          `request_too_large`               (default 262144)
  --watchdog-secs <s>     worker heartbeat timeout before the watchdog
                          recycles a stuck worker slot      (default 60)
  The `health` verb reports queue depth, worker liveness, persistence
  status, and per-tenant quota pressure.
  SIGTERM drains gracefully: in-flight attacks checkpoint and re-queue.

CAMPAIGN OPTIONS:
  --plan <file|builtin:paper>  job set: a JSON plan file, or the built-in
                               paper sweep (one job per experiment binary)
  --resume            skip jobs already succeeded in <out-dir>/campaign.json
  --jobs <n>          run up to n jobs concurrently           (default 1)
  --timeout-secs <s>  per-job wall-clock budget               (default 3600)
  --grace-secs <s>    SIGTERM -> SIGKILL escalation grace     (default 2)
  --max-attempts <n>  attempt budget per job                  (default 2)
  --out-dir <dir>     manifest + captured logs                (default campaign)
  --strict            exit non-zero if any job failed or timed out
  --print-plan        print the job ids and exit without running anything

SWEEP OPTIONS:
  --grid <spec>       parameter grid: semicolon-separated axes, each
                      axis=comma,separated,values — e.g.
                      \"cln=4,8,16;seed=0,1,2\" (the hardness atlas) or
                      \"vars=50,100;ratio=4.0,4.3;seed=0,1\" (random SAT)
  --executor <e>      what one grid point runs: sat (random 3-SAT
                      hardness probe) or atlas (lock a host circuit
                      with a CLN and SAT-attack it)     (default sat)
  --workers <n>       isolated worker processes          (default 4)
  --out-dir <dir>     sweep state: plan, leases, result segments,
                      atlas.json + columns.json          (default sweep)
  --resume            continue an interrupted sweep: leases are
                      reconciled, settled units are skipped, and the
                      plan + FULLLOCK_* environment must not have
                      drifted since the sweep started
  --unit-timeout-secs <s>  per-unit attack/solve budget  (default 60)
  --lease-ttl-millis <m>   work-unit lease TTL; a worker that misses
                           renewal (crashed, partitioned) has its units
                           stolen by live workers        (default 2000)
  --max-respawns <n>  dead-worker respawn budget         (default 16)
  --max-wall-secs <s> overall wall budget; 0 = unbounded (default 1800)
  --print-plan        print the expanded unit list and exit
  Workers stream results into append-only checksummed segments; the
  coordinator folds them first-wins into exactly one sample per unit,
  with p50/p90/p99 aggregates in <out-dir>/atlas.json.

LOCK OPTIONS:
  --scheme <fulllock|rll|sarlock|antisat|lutlock|crosslock>   (default fulllock)
  --plr <sizes>     comma-separated CLN sizes, e.g. 16 or 16,8 (fulllock)
  --bits <n>        key bits / LUT count / crossbar size (other schemes)
  --cyclic          allow cycle-creating insertion (fulllock)
  --twist <p>       leading-gate negation probability (default 0.5)
  --seed <n>        RNG seed (default 0)
  --key-out <file>  write the correct key (binary string) to a file
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("stats") => cmd_stats(&args[1..]),
        Some("lock") => cmd_lock(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("attack") => cmd_attack(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        Some("optimize") => cmd_optimize(&args[1..]),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("sweep-worker") => cmd_sweep_worker(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n\n{USAGE}").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Minimal flag parser: positionals + `--flag value` + boolean `--flag`.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String], booleans: &[&str]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let token = &raw[i];
            if let Some(name) = token.strip_prefix("--") {
                if booleans.contains(&name) {
                    flags.push((name.to_string(), None));
                } else {
                    let value = raw.get(i + 1).cloned();
                    if value.is_some() {
                        i += 1;
                    }
                    flags.push((name.to_string(), value));
                }
            } else if token == "-o" {
                let value = raw.get(i + 1).cloned();
                if value.is_some() {
                    i += 1;
                }
                flags.push(("out".to_string(), value));
            } else {
                positional.push(token.clone());
            }
            i += 1;
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    /// Every value of a repeatable flag, in order.
    fn flag_all(&self, name: &str) -> Vec<&str> {
        self.flags
            .iter()
            .filter(|(n, _)| n == name)
            .filter_map(|(_, v)| v.as_deref())
            .collect()
    }
}

fn load_netlist(path: &str) -> Result<Netlist, Box<dyn Error>> {
    let text = fs::read_to_string(path)?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("circuit");
    Ok(bench_io::parse(&text, name)?)
}

/// Splits a parsed `.bench` into a [`LockedCircuit`] by the `keyinput`
/// naming convention (correct key unknown — zero-filled placeholder).
fn as_locked(netlist: Netlist) -> Result<LockedCircuit, Box<dyn Error>> {
    let key_inputs: Vec<_> = netlist
        .inputs()
        .iter()
        .copied()
        .filter(|&i| netlist.signal_name(i).starts_with("keyinput"))
        .collect();
    if key_inputs.is_empty() {
        return Err("no key inputs found (inputs named keyinput*)".into());
    }
    let data_inputs: Vec<_> = netlist
        .inputs()
        .iter()
        .copied()
        .filter(|i| !key_inputs.contains(i))
        .collect();
    let placeholder = Key::zeros(key_inputs.len());
    Ok(LockedCircuit {
        netlist,
        data_inputs,
        key_inputs,
        correct_key: placeholder,
    })
}

fn cmd_stats(raw: &[String]) -> CliResult {
    let args = Args::parse(raw, &[]);
    let path = args
        .positional
        .first()
        .ok_or("stats: missing <circuit.bench>")?;
    let nl = load_netlist(path)?;
    let stats = nl.stats();
    println!("{nl}");
    println!("  cyclic: {}", topo::is_cyclic(&nl));
    if let Ok(depth) = topo::depth(&nl) {
        println!("  depth: {depth} levels");
    }
    println!("  max fan-in: {}", stats.max_fanin);
    for (kind, count) in nl.gate_histogram() {
        println!("  {:>5}: {count}", kind.name());
    }
    let keyish = nl
        .inputs()
        .iter()
        .filter(|&&i| nl.signal_name(i).starts_with("keyinput"))
        .count();
    if keyish > 0 {
        println!("  key inputs (keyinput*): {keyish}");
    }
    if let Ok(ppa) = Technology::generic_32nm().netlist_ppa(&nl) {
        println!(
            "  PPA (generic 32nm model): {:.1} um^2, {:.0} nW, {:.2} ns",
            ppa.area_um2, ppa.power_nw, ppa.delay_ns
        );
    }
    Ok(())
}

fn cmd_lock(raw: &[String]) -> CliResult {
    let args = Args::parse(raw, &["cyclic"]);
    let path = args
        .positional
        .first()
        .ok_or("lock: missing <circuit.bench>")?;
    let out = args.flag("out").ok_or("lock: missing -o <locked.bench>")?;
    let seed: u64 = args.flag("seed").unwrap_or("0").parse()?;
    let original = load_netlist(path)?;

    let scheme_name = args.flag("scheme").unwrap_or("fulllock");
    let bits: usize = args.flag("bits").unwrap_or("16").parse()?;
    let scheme: Box<dyn LockingScheme> = match scheme_name {
        "fulllock" => {
            let sizes: Vec<usize> = args
                .flag("plr")
                .unwrap_or("16")
                .split(',')
                .map(str::parse)
                .collect::<Result<_, _>>()?;
            let config = FullLockConfig {
                plrs: sizes.into_iter().map(PlrSpec::new).collect(),
                selection: if args.has("cyclic") {
                    WireSelection::Cyclic
                } else {
                    WireSelection::Acyclic
                },
                twist_probability: args.flag("twist").unwrap_or("0.5").parse()?,
                seed,
            };
            Box::new(FullLock::new(config))
        }
        "rll" => Box::new(Rll::new(bits, seed)),
        "sarlock" => Box::new(SarLock::new(bits, seed)),
        "antisat" => Box::new(AntiSat::new(bits, seed)),
        "lutlock" => Box::new(LutLock::new(bits, seed)),
        "crosslock" => Box::new(CrossLock::new(bits, seed)),
        other => return Err(format!("unknown scheme {other:?}").into()),
    };

    let locked = scheme.lock(&original)?;
    fs::write(out, bench_io::write(&locked.netlist))?;
    println!(
        "locked {} with {}: {} gates (was {}), {} key bits -> {out}",
        original.name(),
        scheme.name(),
        locked.netlist.stats().gates,
        original.stats().gates,
        locked.key_len(),
    );
    if let Some(key_path) = args.flag("key-out") {
        fs::write(key_path, format!("{}\n", locked.correct_key))?;
        println!("correct key written to {key_path}");
    } else {
        println!("correct key: {}", locked.correct_key);
    }
    Ok(())
}

fn cmd_verify(raw: &[String]) -> CliResult {
    let args = Args::parse(raw, &[]);
    let path = args
        .positional
        .first()
        .ok_or("verify: missing <locked.bench>")?;
    let oracle_path = args.flag("oracle").ok_or("verify: missing --oracle")?;
    let key_text = args.flag("key").ok_or("verify: missing --key <bits>")?;
    let locked = as_locked(load_netlist(path)?)?;
    let original = load_netlist(oracle_path)?;
    let key: Key = key_text.trim().parse()?;
    if key.len() != locked.key_len() {
        return Err(format!(
            "key has {} bits, circuit expects {}",
            key.len(),
            locked.key_len()
        )
        .into());
    }
    match locked.prove_key(&key, &original) {
        Ok(full_lock::sat::equiv::EquivResult::Equivalent) => {
            println!("PROVEN: the key restores the oracle's function exactly");
            Ok(())
        }
        Ok(full_lock::sat::equiv::EquivResult::Counterexample(cex)) => {
            let pattern: String = cex.iter().map(|&b| if b { '1' } else { '0' }).collect();
            Err(format!("key is WRONG: outputs differ on input {pattern}").into())
        }
        Ok(full_lock::sat::equiv::EquivResult::Unknown) => {
            Err("verification inconclusive (resource limit)".into())
        }
        Err(e) => Err(format!("formal check unavailable ({e}); try sampled verification").into()),
    }
}

fn cmd_attack(raw: &[String]) -> CliResult {
    let args = Args::parse(raw, &["resume"]);
    let path = args
        .positional
        .first()
        .ok_or("attack: missing <locked.bench>")?;
    let oracle_path = args.flag("oracle").ok_or("attack: missing --oracle")?;
    // The FULLLOCK_* environment provides the defaults; flags override.
    let (ambient, ambient_warnings) =
        AmbientConfig::from_env().map_err(|e| format!("attack: {e}"))?;
    for w in &ambient_warnings {
        eprintln!("warning: {w}");
    }
    let timeout: f64 = match args.flag("timeout") {
        Some(t) => t.parse()?,
        None => ambient.timeout.map_or(60.0, |d| d.as_secs_f64()),
    };
    let threads: usize = match args.flag("threads") {
        Some(t) => t.parse()?,
        None => ambient.threads,
    };
    let checkpoint = args.flag("checkpoint").map(std::path::PathBuf::from);
    let resume = args.has("resume");
    if resume && checkpoint.is_none() {
        return Err("attack: --resume requires --checkpoint <path>".into());
    }
    let certify = match args.flag("certify") {
        Some(level) => level
            .parse::<CertifyLevel>()
            .map_err(|e| format!("attack: {e}"))?,
        None => ambient.certify,
    };
    let json_out = args.flag("json").map(str::to_string);
    // Oracle-resilience knobs: flag beats FULLLOCK_ORACLE_* beats default.
    let mut resilience = OracleResilience::default();
    if let Some(votes) = ambient.oracle_votes {
        resilience.votes = votes;
    }
    if let Some(retries) = ambient.oracle_retries {
        resilience.retries = retries;
    }
    if let Some(qps) = ambient.oracle_qps {
        resilience.qps = Some(qps);
    }
    if let Some(votes) = args.flag("oracle-votes") {
        resilience.votes = votes.parse()?;
        if resilience.votes == 0 || resilience.votes.is_multiple_of(2) {
            return Err("attack: --oracle-votes must be an odd count ≥ 1".into());
        }
    }
    if let Some(retries) = args.flag("oracle-retries") {
        resilience.retries = retries.parse()?;
    }
    if let Some(qps) = args.flag("oracle-qps") {
        let qps: f64 = qps.parse()?;
        if !qps.is_finite() || qps <= 0.0 {
            return Err("attack: --oracle-qps must be a positive rate".into());
        }
        resilience.qps = Some(qps);
    }
    let backend = if threads > 1 {
        BackendSpec::portfolio(threads)
    } else {
        BackendSpec::Single
    };
    let locked = as_locked(load_netlist(path)?)?;
    let original = load_netlist(oracle_path)?;
    let oracle = SimOracle::new(&original)?;
    // `--json -` keeps stdout machine-readable: progress goes to stderr,
    // the JSON report is the only stdout output.
    let quiet = json_out.as_deref() == Some("-");
    if !quiet {
        println!(
            "attacking {} ({} key bits, cyclic: {}) with a {timeout}s budget on {} thread(s)…",
            locked.netlist.name(),
            locked.key_len(),
            topo::is_cyclic(&locked.netlist),
            threads.max(1),
        );
        if certify != CertifyLevel::Off {
            println!("certifying solver answers at level {certify}");
        }
    }
    let config = SatAttackConfig {
        timeout: Some(Duration::from_secs_f64(timeout)),
        backend,
        certify,
        resilience,
        ..Default::default()
    };
    let report = match &checkpoint {
        Some(ckpt) => config.run_checkpointed(&locked, &oracle, ckpt, resume)?,
        None => config.run(&locked, &oracle)?,
    };
    if let Some(dest) = &json_out {
        let text = report.to_json();
        if dest == "-" {
            println!("{text}");
            return Ok(());
        }
        fs::write(dest, &text)?;
        println!("report JSON -> {dest}");
    }
    if let Some(from) = report.resilience.resumed_from {
        println!("resumed from checkpoint at iteration {from}");
    }
    match report.outcome {
        AttackOutcome::KeyRecovered { key, verified } => {
            println!(
                "BROKEN in {} iterations / {:?} ({} oracle queries, verified: {verified})",
                report.iterations, report.elapsed, report.oracle_queries
            );
            println!("recovered key: {key}");
            if let Some(cert) = &report.key_certificate {
                println!(
                    "key certificate: {}/{} simulation samples agree, formal: {:?}",
                    cert.samples - cert.mismatches,
                    cert.samples,
                    cert.formal
                );
            }
        }
        AttackOutcome::Timeout => println!(
            "TIMEOUT after {} iterations / {:?} — the lock held",
            report.iterations, report.elapsed
        ),
        other => println!(
            "attack ended: {other:?} after {} iterations",
            report.iterations
        ),
    }
    if let AttackDetails::Sat(details) = &report.details {
        println!(
            "formula: {} vars, {} clauses (mean clause/var ratio {:.2})",
            details.formula.0, details.formula.1, details.mean_clause_var_ratio
        );
    }
    let solver = &report.solver;
    println!(
        "solver reuse: {} incremental solve(s), {} learnt clause(s) carried across solves",
        solver.solves, solver.learnts_carried
    );
    if solver.inprocessings > 0 {
        println!(
            "inprocessing: {} round(s) — {} var(s) eliminated, {} clause(s) subsumed, \
             {} strengthened, {} vivified",
            solver.inprocessings,
            solver.vars_eliminated,
            solver.clauses_subsumed,
            solver.clauses_strengthened,
            solver.vivification_shrinks
        );
    }
    let res = &report.resilience;
    if checkpoint.is_some() {
        println!(
            "checkpointing: {} snapshot(s) written, {} failed",
            res.checkpoints_written, res.checkpoint_failures
        );
    }
    if res.worker_panics > 0 || !res.worker_failures.is_empty() {
        println!(
            "solver faults absorbed: {} worker panic(s) [{}]",
            res.worker_panics,
            res.worker_failures.join("; ")
        );
    }
    if res.oracle_retries > 0 || res.oracle_requeries > 0 || res.quarantined_pairs > 0 {
        println!(
            "oracle faults absorbed: {} retry(s), {} suspect re-query(s), \
             {} pair(s) quarantined",
            res.oracle_retries, res.oracle_requeries, res.quarantined_pairs
        );
    }
    Ok(())
}

fn cmd_optimize(raw: &[String]) -> CliResult {
    let args = Args::parse(raw, &[]);
    let path = args
        .positional
        .first()
        .ok_or("optimize: missing <circuit.bench>")?;
    let out = args.flag("out").ok_or("optimize: missing -o <file>")?;
    let nl = load_netlist(path)?;
    let optimized = full_lock::netlist::opt::optimize(&nl)?;
    fs::write(out, bench_io::write(&optimized.netlist))?;
    println!(
        "{}: {} -> {} gates ({} shared subexpressions) -> {out}",
        nl.name(),
        optimized.stats.gates_before,
        optimized.stats.gates_after,
        optimized.stats.deduplicated,
    );
    Ok(())
}

fn cmd_campaign(raw: &[String]) -> CliResult {
    let args = Args::parse(raw, &["resume", "strict", "print-plan"]);
    let plan_ref = args.flag("plan").ok_or("campaign: missing --plan")?;
    let plan = if plan_ref == "builtin:paper" {
        // The experiment binaries live next to this executable
        // (target/<profile>/); `cargo build --release` puts them there.
        let exe = std::env::current_exe()?;
        let bin_dir = exe
            .parent()
            .ok_or("campaign: cannot locate the directory of this executable")?;
        CampaignPlan::builtin_paper(bin_dir)
    } else {
        CampaignPlan::load(std::path::Path::new(plan_ref))?
    };
    if args.has("print-plan") {
        for job in &plan.jobs {
            println!("{}", job.id);
        }
        return Ok(());
    }

    let mut config = SupervisorConfig {
        resume: args.has("resume"),
        out_dir: args.flag("out-dir").unwrap_or("campaign").into(),
        parallelism: args.flag("jobs").unwrap_or("1").parse()?,
        default_timeout: Duration::from_secs_f64(
            args.flag("timeout-secs").unwrap_or("3600").parse()?,
        ),
        grace: Duration::from_secs_f64(args.flag("grace-secs").unwrap_or("2").parse()?),
        ..Default::default()
    };
    config.retry = RetryPolicy {
        max_attempts: args.flag("max-attempts").unwrap_or("2").parse()?,
        ..RetryPolicy::default()
    };

    println!(
        "campaign {:?}: {} job(s), {} slot(s), {:.0}s budget each -> {}",
        plan.name,
        plan.jobs.len(),
        config.parallelism.max(1),
        config.default_timeout.as_secs_f64(),
        config.out_dir.display(),
    );
    let outcome = run_campaign(&plan, &config)?;

    let manifest = CampaignManifest::load(&outcome.manifest_path)?;
    for job in &plan.jobs {
        let Some(rec) = manifest.job(&job.id) else {
            continue;
        };
        let mut line = format!(
            "  {:<24} {:<9} {} attempt(s), {:.2}s",
            rec.id,
            rec.status.as_str(),
            rec.attempts,
            rec.duration_secs
        );
        if let Some(rss) = rec.peak_rss_kb {
            line.push_str(&format!(", peak {rss} kB"));
        }
        if rec.status != JobStatus::Succeeded && rec.status != JobStatus::Skipped {
            if let Some(err) = &rec.last_error {
                line.push_str(&format!(" — {err}"));
            }
        }
        println!("{line}");
    }
    println!(
        "campaign {}: {} succeeded, {} skipped (resume), {} failed, {} timed out of {} \
         (manifest: {})",
        outcome.status_word(),
        outcome.succeeded,
        outcome.skipped,
        outcome.failed,
        outcome.timed_out,
        outcome.total,
        outcome.manifest_path.display(),
    );
    if args.has("strict") && !outcome.all_succeeded() {
        return Err(format!(
            "campaign ended {}: {} job(s) failed, {} timed out (--strict)",
            outcome.status_word(),
            outcome.failed,
            outcome.timed_out
        )
        .into());
    }
    Ok(())
}

fn cmd_sweep(raw: &[String]) -> CliResult {
    let args = Args::parse(raw, &["resume", "print-plan"]);
    let grid_spec = args.flag("grid").ok_or("sweep: missing --grid")?;
    let name = args.flag("name").unwrap_or("sweep");
    let grid = SweepGrid::parse_spec(name, grid_spec).map_err(|e| format!("sweep: {e}"))?;
    let mut plan = SweepPlan::new(grid);
    plan.executor = args.flag("executor").unwrap_or("sat").to_string();
    if !matches!(plan.executor.as_str(), "sat" | "atlas") {
        return Err(format!(
            "sweep: unknown executor {:?} (expected sat or atlas)",
            plan.executor
        )
        .into());
    }
    plan.unit_timeout_secs = args.flag("unit-timeout-secs").unwrap_or("60").parse()?;
    plan.seed = args.flag("seed").unwrap_or("0").parse()?;
    if args.has("print-plan") {
        for unit in plan.grid.units() {
            let params: Vec<String> = unit
                .params
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            println!("{}  {}", unit.id, params.join(" "));
        }
        return Ok(());
    }

    // Workers are re-invocations of this very binary with the
    // `sweep-worker` subcommand; they coordinate purely through files
    // in the sweep directory.
    let exe = std::env::current_exe()?;
    let mut config = SweepConfig::new(
        args.flag("out-dir").unwrap_or("sweep"),
        exe,
        vec!["sweep-worker".to_string()],
    );
    config.workers = args.flag("workers").unwrap_or("4").parse()?;
    config.resume = args.has("resume");
    config.lease_ttl =
        Duration::from_millis(args.flag("lease-ttl-millis").unwrap_or("2000").parse()?);
    config.max_respawns = args.flag("max-respawns").unwrap_or("16").parse()?;
    let max_wall: f64 = args.flag("max-wall-secs").unwrap_or("1800").parse()?;
    config.max_wall = (max_wall > 0.0).then(|| Duration::from_secs_f64(max_wall));

    println!(
        "sweep {:?}: {} unit(s) on {} worker(s), executor {}, {}s/unit -> {}",
        plan.grid.name,
        plan.grid.unit_count(),
        config.workers,
        plan.executor,
        plan.unit_timeout_secs,
        config.out_dir.display(),
    );
    let outcome = run_sweep(&plan, &config)?;
    if outcome.resume != Default::default() {
        println!(
            "resume: {} settled unit(s) kept ({} recovered records), {} orphan marker(s) \
             cleared, {} stale lease(s) dropped",
            outcome.resume.settled,
            outcome.resume.records_settled,
            outcome.resume.orphans_cleared,
            outcome.resume.leases_cleared,
        );
    }
    let agg = &outcome.aggregates;
    println!(
        "sweep done: {}/{} unit(s) in {:.2}s ({} respawn(s), {} re-run round(s), \
         {} stolen, {} speculative, {} duplicate record(s) suppressed)",
        agg.samples,
        agg.units,
        outcome.elapsed.as_secs_f64(),
        outcome.respawns,
        outcome.rerun_rounds,
        agg.stolen,
        agg.speculative,
        agg.duplicates,
    );
    if agg.torn_tails > 0 || agg.invalid_lines > 0 {
        println!(
            "segment repair: {} torn tail(s) truncated, {} invalid line(s) skipped",
            agg.torn_tails, agg.invalid_lines
        );
    }
    for (verdict, count) in &agg.verdicts {
        println!("  verdict {verdict:<10} {count}");
    }
    println!(
        "  conflicts  p50 {:.0}  p90 {:.0}  p99 {:.0}",
        agg.conflicts.p50, agg.conflicts.p90, agg.conflicts.p99
    );
    println!(
        "  wall secs  p50 {:.3}  p90 {:.3}  p99 {:.3}",
        agg.wall_secs.p50, agg.wall_secs.p90, agg.wall_secs.p99
    );
    println!(
        "atlas -> {} / columns -> {}",
        outcome.atlas_path.display(),
        outcome.columns_path.display()
    );
    Ok(())
}

fn cmd_sweep_worker(raw: &[String]) -> CliResult {
    let parsed = WorkerArgs::parse(raw).map_err(|e| format!("sweep-worker: {e}"))?;
    let (plan, _hash) = SweepPlan::load(&parsed.dir)?;
    let config = parsed.to_config();
    let executor: Box<dyn UnitExecutor> = match plan.executor.as_str() {
        "sat" => Box::new(SatUnitExecutor::from_plan(&plan)),
        "atlas" => Box::new(AtlasUnitExecutor::from_plan(&plan)),
        other => return Err(format!("sweep-worker: unknown executor {other:?}").into()),
    };
    let summary = run_worker(&plan, &config, executor.as_ref())?;
    println!(
        "sweep worker {}: executed={} stolen={} speculative={} wins={} losses={}",
        config.worker,
        summary.executed,
        summary.stolen,
        summary.speculative,
        summary.settle_wins,
        summary.settle_losses
    );
    Ok(())
}

/// Set by the SIGTERM/SIGINT handler; polled by the serve bridge thread.
static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_shutdown_signal(_signum: i32) {
    // Only async-signal-safe work here: a relaxed atomic store.
    SHUTDOWN_REQUESTED.store(true, Ordering::Relaxed);
}

/// Installs SIGTERM/SIGINT handlers through the C runtime's `signal`
/// (std exposes no signal API and the workspace vendors no libc crate;
/// std itself links the C runtime, so the symbol is always present).
#[cfg(unix)]
fn install_shutdown_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_shutdown_signal as *const () as usize);
        signal(SIGINT, on_shutdown_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_shutdown_handler() {}

/// Parses `JOBS,CONFLICTS,SECS` (each a number or `-` for unlimited).
fn parse_quota_spec(text: &str) -> Result<QuotaSpec, Box<dyn Error>> {
    let parts: Vec<&str> = text.split(',').collect();
    if parts.len() != 3 {
        return Err(
            format!("quota {text:?}: expected JOBS,CONFLICTS,SECS (use - for unlimited)").into(),
        );
    }
    let num = |s: &str| -> Result<Option<u64>, Box<dyn Error>> {
        if s == "-" {
            Ok(None)
        } else {
            Ok(Some(s.parse()?))
        }
    };
    Ok(QuotaSpec {
        max_in_flight: num(parts[0])?,
        max_conflicts: num(parts[1])?,
        max_wall: num(parts[2])?.map(Duration::from_secs),
    })
}

fn cmd_serve(raw: &[String]) -> CliResult {
    let args = Args::parse(raw, &[]);
    let endpoint = Endpoint::parse(args.flag("listen").unwrap_or("unix:fulllock.sock"))
        .map_err(|e| format!("serve: bad --listen: {e}"))?;
    let mut config = ServiceConfig::new(endpoint, args.flag("state-dir").unwrap_or("serve-state"));
    config.workers = args.flag("workers").unwrap_or("2").parse()?;
    config.shards = args.flag("shards").unwrap_or("4").parse()?;
    config.default_timeout =
        Duration::from_secs_f64(args.flag("timeout-secs").unwrap_or("3600").parse()?);
    config.grace = Duration::from_secs_f64(args.flag("grace-secs").unwrap_or("2").parse()?);
    config.retry.max_attempts = args.flag("max-attempts").unwrap_or("2").parse()?;
    if let Some(n) = args.flag("max-connections") {
        config.max_connections = n.parse()?;
    }
    if let Some(n) = args.flag("max-pending") {
        config.max_pending = n.parse()?;
    }
    if let Some(s) = args.flag("io-timeout-secs") {
        config.io_timeout = Duration::from_secs_f64(s.parse()?);
    }
    if let Some(n) = args.flag("max-request-line") {
        config.max_request_line = n.parse()?;
    }
    if let Some(s) = args.flag("watchdog-secs") {
        config.watchdog_timeout = Duration::from_secs_f64(s.parse()?);
    }
    if let Some(spec) = args.flag("default-quota") {
        config.default_quota = parse_quota_spec(spec)?;
    }
    for entry in args.flag_all("quota") {
        let (tenant, spec) = entry.split_once('=').ok_or_else(|| {
            format!("serve: --quota {entry:?}: expected TENANT=JOBS,CONFLICTS,SECS")
        })?;
        if tenant.is_empty() {
            return Err("serve: --quota with empty tenant name".into());
        }
        config
            .quotas
            .push((tenant.to_string(), parse_quota_spec(spec)?));
    }

    install_shutdown_handler();
    let shutdown = Arc::new(AtomicBool::new(false));
    {
        // Bridge the signal-handler static into the flag `serve` polls.
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || loop {
            if SHUTDOWN_REQUESTED.load(Ordering::Relaxed) {
                shutdown.store(true, Ordering::SeqCst);
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        });
    }

    println!(
        "fulllock serve: listening on {} ({} worker(s), {} shard(s), state in {})",
        config.endpoint,
        config.workers,
        config.shards,
        config.state_dir.display(),
    );
    println!("SIGTERM or Ctrl-C drains gracefully (in-flight jobs re-queue).");
    let summary = serve(config, shutdown)?;
    println!(
        "drained: {} submitted, {} completed, {} failed, {} canceled, {} interrupted \
         ({} recovered from a previous run, {} shed, {} worker(s) recycled)",
        summary.submitted,
        summary.completed,
        summary.failed,
        summary.canceled,
        summary.drained,
        summary.recovered,
        summary.shed,
        summary.recycled,
    );
    Ok(())
}

fn cmd_export(raw: &[String]) -> CliResult {
    let args = Args::parse(raw, &[]);
    let path = args
        .positional
        .first()
        .ok_or("export: missing <circuit.bench>")?;
    let format = args.flag("format").ok_or("export: missing --format")?;
    let nl = load_netlist(path)?;
    let text = match format {
        "verilog" => verilog::write(&nl),
        "bench" => bench_io::write(&nl),
        "dimacs" => tseytin::encode(&nl).cnf.to_dimacs(),
        other => return Err(format!("unknown format {other:?}").into()),
    };
    match args.flag("out") {
        Some(out) => {
            fs::write(out, text)?;
            println!("wrote {format} to {out}");
        }
        None => print!("{text}"),
    }
    Ok(())
}
