//! Chaos-soak harness for the **real** `fulllock serve` daemon: spawns
//! the CLI binary as a child process, runs a client swarm against it,
//! and repeatedly kills the daemon (SIGKILL, no warning), corrupts a
//! queue shard while it is down, and arms rotating `FULLLOCK_FAILPOINTS`
//! schedules (worker delays, `persist.write=enospc`, `queue.seal=torn`,
//! `persist.sync=eio`) — then checks the invariants that the service
//! promises to keep under exactly this abuse:
//!
//! - **exactly-once completion**: no job is ever observed with
//!   `completions > 1`, and after a final clean incarnation every
//!   accepted job is `done` with `completions == 1`;
//! - **monotone completions**: a job's completion count never decreases
//!   between snapshots within one daemon incarnation (across a SIGKILL
//!   the queue may rewind to its last sealed generation — the designed
//!   behavior — and the harness re-submits what vanished);
//! - **quota-ledger conservation**: after the drain, the rebuilt ledger
//!   reports zero in-flight slots and cumulative charges that equal the
//!   per-job charges summed from the queue.
//!
//! Two focused phases follow the soak: an **overload** burst against a
//! one-worker, `--max-pending 8` daemon (expecting typed `overloaded`
//! sheds and bounded submit latency for admitted requests), and a
//! **slow-loris** client against a `--io-timeout-secs 1` daemon
//! (expecting a typed disconnect while concurrent clients stay live).
//!
//! Results land in `BENCH_soak.json`; any violated invariant makes the
//! run exit non-zero. Build the daemon with failpoints so the disk-fault
//! schedules actually bite:
//!
//! ```text
//! cargo run --release --features failpoints --bin soak_bench
//! ```
//!
//! Options: `--secs N` (chaos-phase length, default 60), `--seed N`
//! (default 7 — a seed whose schedule includes shard-corruption
//! events), `--out PATH` (default BENCH_soak.json).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use full_lock::harness::json::Json;
use full_lock::harness::plan::JobSpec;
use full_lock::harness::service::{Client, Endpoint, JobState, ShardedQueue};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Failpoint schedules rotated across daemon incarnations. Each row is
/// what `FULLLOCK_FAILPOINTS` is set to for that incarnation (empty =
/// no injected faults, just the kill).
const SCHEDULES: &[&str] = &[
    "",
    "service.worker=delay:150x20",
    "persist.write=enospc@20x3",
    "queue.seal=torn@15x1",
    "persist.sync=eio@10x2",
];

const SIGTERM: i32 = 15;

fn send_signal(pid: u32, sig: i32) {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    unsafe {
        kill(pid as i32, sig);
    }
}

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// The `fulllock` CLI binary, expected next to this benchmark binary
/// (both are targets of the root package, so cargo builds them into the
/// same directory).
fn fulllock_binary() -> PathBuf {
    let me = std::env::current_exe().expect("current exe");
    let bin = me.with_file_name("fulllock");
    assert!(
        bin.exists(),
        "daemon binary not found at {} (build it first: \
         cargo build --release --features failpoints --bin fulllock)",
        bin.display()
    );
    bin
}

/// One daemon incarnation: the spawned child plus what it was armed with.
struct Daemon {
    child: Child,
    schedule: &'static str,
}

fn spawn_daemon(
    bin: &Path,
    sock: &Path,
    state: &Path,
    log: &Path,
    schedule: &'static str,
    extra: &[&str],
) -> Daemon {
    let log_file = std::fs::File::create(log).expect("daemon log file");
    let log_err = log_file.try_clone().expect("clone log handle");
    let mut command = Command::new(bin);
    command
        .arg("serve")
        .arg("--listen")
        .arg(format!("unix:{}", sock.display()))
        .arg("--state-dir")
        .arg(state)
        .args(["--workers", "3", "--shards", "4"])
        .args(["--grace-secs", "1", "--max-attempts", "25"])
        .args(["--timeout-secs", "60"])
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::from(log_file))
        .stderr(Stdio::from(log_err));
    if schedule.is_empty() {
        command.env_remove("FULLLOCK_FAILPOINTS");
    } else {
        command.env("FULLLOCK_FAILPOINTS", schedule);
    }
    let child = command.spawn().expect("spawn fulllock serve");
    Daemon { child, schedule }
}

fn wait_up(client: &Client, mut child: Option<&mut Child>) {
    let deadline = Instant::now() + Duration::from_secs(15);
    while !client.is_up() {
        if let Some(child) = child.as_deref_mut() {
            if let Ok(Some(status)) = child.try_wait() {
                panic!("daemon exited during startup: {status}");
            }
        }
        assert!(Instant::now() < deadline, "daemon never came up");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// SIGTERMs the daemon and waits for the graceful drain to finish.
fn drain_daemon(daemon: &mut Daemon) {
    send_signal(daemon.child.id(), SIGTERM);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match daemon.child.try_wait().expect("wait daemon") {
            Some(status) => {
                assert!(status.success(), "drain exited {status}");
                return;
            }
            None if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(50)),
            None => {
                daemon.child.kill().ok();
                panic!("daemon did not drain within 30s of SIGTERM");
            }
        }
    }
}

/// Everything the swarm and monitor share.
struct Soak {
    endpoint: Endpoint,
    stop: AtomicBool,
    next_id: AtomicUsize,
    /// Job ids the daemon acked (or reported as duplicates — an earlier
    /// ack that this client lost to a kill).
    accepted: Mutex<BTreeSet<String>>,
    /// Typed refusals observed by the swarm, by error code.
    refusals: Mutex<BTreeMap<String, u64>>,
    /// Invariant violations; non-empty fails the run.
    violations: Mutex<Vec<String>>,
    /// Highest completion count seen per job within the current daemon
    /// incarnation (a restart may rewind to the last sealed generation,
    /// so the baseline resets at every kill boundary).
    baseline: Mutex<HashMap<String, u64>>,
}

impl Soak {
    fn violation(&self, what: String) {
        eprintln!("soak: INVARIANT VIOLATION: {what}");
        self.violations.lock().expect("violations lock").push(what);
    }
}

fn job_spec(id: &str) -> JobSpec {
    JobSpec::new(id, "/bin/sh")
        .arg("-c")
        .arg("sleep 0.05")
        .max_attempts(25)
}

/// One closed-loop swarm client: submits new jobs as long as the soak
/// runs, riding through daemon kills and typed refusals by retrying.
fn swarm_client(soak: &Soak, client_index: usize) {
    /// Total-job cap: keeps the final settle phase bounded no matter how
    /// fast the swarm outruns the workers during the chaos window.
    const MAX_JOBS: usize = 400;
    let client = Client::new(soak.endpoint.clone());
    let tenant = format!("tenant-{}", client_index % 3);
    while !soak.stop.load(Ordering::SeqCst) {
        if soak.accepted.lock().expect("accepted lock").len() >= MAX_JOBS {
            std::thread::sleep(Duration::from_millis(100));
            continue;
        }
        let i = soak.next_id.fetch_add(1, Ordering::Relaxed);
        let id = format!("soak-{i:05}");
        // Retry this submission until it is acked or the soak ends; a
        // kill can eat the ack, so `duplicate_job` also counts as acked.
        loop {
            if soak.stop.load(Ordering::SeqCst) {
                return;
            }
            match client.submit(&tenant, job_spec(&id)) {
                Ok(reply) => match reply.error_code() {
                    None | Some("duplicate_job") => {
                        soak.accepted.lock().expect("accepted lock").insert(id);
                        break;
                    }
                    Some(code) => {
                        *soak
                            .refusals
                            .lock()
                            .expect("refusals lock")
                            .entry(code.to_string())
                            .or_insert(0) += 1;
                        std::thread::sleep(Duration::from_millis(50));
                    }
                },
                // Daemon down or mid-kill: wait for the next incarnation.
                Err(_) => std::thread::sleep(Duration::from_millis(100)),
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// One `list` snapshot checked against the exactly-once and monotonicity
/// invariants. Returns the number of accepted jobs currently done.
fn check_snapshot(soak: &Soak, client: &Client) -> Option<usize> {
    let reply = client.list(None).ok()?;
    let full_lock::harness::service::ServiceReply::Ok(json) = reply else {
        return None;
    };
    let jobs = json.get("jobs").and_then(Json::as_array)?;
    let mut done = 0usize;
    let mut baseline = soak.baseline.lock().expect("baseline lock");
    for job in jobs {
        let id = job.get("id").and_then(Json::as_str).unwrap_or("?");
        let completions = job
            .get("completions")
            .and_then(Json::as_u64)
            .unwrap_or_default();
        let state = job.get("state").and_then(Json::as_str).unwrap_or("?");
        if completions > 1 {
            soak.violation(format!(
                "job {id} observed with completions={completions} (exactly-once broken)"
            ));
        }
        if state == "done" {
            if completions != 1 {
                soak.violation(format!(
                    "job {id} is done with completions={completions} (want exactly 1)"
                ));
            }
            done += 1;
        }
        let seen = baseline.entry(id.to_string()).or_insert(0);
        if completions < *seen {
            soak.violation(format!(
                "job {id} completions regressed {seen} -> {completions} \
                 within one incarnation"
            ));
        }
        *seen = (*seen).max(completions);
    }
    Some(done)
}

/// Deliberately corrupts one shard's primary file (garbage mid-file),
/// simulating on-disk damage while the daemon is dead. The next open
/// must fall back to the previous sealed generation.
fn corrupt_random_shard(queue_dir: &Path, rng: &mut SmallRng) -> Option<u32> {
    let shard = rng.gen_range(0u32..4);
    let path = queue_dir.join(format!("shard-{shard:02}.json"));
    let text = std::fs::read_to_string(&path).ok()?;
    if text.len() < 8 {
        return None;
    }
    let mut bytes = text.into_bytes();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x55;
    bytes[mid / 2] ^= 0xAA;
    std::fs::write(&path, bytes).ok()?;
    Some(shard)
}

struct ChaosOutcome {
    incarnations: usize,
    kills: usize,
    corruptions: usize,
    accepted: usize,
    completed: usize,
    tenant_ledger: Vec<(String, u64, u64, f64)>,
}

/// The main soak: kill/corrupt/fault-inject loop, then a clean final
/// incarnation that must finish every accepted job and drain.
#[allow(clippy::too_many_lines)]
fn chaos_phase(
    soak: &Arc<Soak>,
    dir: &Path,
    bin: &Path,
    secs: u64,
    rng: &mut SmallRng,
) -> ChaosOutcome {
    let sock = dir.join("serve.sock");
    let state = dir.join("state");
    let queue_dir = state.join("queue");
    let monitor = Client::new(soak.endpoint.clone());

    let swarm: Vec<_> = (0..4)
        .map(|i| {
            let soak = Arc::clone(soak);
            std::thread::spawn(move || swarm_client(&soak, i))
        })
        .collect();

    let chaos_deadline = Instant::now() + Duration::from_secs(secs);
    let mut incarnations = 0usize;
    let mut kills = 0usize;
    let mut corruptions = 0usize;
    while Instant::now() < chaos_deadline {
        let schedule = SCHEDULES[incarnations % SCHEDULES.len()];
        let log = dir.join(format!("incarnation-{incarnations:03}.log"));
        let mut daemon = spawn_daemon(bin, &sock, &state, &log, schedule, &[]);
        incarnations += 1;
        wait_up(&monitor, Some(&mut daemon.child));
        println!(
            "soak: incarnation {incarnations} up (failpoints: {})",
            if daemon.schedule.is_empty() {
                "none"
            } else {
                daemon.schedule
            }
        );

        // Let the swarm hammer this incarnation, watching invariants,
        // then kill it without warning.
        let lifetime = Duration::from_millis(rng.gen_range(3_000u64..8_000));
        let kill_at = Instant::now() + lifetime;
        while Instant::now() < kill_at && Instant::now() < chaos_deadline {
            check_snapshot(soak, &monitor);
            std::thread::sleep(Duration::from_millis(200));
        }
        daemon.child.kill().expect("SIGKILL daemon");
        daemon.child.wait().expect("reap daemon");
        kills += 1;
        // Completions are strictly monotone *within* an incarnation (the
        // monitor reads live state). Across a SIGKILL the queue rewinds
        // to its last sealed generation, which under injected persist
        // faults legitimately lags memory — reset the baseline at the
        // boundary.
        soak.baseline.lock().expect("baseline lock").clear();

        // Sometimes damage a shard while the daemon is down: the next
        // open must fall back to the previous sealed generation.
        if rng.gen_bool(0.3) {
            if let Some(shard) = corrupt_random_shard(&queue_dir, rng) {
                corruptions += 1;
                println!("soak: corrupted shard {shard:02} while the daemon was down");
            }
        }
    }
    soak.stop.store(true, Ordering::SeqCst);
    for handle in swarm {
        handle.join().expect("swarm thread");
    }

    // Final clean incarnation: no failpoints, re-submit anything a
    // rollback made vanish, and require every accepted job to finish
    // exactly once.
    let log = dir.join("incarnation-final.log");
    let mut daemon = spawn_daemon(bin, &sock, &state, &log, "", &[]);
    wait_up(&monitor, Some(&mut daemon.child));
    let accepted: Vec<String> = soak
        .accepted
        .lock()
        .expect("accepted lock")
        .iter()
        .cloned()
        .collect();
    println!(
        "soak: final incarnation up; settling {} accepted jobs",
        accepted.len()
    );
    let settle_deadline = Instant::now() + Duration::from_secs(180);
    let mut completed = 0usize;
    loop {
        // Re-submit vanished jobs (lost to a corruption rollback).
        let mut missing = 0usize;
        for id in &accepted {
            let Ok(reply) = monitor.status(id) else {
                continue;
            };
            if reply.error_code() == Some("unknown_job") {
                missing += 1;
                let _ = monitor.submit("tenant-resubmit", job_spec(id));
            }
        }
        completed = check_snapshot(soak, &monitor).unwrap_or(completed);
        if completed >= accepted.len() && missing == 0 {
            break;
        }
        assert!(
            Instant::now() < settle_deadline,
            "only {completed}/{} jobs settled before the deadline",
            accepted.len()
        );
        std::thread::sleep(Duration::from_millis(250));
    }

    // Quota-ledger conservation: the rebuilt ledger must agree exactly
    // with the per-job charges in the queue, and hold zero in-flight
    // slots now that everything is done.
    let mut tenant_ledger = Vec::new();
    if let Ok(full_lock::harness::service::ServiceReply::Ok(json)) = monitor.health() {
        let health = json.get("health").expect("health body");
        let healthy = health
            .get("persist")
            .and_then(|p| p.get("healthy"))
            .and_then(Json::as_bool);
        if healthy != Some(true) {
            soak.violation("final health reports persistence unhealthy".to_string());
        }
        let mut by_tenant: HashMap<String, (u64, f64)> = HashMap::new();
        if let Ok(full_lock::harness::service::ServiceReply::Ok(list)) = monitor.list(None) {
            for job in list.get("jobs").and_then(Json::as_array).unwrap_or(&[]) {
                let tenant = job.get("tenant").and_then(Json::as_str).unwrap_or("?");
                let entry = by_tenant.entry(tenant.to_string()).or_insert((0, 0.0));
                entry.0 += job
                    .get("charged_conflicts")
                    .and_then(Json::as_u64)
                    .unwrap_or_default();
                entry.1 += job
                    .get("charged_wall_secs")
                    .and_then(Json::as_f64)
                    .unwrap_or_default();
            }
        }
        for row in health
            .get("tenants")
            .and_then(Json::as_array)
            .unwrap_or(&[])
        {
            let tenant = row.get("tenant").and_then(Json::as_str).unwrap_or("?");
            let in_flight = row
                .get("in_flight")
                .and_then(Json::as_u64)
                .unwrap_or_default();
            let conflicts = row
                .get("conflicts")
                .and_then(Json::as_u64)
                .unwrap_or_default();
            let wall = row
                .get("wall_secs")
                .and_then(Json::as_f64)
                .unwrap_or_default();
            if in_flight != 0 {
                soak.violation(format!(
                    "tenant {tenant} holds {in_flight} in-flight slots after settling"
                ));
            }
            let (job_conflicts, job_wall) = by_tenant.get(tenant).copied().unwrap_or((0, 0.0));
            if conflicts != job_conflicts {
                soak.violation(format!(
                    "tenant {tenant} ledger conflicts {conflicts} != queue sum {job_conflicts}"
                ));
            }
            if (wall - job_wall).abs() > 1e-3 * (accepted.len() as f64).max(1.0) {
                soak.violation(format!(
                    "tenant {tenant} ledger wall {wall:.6}s != queue sum {job_wall:.6}s"
                ));
            }
            tenant_ledger.push((tenant.to_string(), in_flight, conflicts, wall));
        }
    } else {
        soak.violation("final health request failed".to_string());
    }

    drain_daemon(&mut daemon);

    // Offline verification of what the drain left on disk: every
    // accepted job sealed as done with exactly one completion.
    let queue = ShardedQueue::open(&queue_dir, 4).expect("post-drain queue opens");
    for id in &accepted {
        match queue.job(id) {
            None => soak.violation(format!("job {id} missing from the drained queue")),
            Some(job) if job.state != JobState::Done || job.completions != 1 => {
                soak.violation(format!(
                    "drained job {id} sealed as {:?} with completions={}",
                    job.state, job.completions
                ));
            }
            Some(_) => {}
        }
    }

    ChaosOutcome {
        incarnations,
        kills,
        corruptions,
        accepted: accepted.len(),
        completed,
        tenant_ledger,
    }
}

struct OverloadOutcome {
    burst: usize,
    admitted: usize,
    shed: usize,
    submit_p99_ms: f64,
}

/// Overload burst against a deliberately tiny daemon: one worker, eight
/// pending slots. Excess submissions must shed with a typed
/// `overloaded` error while admission decisions stay fast.
fn overload_phase(dir: &Path, bin: &Path, violations: &Mutex<Vec<String>>) -> OverloadOutcome {
    let sock = dir.join("overload.sock");
    let state = dir.join("overload-state");
    let log = dir.join("overload.log");
    let mut daemon = spawn_daemon(
        bin,
        &sock,
        &state,
        &log,
        "",
        &["--max-pending", "8", "--max-connections", "64"],
    );
    // A one-worker daemon: `--workers` in `extra` would conflict with
    // the default args, so occupy all three workers instead.
    let client = Client::new(Endpoint::Unix(sock.clone()));
    wait_up(&client, Some(&mut daemon.child));
    for i in 0..3 {
        let reply = client
            .submit(
                "burst",
                JobSpec::new(format!("occupier-{i}"), "/bin/sh")
                    .arg("-c")
                    .arg("sleep 30"),
            )
            .expect("submit occupier");
        assert!(reply.error_code().is_none(), "{reply:?}");
    }
    let running_deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let running = (0..3)
            .filter(|i| {
                client
                    .status(&format!("occupier-{i}"))
                    .ok()
                    .and_then(|r| r.job_state())
                    == Some(JobState::Running)
            })
            .count();
        if running == 3 {
            break;
        }
        assert!(Instant::now() < running_deadline, "occupiers never started");
        std::thread::sleep(Duration::from_millis(20));
    }

    let burst = 40usize;
    let mut admitted = 0usize;
    let mut shed = 0usize;
    let mut latencies = Vec::with_capacity(burst);
    for i in 0..burst {
        let begin = Instant::now();
        let reply = client
            .submit("burst", JobSpec::new(format!("burst-{i:03}"), "/bin/true"))
            .expect("submit burst");
        latencies.push(begin.elapsed().as_secs_f64());
        match reply.error_code() {
            None => admitted += 1,
            Some("overloaded") => shed += 1,
            Some(code) => violations.lock().expect("violations lock").push(format!(
                "overload burst refused with {code}, want overloaded"
            )),
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let submit_p99_ms = percentile(&latencies, 99.0) * 1e3;
    let mut violations = violations.lock().expect("violations lock");
    if shed == 0 {
        violations.push(format!(
            "overload burst of {burst} against max-pending 8 shed nothing"
        ));
    }
    if admitted > 8 {
        violations.push(format!(
            "overload admitted {admitted} submissions past a pending cap of 8"
        ));
    }
    if submit_p99_ms > 1_000.0 {
        violations.push(format!(
            "overload submit p99 {submit_p99_ms:.1}ms is not bounded (want <1000ms)"
        ));
    }
    drop(violations);
    println!(
        "soak: overload burst {burst}: {admitted} admitted, {shed} shed, \
         submit p99 {submit_p99_ms:.1}ms"
    );

    // State is disposable here; a hard kill is fine and fast.
    daemon.child.kill().ok();
    daemon.child.wait().ok();
    OverloadOutcome {
        burst,
        admitted,
        shed,
        submit_p99_ms,
    }
}

struct LorisOutcome {
    disconnected: bool,
    concurrent_ok: usize,
}

/// Slow-loris: a client that trickles a partial request line and never
/// finishes it. The daemon must disconnect it at the io deadline with a
/// typed error, without stalling well-behaved clients.
fn loris_phase(dir: &Path, bin: &Path, violations: &Mutex<Vec<String>>) -> LorisOutcome {
    let sock = dir.join("loris.sock");
    let state = dir.join("loris-state");
    let log = dir.join("loris.log");
    let mut daemon = spawn_daemon(bin, &sock, &state, &log, "", &["--io-timeout-secs", "1"]);
    let client = Client::new(Endpoint::Unix(sock.clone()));
    wait_up(&client, Some(&mut daemon.child));

    let mut loris = UnixStream::connect(&sock).expect("loris connect");
    loris.write_all(b"{\"verb\":\"lis").expect("partial write");
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");

    // Well-behaved clients keep getting served while the loris hangs.
    let mut concurrent_ok = 0usize;
    for _ in 0..5 {
        if client.list(None).is_ok_and(|r| r.error_code().is_none()) {
            concurrent_ok += 1;
        }
        std::thread::sleep(Duration::from_millis(100));
    }

    let mut reader = BufReader::new(&mut loris);
    let mut response = String::new();
    let got_error =
        reader.read_line(&mut response).is_ok() && response.contains("deadline_exceeded");
    let mut rest = Vec::new();
    let got_eof = reader
        .read_to_end(&mut rest)
        .map(|n| n == 0)
        .unwrap_or(false);
    let disconnected = got_error && got_eof;
    if !disconnected {
        violations.lock().expect("violations lock").push(format!(
            "slow-loris not disconnected cleanly (typed error: {got_error}, eof: {got_eof}, \
             response {response:?})"
        ));
    }
    if concurrent_ok < 5 {
        violations.lock().expect("violations lock").push(format!(
            "only {concurrent_ok}/5 concurrent requests succeeded while the loris hung"
        ));
    }
    println!(
        "soak: slow-loris disconnected={disconnected}, {concurrent_ok}/5 concurrent requests ok"
    );

    daemon.child.kill().ok();
    daemon.child.wait().ok();
    LorisOutcome {
        disconnected,
        concurrent_ok,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let secs: u64 = parse_flag(&args, "--secs")
        .map(|v| v.parse().expect("--secs must be an integer"))
        .unwrap_or(60);
    let seed: u64 = parse_flag(&args, "--seed")
        .map(|v| v.parse().expect("--seed must be an integer"))
        .unwrap_or(7);
    let out = parse_flag(&args, "--out").unwrap_or_else(|| "BENCH_soak.json".to_string());
    let bin = fulllock_binary();
    let mut rng = SmallRng::seed_from_u64(seed);

    let dir = std::env::temp_dir().join(format!("fulllock-soak-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("soak scratch dir");
    println!(
        "soak: {secs}s chaos phase, seed {seed}, daemon {}, scratch {}",
        bin.display(),
        dir.display()
    );

    let soak = Arc::new(Soak {
        endpoint: Endpoint::Unix(dir.join("serve.sock")),
        stop: AtomicBool::new(false),
        next_id: AtomicUsize::new(0),
        accepted: Mutex::new(BTreeSet::new()),
        refusals: Mutex::new(BTreeMap::new()),
        violations: Mutex::new(Vec::new()),
        baseline: Mutex::new(HashMap::new()),
    });

    let start = Instant::now();
    let chaos = chaos_phase(&soak, &dir, &bin, secs, &mut rng);
    let overload = overload_phase(&dir, &bin, &soak.violations);
    let loris = loris_phase(&dir, &bin, &soak.violations);
    let elapsed = start.elapsed().as_secs_f64();

    let violations = soak.violations.lock().expect("violations lock").clone();
    let refusals = soak.refusals.lock().expect("refusals lock").clone();
    let pass = violations.is_empty();

    let refusals_json = refusals
        .iter()
        .map(|(code, count)| format!("\"{code}\": {count}"))
        .collect::<Vec<_>>()
        .join(", ");
    let violations_json = violations
        .iter()
        .map(|v| format!("    \"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect::<Vec<_>>()
        .join(",\n");
    let ledger_json = chaos
        .tenant_ledger
        .iter()
        .map(|(tenant, in_flight, conflicts, wall)| {
            format!(
                "    {{ \"tenant\": \"{tenant}\", \"in_flight\": {in_flight}, \
                 \"conflicts\": {conflicts}, \"wall_secs\": {wall:.4} }}"
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"workload\": \"chaos soak of the real fulllock serve binary: SIGKILL every \
         3-8s, rotating failpoint schedules, shard corruption, 4-client swarm; then an \
         overload burst and a slow-loris client\",\n  \
         \"chaos_secs\": {secs},\n  \"seed\": {seed},\n  \"elapsed_secs\": {elapsed:.1},\n  \
         \"incarnations\": {},\n  \"kills\": {},\n  \"corruptions\": {},\n  \
         \"jobs\": {{ \"accepted\": {}, \"completed\": {} }},\n  \
         \"refusals\": {{ {refusals_json} }},\n  \
         \"tenant_ledger\": [\n{ledger_json}\n  ],\n  \
         \"overload\": {{ \"burst\": {}, \"admitted\": {}, \"shed\": {}, \
         \"submit_p99_ms\": {:.1} }},\n  \
         \"slow_loris\": {{ \"disconnected\": {}, \"concurrent_ok\": {} }},\n  \
         \"violations\": [\n{violations_json}\n  ],\n  \"pass\": {pass}\n}}\n",
        chaos.incarnations,
        chaos.kills,
        chaos.corruptions,
        chaos.accepted,
        chaos.completed,
        overload.burst,
        overload.admitted,
        overload.shed,
        overload.submit_p99_ms,
        loris.disconnected,
        loris.concurrent_ok,
    );
    let mut file = std::fs::File::create(&out).expect("create soak report");
    file.write_all(json.as_bytes()).expect("write soak report");
    println!("soak: wrote {out}");

    std::fs::remove_dir_all(&dir).ok();
    if !pass {
        eprintln!("soak: FAILED with {} violation(s)", violations.len());
        for violation in &violations {
            eprintln!("  - {violation}");
        }
        std::process::exit(1);
    }
    println!(
        "soak: PASS — {} jobs exactly-once through {} kills and {} corruptions",
        chaos.accepted, chaos.kills, chaos.corruptions
    );
}
