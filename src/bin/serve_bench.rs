//! Load test for the `fulllock serve` daemon: an in-process server on a
//! unix socket, a pool of closed-loop clients each submitting a small
//! job and waiting for it to finish, repeated until the job budget is
//! spent. Reports sustained throughput (jobs/min) and submit→done
//! latency percentiles, and writes `BENCH_service.json` at the
//! repository root (next to the other `BENCH_*.json` snapshots) so
//! future PRs can detect service regressions.
//!
//! Run with: `cargo run --release --bin serve_bench`
//!
//! Options: `--jobs N` (default 500), `--workers N` (default 4),
//! `--clients N` (default 8), `--out PATH` (default BENCH_service.json).

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use full_lock::harness::plan::JobSpec;
use full_lock::harness::service::{serve, Client, Endpoint, ServiceConfig};

/// Sustained throughput the service must clear on this workload.
const MIN_THROUGHPUT_JOBS_PER_MIN: f64 = 100.0;

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs: usize = parse_flag(&args, "--jobs")
        .map(|v| v.parse().expect("--jobs must be an integer"))
        .unwrap_or(500);
    let workers: usize = parse_flag(&args, "--workers")
        .map(|v| v.parse().expect("--workers must be an integer"))
        .unwrap_or(4);
    let clients: usize = parse_flag(&args, "--clients")
        .map(|v| v.parse().expect("--clients must be an integer"))
        .unwrap_or(8);
    let out = parse_flag(&args, "--out").unwrap_or_else(|| "BENCH_service.json".to_string());

    let dir = std::env::temp_dir().join(format!("fulllock-serve-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("bench scratch dir");
    let endpoint = Endpoint::Unix(dir.join("serve.sock"));

    let mut config = ServiceConfig::new(endpoint.clone(), dir.join("state"));
    config.workers = workers;
    config.poll_interval = Duration::from_millis(1);
    config.default_timeout = Duration::from_secs(30);
    let shutdown = Arc::new(AtomicBool::new(false));
    let server = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || serve(config, shutdown).expect("serve"))
    };
    let probe = Client::new(endpoint.clone());
    let deadline = Instant::now() + Duration::from_secs(10);
    while !probe.is_up() {
        assert!(Instant::now() < deadline, "server never came up");
        std::thread::sleep(Duration::from_millis(5));
    }

    println!(
        "serve-bench: {jobs} jobs, {workers} workers, {clients} closed-loop clients, \
         endpoint {endpoint}"
    );

    // Closed-loop clients: each claims the next job index, submits it,
    // waits for it to reach a terminal state, and records the
    // submit→done latency.
    let next = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let mut handles = Vec::new();
    for client_index in 0..clients {
        let next = Arc::clone(&next);
        let endpoint = endpoint.clone();
        handles.push(std::thread::spawn(move || {
            let client = Client::new(endpoint);
            let mut latencies = Vec::new();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    return latencies;
                }
                let id = format!("bench-{i:06}");
                let tenant = format!("tenant-{}", client_index % 4);
                let spec = JobSpec::new(&id, "/bin/true");
                let begin = Instant::now();
                let reply = client.submit(&tenant, spec).expect("submit");
                assert!(reply.error_code().is_none(), "job {id} refused: {reply:?}");
                let done = client
                    .wait(&id, Duration::from_secs(60))
                    .expect("wait for job");
                let state = done.job_state().map(|s| s.as_str());
                assert_eq!(state, Some("done"), "job {id} ended {done:?}");
                latencies.push(begin.elapsed().as_secs_f64());
            }
        }));
    }

    let mut latencies: Vec<f64> = Vec::with_capacity(jobs);
    for handle in handles {
        latencies.extend(handle.join().expect("client thread"));
    }
    let elapsed = start.elapsed().as_secs_f64();

    shutdown.store(true, Ordering::SeqCst);
    let summary = server.join().expect("server thread");
    assert_eq!(summary.completed, jobs as u64, "all jobs must complete");

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let throughput = jobs as f64 / elapsed * 60.0;
    let p50 = percentile(&latencies, 50.0);
    let p95 = percentile(&latencies, 95.0);
    let p99 = percentile(&latencies, 99.0);

    println!(
        "serve-bench: {jobs} jobs in {elapsed:.2}s = {throughput:.0} jobs/min \
         (p50 {:.1}ms, p95 {:.1}ms, p99 {:.1}ms)",
        p50 * 1e3,
        p95 * 1e3,
        p99 * 1e3
    );

    let json = format!(
        "{{\n  \"workload\": \"{jobs} /bin/true jobs over a unix socket, {workers} workers, \
         {clients} closed-loop clients\",\n  \"jobs\": {jobs},\n  \"workers\": {workers},\n  \
         \"clients\": {clients},\n  \"elapsed_secs\": {elapsed:.4},\n  \
         \"throughput_jobs_per_min\": {throughput:.1},\n  \
         \"latency_secs\": {{ \"p50\": {p50:.5}, \"p95\": {p95:.5}, \"p99\": {p99:.5} }},\n  \
         \"min_throughput_jobs_per_min\": {MIN_THROUGHPUT_JOBS_PER_MIN:.1}\n}}\n"
    );
    let mut file = std::fs::File::create(&out).expect("create bench report");
    file.write_all(json.as_bytes()).expect("write bench report");
    println!("serve-bench: wrote {out}");

    std::fs::remove_dir_all(&dir).ok();
    assert!(
        throughput >= MIN_THROUGHPUT_JOBS_PER_MIN,
        "throughput {throughput:.1} jobs/min below the {MIN_THROUGHPUT_JOBS_PER_MIN} floor"
    );
}
