//! Bench guard for the Byzantine-resilient oracle layer.
//!
//! Two claims are measured and enforced, and both land in
//! `BENCH_oracle.json`:
//!
//! 1. **Clean-oracle overhead.** With a faithful oracle, the resilient
//!    layer at its default policy (guard on, votes = 1) must add less
//!    than `--max-overhead` (default 5%) end-to-end DIP-loop wall time
//!    over the historical trust-everything path
//!    (`OracleResilience::off()`). Measured as the sum over several
//!    locked hosts of the minimum wall time across `--reps` interleaved
//!    repetitions per configuration, so machine noise and per-instance
//!    solver-path luck average out.
//!
//! 2. **Byzantine recovery** (needs `--features failpoints`). With an
//!    `oracle.query=flip` plan injected — one output bit of every 50th
//!    response inverted — the unguarded loop must demonstrably fail
//!    (wrong key or spurious UNSAT/inconclusive verdict) while the
//!    resilient loop recovers the **exact** key, verified independently
//!    by simulation.
//!
//! ```text
//! cargo run --release --features failpoints --bin oracle_bench
//! ```
//!
//! Options: `--reps N` (default 5), `--max-overhead X` (default 0.05),
//! `--out PATH` (default BENCH_oracle.json). Exits 1 when either claim
//! fails; without the `failpoints` feature the flip phase is recorded
//! as skipped and only the overhead claim gates the exit code.

use std::io::Write as _;
use std::time::{Duration, Instant};

use full_lock::attacks::{Attack, AttackOutcome, OracleResilience, SatAttackConfig, SimOracle};
#[cfg(feature = "failpoints")]
use full_lock::attacks::{AttackError, AttackReport};
use full_lock::locking::{
    FullLock, FullLockConfig, Key, LockedCircuit, LockingScheme, PlrSpec, WireSelection,
};
use full_lock::netlist::random::{generate, RandomCircuitConfig};
use full_lock::netlist::{Netlist, Simulator};
use full_lock::sat::faults::{self, FaultPlan};

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// A c432-class combinational host (same class the chaos suite uses).
fn host(seed: u64) -> Netlist {
    generate(RandomCircuitConfig {
        inputs: 12,
        outputs: 7,
        gates: 160,
        max_fanin: 3,
        seed,
    })
    .expect("valid circuit config")
}

/// Locks the host with a 4x4 configurable logic-and-routing network.
fn cln_locked(original: &Netlist) -> LockedCircuit {
    FullLock::new(FullLockConfig {
        plrs: vec![PlrSpec::new(4)],
        selection: WireSelection::Acyclic,
        twist_probability: 0.5,
        seed: 9,
    })
    .lock(original)
    .expect("lock")
}

/// Does the recovered key restore the oracle's function exactly? Checked
/// by random simulation, independently of the attack's own verification.
fn key_correct(original: &Netlist, locked: &LockedCircuit, key: &Key) -> bool {
    let sim = Simulator::new(original).expect("simulator");
    let width = locked.data_inputs.len();
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    for _ in 0..256 {
        let x: Vec<bool> = (0..width)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state & 1 == 1
            })
            .collect();
        let want = sim.run(&x).expect("oracle sim");
        let got = locked.eval(&x, key).expect("unlock eval");
        if got != want {
            return false;
        }
    }
    true
}

fn config(resilience: OracleResilience) -> SatAttackConfig {
    SatAttackConfig {
        timeout: Some(Duration::from_secs(600)),
        resilience,
        ..Default::default()
    }
}

/// One full attack run; the report must be a verified, simulation-exact
/// key (the clean phase tolerates no other outcome).
fn run_clean(original: &Netlist, locked: &LockedCircuit, resilience: OracleResilience) -> f64 {
    let oracle = SimOracle::new(original).expect("oracle");
    let start = Instant::now();
    let report = config(resilience)
        .run(locked, &oracle)
        .expect("clean attack");
    let elapsed = start.elapsed().as_secs_f64();
    let AttackOutcome::KeyRecovered { key, verified } = &report.outcome else {
        panic!("clean attack must break the lock, got {:?}", report.outcome);
    };
    assert!(verified, "clean attack key must verify");
    assert!(
        key_correct(original, locked, key),
        "clean attack key must match the oracle"
    );
    if std::env::var("ORACLE_BENCH_DEBUG").is_ok() {
        println!(
            "  debug: iters={} queries={} conflicts={} props={} elapsed={elapsed:.4}",
            report.iterations,
            report.oracle_queries,
            report.solver.conflicts,
            report.solver.propagations
        );
    }
    elapsed
}

/// Compact, stable description of an attack verdict for the JSON report.
#[cfg(feature = "failpoints")]
fn describe(result: &Result<AttackReport, AttackError>) -> String {
    match result {
        Ok(report) => match &report.outcome {
            AttackOutcome::KeyRecovered { verified, .. } => {
                format!("KeyRecovered (verified={verified})")
            }
            other => format!("{other:?}"),
        },
        Err(e) => format!("error: {e}"),
    }
}

struct FlipPhase {
    injected: String,
    unguarded_outcome: String,
    unguarded_fooled: bool,
    resilient_outcome: String,
    resilient_exact_key: bool,
    resilient_requeries: u64,
    resilient_quarantined: u64,
    ran: bool,
}

/// Byzantine phase: every 50th oracle response has one output bit
/// flipped. The unguarded loop must fail; the resilient loop must
/// recover the exact key.
#[cfg(feature = "failpoints")]
fn flip_phase(original: &Netlist, locked: &LockedCircuit) -> FlipPhase {
    use full_lock::sat::faults::{site, Failpoint, FaultAction};

    fn flip_plan() -> FaultPlan {
        let mut plan = FaultPlan::new();
        for k in 0..200 {
            plan = plan.with(Failpoint::new(
                site::ORACLE_QUERY,
                Some(2 + 50 * k),
                FaultAction::Flip,
            ));
        }
        plan
    }

    faults::install(flip_plan());
    let unguarded_oracle = SimOracle::new(original).expect("oracle");
    let unguarded = config(OracleResilience::off()).run(locked, &unguarded_oracle);
    let unguarded_fooled = match &unguarded {
        Ok(report) => match &report.outcome {
            // A "recovered" key only refutes the failure claim when it is
            // actually the oracle's function — a wrong key or an
            // unverified one is exactly the Byzantine corruption the
            // guard exists to stop.
            AttackOutcome::KeyRecovered { key, .. } => !key_correct(original, locked, key),
            _ => true,
        },
        Err(_) => true,
    };

    // Fresh plan (resets failpoint hit counters) for the guarded run.
    faults::install(flip_plan());
    let resilient_oracle = SimOracle::new(original).expect("oracle");
    let resilient = config(OracleResilience::default()).run(locked, &resilient_oracle);
    faults::install(FaultPlan::new());
    let (resilient_exact_key, requeries, quarantined) = match &resilient {
        Ok(report) => {
            let exact = match &report.outcome {
                AttackOutcome::KeyRecovered { key, verified } => {
                    *verified && key_correct(original, locked, key)
                }
                _ => false,
            };
            (
                exact,
                report.resilience.oracle_requeries,
                report.resilience.quarantined_pairs,
            )
        }
        Err(_) => (false, 0, 0),
    };

    FlipPhase {
        injected: "oracle.query=flip on every 50th response (indices 2, 52, ...)".to_string(),
        unguarded_outcome: describe(&unguarded),
        unguarded_fooled,
        resilient_outcome: describe(&resilient),
        resilient_exact_key,
        resilient_requeries: requeries,
        resilient_quarantined: quarantined,
        ran: true,
    }
}

#[cfg(not(feature = "failpoints"))]
fn flip_phase(_original: &Netlist, _locked: &LockedCircuit) -> FlipPhase {
    FlipPhase {
        injected: "skipped — built without --features failpoints".to_string(),
        unguarded_outcome: String::new(),
        unguarded_fooled: false,
        resilient_outcome: String::new(),
        resilient_exact_key: false,
        resilient_requeries: 0,
        resilient_quarantined: 0,
        ran: false,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reps: usize = parse_flag(&args, "--reps")
        .map(|v| v.parse().expect("--reps must be an integer"))
        .unwrap_or(5);
    let max_overhead: f64 = parse_flag(&args, "--max-overhead")
        .map(|v| v.parse().expect("--max-overhead must be a number"))
        .unwrap_or(0.05);
    let out = parse_flag(&args, "--out").unwrap_or_else(|| "BENCH_oracle.json".to_string());
    assert!(reps >= 1, "--reps must be at least 1");

    let seeds = [42u64, 11, 13];
    let workloads: Vec<(Netlist, LockedCircuit)> = seeds
        .iter()
        .map(|&seed| {
            let original = host(seed);
            let locked = cln_locked(&original);
            (original, locked)
        })
        .collect();

    // Phase 1: clean-oracle overhead. An installed empty plan shadows any
    // ambient FULLLOCK_FAILPOINTS row, so the baseline really is clean.
    faults::install(FaultPlan::new());
    println!(
        "oracle bench: {} hosts x {reps} reps, resilient (votes=1) vs unguarded",
        workloads.len()
    );
    let mut wall_off = 0.0f64;
    let mut wall_guarded = 0.0f64;
    for (i, (original, locked)) in workloads.iter().enumerate() {
        let mut best_off = f64::INFINITY;
        let mut best_guarded = f64::INFINITY;
        for _ in 0..reps {
            best_off = best_off.min(run_clean(original, locked, OracleResilience::off()));
            best_guarded =
                best_guarded.min(run_clean(original, locked, OracleResilience::default()));
        }
        println!(
            "oracle bench: host {} (seed {}): unguarded {best_off:.3}s, resilient {best_guarded:.3}s",
            i, seeds[i]
        );
        wall_off += best_off;
        wall_guarded += best_guarded;
    }
    let overhead = (wall_guarded - wall_off) / wall_off;
    let clean_pass = overhead < max_overhead;
    println!(
        "oracle bench: clean overhead {:.2}% (budget {:.2}%)",
        overhead * 100.0,
        max_overhead * 100.0
    );

    // Phase 2: Byzantine recovery under an injected flip plan.
    let (flip_original, flip_locked) = &workloads[0];
    let flip = flip_phase(flip_original, flip_locked);
    faults::clear();
    let flip_pass = if flip.ran {
        println!(
            "oracle bench: flip injection: unguarded -> {} (fooled: {}), resilient -> {} \
             (exact key: {}, {} re-queries, {} quarantined)",
            flip.unguarded_outcome,
            flip.unguarded_fooled,
            flip.resilient_outcome,
            flip.resilient_exact_key,
            flip.resilient_requeries,
            flip.resilient_quarantined,
        );
        flip.unguarded_fooled && flip.resilient_exact_key
    } else {
        println!("oracle bench: flip injection {}", flip.injected);
        true
    };

    let pass = clean_pass && flip_pass;
    let flip_json = if flip.ran {
        format!(
            "{{\n    \"injected\": \"{}\",\n    \
             \"unguarded_outcome\": \"{}\",\n    \
             \"unguarded_fooled\": {},\n    \
             \"resilient_outcome\": \"{}\",\n    \
             \"resilient_exact_key\": {},\n    \
             \"resilient_requeries\": {},\n    \
             \"resilient_quarantined\": {}\n  }}",
            flip.injected,
            flip.unguarded_outcome,
            flip.unguarded_fooled,
            flip.resilient_outcome,
            flip.resilient_exact_key,
            flip.resilient_requeries,
            flip.resilient_quarantined,
        )
    } else {
        format!("{{\n    \"injected\": \"{}\"\n  }}", flip.injected)
    };
    let json = format!(
        "{{\n  \"workload\": \"oracle-guided SAT attack on {} CLN-locked c432-class hosts; \
         clean overhead = sum of per-host minimum wall over {reps} interleaved reps, \
         resilient layer (guard on, votes=1) vs OracleResilience::off(); flip phase injects \
         oracle.query=flip and compares verdicts\",\n  \
         \"hosts\": {},\n  \"reps\": {reps},\n  \
         \"clean_wall_unguarded_secs\": {wall_off:.3},\n  \
         \"clean_wall_resilient_secs\": {wall_guarded:.3},\n  \
         \"clean_overhead_fraction\": {overhead:.4},\n  \
         \"max_overhead_fraction\": {max_overhead:.4},\n  \
         \"clean_pass\": {clean_pass},\n  \
         \"flip\": {flip_json},\n  \
         \"pass\": {pass}\n}}\n",
        workloads.len(),
        workloads.len(),
    );
    let mut file = std::fs::File::create(&out).expect("create bench report");
    file.write_all(json.as_bytes()).expect("write bench report");
    println!("oracle bench: wrote {out}");

    if !pass {
        eprintln!(
            "oracle bench: FAILED — clean overhead {:.2}% (budget {:.2}%), flip phase pass: \
             {flip_pass}",
            overhead * 100.0,
            max_overhead * 100.0
        );
        std::process::exit(1);
    }
    println!("oracle bench: PASS");
}
