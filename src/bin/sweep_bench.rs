//! Scaling benchmark for the distributed sweep executor: the same
//! latency-bound grid run under 1 worker and under N workers, through
//! the **real** coordinator/worker process machinery (leases, settle
//! markers, segments — nothing mocked).
//!
//! The reference grid is deliberately adversarial to naive fan-out:
//!
//! * every unit carries `sleep_ms` of simulated latency (so the bench
//!   measures coordination, not SAT solving — the embedded instances
//!   are tiny);
//! * unit 0 is a deterministic straggler (`straggle_unit=0`,
//!   `straggle_ms`): its *first owner* sleeps several seconds, modelling
//!   one bad machine. The single-worker baseline has no choice but to
//!   eat that sleep serially; the N-worker run must neutralize it via
//!   speculative re-execution (first result wins), so the straggler
//!   costs roughly one speculation deadline instead of `straggle_ms`.
//!
//! Reported speedup is `wall(1 worker) / wall(N workers)` for the
//! identical plan, and the run fails (exit 1) below `--floor`. Results
//! land in `BENCH_sweep.json` with the measurement basis spelled out.
//!
//! ```text
//! cargo run --release --bin sweep_bench
//! ```
//!
//! Options: `--workers N` (default 8), `--units N` (default 128),
//! `--sleep-ms N` (default 50), `--straggle-ms N` (default 8000),
//! `--floor X` (default 8.0), `--out PATH` (default BENCH_sweep.json).
//!
//! The binary re-execs itself as the worker process (first argument
//! `internal-worker`), so a release build of this one target is the
//! whole deployment.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use full_lock::harness::sweep::segment::fold_segments;
use full_lock::harness::sweep::worker::{run_worker, SatUnitExecutor, WorkerArgs};
use full_lock::harness::sweep::{run_sweep, SweepConfig, SweepGrid, SweepOutcome, SweepPlan};

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Worker mode: `sweep_bench internal-worker --dir ... --worker N ...`.
/// The coordinator spawns these; they coordinate purely through the
/// sweep directory.
fn worker_main(args: &[String]) -> ! {
    let parsed = match WorkerArgs::parse(args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("sweep_bench internal-worker: {message}");
            std::process::exit(64);
        }
    };
    let (plan, _hash) = match SweepPlan::load(&parsed.dir) {
        Ok(loaded) => loaded,
        Err(e) => {
            eprintln!("sweep_bench internal-worker: load plan: {e}");
            std::process::exit(64);
        }
    };
    let executor = SatUnitExecutor::from_plan(&plan);
    match run_worker(&plan, &parsed.to_config(), &executor) {
        Ok(_) => std::process::exit(0),
        Err(e) => {
            eprintln!("sweep_bench internal-worker: {e}");
            std::process::exit(1);
        }
    }
}

/// The reference plan: `units` grid points of `sleep_ms` latency each,
/// with unit 0 straggling `straggle_ms` on its first owner.
fn bench_plan(units: usize, sleep_ms: u64, straggle_ms: u64) -> SweepPlan {
    let seeds: Vec<String> = (0..units).map(|i| i.to_string()).collect();
    let mut plan = SweepPlan::new(
        SweepGrid::new("sweep-scaling-bench")
            .axis("vars", ["20"])
            .axis("sleep_ms", [sleep_ms.to_string()])
            .axis("straggle_unit", ["0"])
            .axis("straggle_ms", [straggle_ms.to_string()])
            .axis("seed", seeds),
    );
    plan.unit_timeout_secs = 120.0;
    plan
}

fn bench_config(dir: &Path, workers: usize) -> SweepConfig {
    let me = std::env::current_exe().expect("current exe");
    let mut config = SweepConfig::new(dir, me, vec!["internal-worker".to_string()]);
    config.workers = workers;
    config.lease_ttl = Duration::from_millis(400);
    config.poll = Duration::from_millis(20);
    config.shutdown_grace = Duration::from_millis(300);
    config.speculation_min_age = Duration::from_millis(300);
    config.speculation_factor = 4.0;
    config.max_wall = Some(Duration::from_secs(600));
    config
}

fn run_once(dir: &Path, plan: &SweepPlan, workers: usize) -> (f64, SweepOutcome) {
    std::fs::remove_dir_all(dir).ok();
    let start = Instant::now();
    let outcome = run_sweep(plan, &bench_config(dir, workers)).expect("sweep completes");
    let elapsed = start.elapsed().as_secs_f64();
    let units = plan.grid.unit_count();
    assert_eq!(
        outcome.aggregates.samples as usize, units,
        "exactly-once broken: {} samples for {units} units",
        outcome.aggregates.samples
    );
    (elapsed, outcome)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("internal-worker") {
        worker_main(&args[1..]);
    }

    let workers: usize = parse_flag(&args, "--workers")
        .map(|v| v.parse().expect("--workers must be an integer"))
        .unwrap_or(8);
    let units: usize = parse_flag(&args, "--units")
        .map(|v| v.parse().expect("--units must be an integer"))
        .unwrap_or(128);
    let sleep_ms: u64 = parse_flag(&args, "--sleep-ms")
        .map(|v| v.parse().expect("--sleep-ms must be an integer"))
        .unwrap_or(50);
    let straggle_ms: u64 = parse_flag(&args, "--straggle-ms")
        .map(|v| v.parse().expect("--straggle-ms must be an integer"))
        .unwrap_or(8_000);
    let floor: f64 = parse_flag(&args, "--floor")
        .map(|v| v.parse().expect("--floor must be a number"))
        .unwrap_or(8.0);
    let out = parse_flag(&args, "--out").unwrap_or_else(|| "BENCH_sweep.json".to_string());
    assert!(workers >= 2, "--workers must be at least 2");

    let plan = bench_plan(units, sleep_ms, straggle_ms);
    let scratch: PathBuf =
        std::env::temp_dir().join(format!("fulllock-sweep-bench-{}", std::process::id()));
    println!(
        "sweep bench: {units} units x {sleep_ms}ms, straggler {straggle_ms}ms, \
         comparing 1 vs {workers} workers"
    );

    let dir1 = scratch.join("w1");
    let (t1, _one) = run_once(&dir1, &plan, 1);
    println!("sweep bench: 1 worker: {t1:.2}s");

    let dir_n = scratch.join(format!("w{workers}"));
    let (tn, outcome) = run_once(&dir_n, &plan, workers);
    let fold = fold_segments(&dir_n).expect("fold N-worker segments");
    let straggler = &fold.samples["unit-00000"];
    let neutralized = straggler.stolen || straggler.speculative;
    println!(
        "sweep bench: {workers} workers: {tn:.2}s (straggler unit-00000 won by {} via {})",
        straggler.worker,
        if straggler.speculative {
            "speculation"
        } else if straggler.stolen {
            "a steal"
        } else {
            "its first owner"
        },
    );

    let speedup = t1 / tn;
    let pass = speedup >= floor && neutralized;
    let json = format!(
        "{{\n  \"workload\": \"distributed sweep of {units} latency-bound units \
         ({sleep_ms}ms sleep each; unit 0 straggles {straggle_ms}ms on its first owner) \
         through the real coordinator + worker processes; speedup = wall(1 worker) / \
         wall({workers} workers) for the identical plan\",\n  \
         \"units\": {units},\n  \"sleep_ms\": {sleep_ms},\n  \
         \"straggle_ms\": {straggle_ms},\n  \"workers\": {workers},\n  \
         \"wall_1_worker_secs\": {t1:.3},\n  \"wall_n_workers_secs\": {tn:.3},\n  \
         \"speedup\": {speedup:.2},\n  \"floor\": {floor:.1},\n  \
         \"straggler_neutralized\": {neutralized},\n  \
         \"speculative_wins\": {},\n  \"stolen_wins\": {},\n  \
         \"respawns\": {},\n  \"pass\": {pass}\n}}\n",
        fold.speculative, fold.stolen, outcome.respawns,
    );
    let mut file = std::fs::File::create(&out).expect("create bench report");
    file.write_all(json.as_bytes()).expect("write bench report");
    println!("sweep bench: wrote {out}");
    std::fs::remove_dir_all(&scratch).ok();

    if !pass {
        eprintln!(
            "sweep bench: FAILED — speedup {speedup:.2}x (floor {floor:.1}x), \
             straggler neutralized: {neutralized}"
        );
        std::process::exit(1);
    }
    println!("sweep bench: PASS — {speedup:.2}x at {workers} workers");
}
