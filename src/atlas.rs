//! The hardness-atlas sweep executor: locks a fresh host circuit with a
//! Full-Lock CLN at each grid point and measures how hard the SAT
//! attack finds it.
//!
//! This is the production payload behind `fulllock sweep --executor
//! atlas`. The grid axes are ordinary sweep params:
//!
//! | param     | meaning                                   | default |
//! |-----------|-------------------------------------------|---------|
//! | `cln`     | PLR/CLN size (key bits grow superlinearly)| `4`     |
//! | `gates`   | host circuit gate count                   | `150`   |
//! | `inputs`  | host primary inputs                       | `12`    |
//! | `outputs` | host primary outputs                      | `6`     |
//! | `cyclic`  | `1` allows cycle-creating insertion       | `0`     |
//! | `seed`    | host + lock RNG seed                      | unit idx|
//!
//! Each unit reports the attack verdict (`recovered` / `timeout` /
//! `unresolved`), the solver conflicts spent, and the final attack
//! formula's size and mean clause/variable ratio — the measurements the
//! paper's Fig. 5–7 plot against CLN size. The sweep machinery
//! (leases, segments, percentile folds) lives in
//! [`harness::sweep`](fulllock_harness::sweep); this module only turns
//! one work unit into one sample.

use std::time::Duration;

use fulllock_attacks::{AttackOutcome, SatAttack, SatAttackConfig, SimOracle};
use fulllock_harness::sweep::worker::{ExecContext, UnitExecutor, UnitSample};
use fulllock_harness::sweep::{SweepPlan, WorkUnit};
use fulllock_locking::{FullLock, FullLockConfig, LockingScheme, PlrSpec, WireSelection};
use fulllock_netlist::random::{generate, RandomCircuitConfig};

/// Executes one hardness-atlas grid point: generate host, lock with a
/// CLN, attack, measure.
pub struct AtlasUnitExecutor {
    /// Base seed mixed into per-unit seeds (from the sweep plan).
    pub base_seed: u64,
    /// Wall-clock budget per attack (the sweep plan's unit timeout).
    pub unit_timeout: Duration,
}

impl AtlasUnitExecutor {
    /// Executor configured from a sweep plan.
    pub fn from_plan(plan: &SweepPlan) -> AtlasUnitExecutor {
        AtlasUnitExecutor {
            base_seed: plan.seed,
            unit_timeout: Duration::from_secs_f64(plan.unit_timeout_secs.max(0.1)),
        }
    }
}

fn param_u64(unit: &WorkUnit, key: &str, default: u64) -> Result<u64, String> {
    match unit.param(key) {
        None => Ok(default),
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| format!("param {key}={v:?} not an unsigned integer")),
    }
}

impl UnitExecutor for AtlasUnitExecutor {
    fn execute(&self, unit: &WorkUnit, _ctx: &ExecContext<'_>) -> Result<UnitSample, String> {
        let cln = usize::try_from(param_u64(unit, "cln", 4)?).map_err(|_| "cln too large")?;
        let gates =
            usize::try_from(param_u64(unit, "gates", 150)?).map_err(|_| "gates too large")?;
        let inputs =
            usize::try_from(param_u64(unit, "inputs", 12)?).map_err(|_| "inputs too large")?;
        let outputs =
            usize::try_from(param_u64(unit, "outputs", 6)?).map_err(|_| "outputs too large")?;
        let cyclic = param_u64(unit, "cyclic", 0)? != 0;
        let seed = self.base_seed ^ param_u64(unit, "seed", unit.index as u64)?;

        let host = generate(RandomCircuitConfig {
            inputs,
            outputs,
            gates,
            max_fanin: 3,
            seed,
        })
        .map_err(|e| format!("host generation: {e}"))?;
        let lock_config = FullLockConfig {
            plrs: vec![PlrSpec::new(cln)],
            selection: if cyclic {
                WireSelection::Cyclic
            } else {
                WireSelection::Acyclic
            },
            twist_probability: 0.5,
            seed: seed.wrapping_add(1),
        };
        let locked = FullLock::new(lock_config)
            .lock(&host)
            .map_err(|e| format!("locking: {e}"))?;
        let oracle = SimOracle::new(&host).map_err(|e| format!("oracle: {e}"))?;
        let attack_config = SatAttackConfig {
            timeout: Some(self.unit_timeout),
            ..Default::default()
        };
        let report = SatAttack::new(&locked, &oracle, attack_config)
            .map_err(|e| format!("attack setup: {e}"))?
            .run()
            .map_err(|e| format!("attack: {e}"))?;
        let verdict = match report.outcome {
            AttackOutcome::KeyRecovered { .. } => "recovered",
            AttackOutcome::Timeout => "timeout",
            _ => "unresolved",
        };
        Ok(UnitSample {
            verdict: verdict.to_string(),
            conflicts: report.solver.conflicts,
            vars: report.formula.0 as u64,
            clauses: report.formula.1 as u64,
            clause_var_ratio: report.mean_clause_var_ratio,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fulllock_harness::sweep::SweepGrid;

    #[test]
    fn atlas_executor_measures_a_tiny_grid_point() {
        let plan = SweepPlan::new(
            SweepGrid::new("tiny-atlas")
                .axis("cln", ["4"])
                .axis("gates", ["60"])
                .axis("seed", ["3"]),
        );
        let executor = AtlasUnitExecutor::from_plan(&plan);
        let unit = plan.grid.units().remove(0);
        let ctx = ExecContext {
            worker: "t",
            stolen: false,
            speculative: false,
        };
        let sample = executor.execute(&unit, &ctx).expect("executes");
        assert!(matches!(sample.verdict.as_str(), "recovered" | "timeout"));
        assert!(sample.vars > 0 && sample.clauses > 0);
        assert!(sample.clause_var_ratio > 0.0);
    }
}
